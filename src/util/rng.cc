#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace cobra {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  have_spare_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  have_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

}  // namespace cobra
