#pragma once

/// \file span.h
/// A minimal non-owning view over a contiguous array (the subset of
/// std::span the storage layer needs, kept dependency-free). Used by the
/// segment storage to point index structures directly into memory-mapped
/// files: the viewed memory must outlive every ConstSpan over it.

#include <cstddef>

namespace cobra::util {

template <typename T>
class ConstSpan {
 public:
  ConstSpan() = default;
  ConstSpan(const T* data, size_t size) : data_(data), size_(size) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cobra::util
