#pragma once

/// \file logging.h
/// Tiny leveled logger. Detectors and the FDE log their progress at kDebug;
/// the benchmark harness raises the level to keep output clean.

#include <sstream>
#include <string>

namespace cobra {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define COBRA_LOG(level)                                            \
  ::cobra::internal::LogMessage(::cobra::LogLevel::level, __FILE__, \
                                __LINE__)

}  // namespace cobra
