#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace cobra::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  task.group->Finish(error);
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
    }
    RunOneTask();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  if (inline_mode() || end - begin <= grain) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  TaskGroup group(this);
  for (int64_t chunk = begin; chunk < end; chunk += grain) {
    const int64_t chunk_end = std::min(end, chunk + grain);
    group.Run([&fn, chunk, chunk_end] {
      for (int64_t i = chunk; i < chunk_end; ++i) fn(i);
    });
  }
  group.Wait();
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->inline_mode()) {
    // Inline mode: execute now, but keep the error contract of Wait().
    if (first_error_) return;  // fail fast once a task threw
    try {
      fn();
    } catch (...) {
      first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_->Enqueue(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::Finish(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !first_error_) first_error_ = error;
  if (--pending_ == 0) done_cv_.notify_all();
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (pending_ == 0) break;
    }
    // Help drain the pool instead of blocking: a task waiting on its own
    // subtasks keeps the pool making progress (no self-deadlock).
    if (pool_ != nullptr && pool_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                      [this] { return pending_ == 0; });
  }
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace cobra::util
