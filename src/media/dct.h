#pragma once

/// \file dct.h
/// 8x8 block DCT, quantization and zigzag scan — the transform layer of the
/// block video codec (media/block_codec.h) that stands in for the demo's
/// external MPEG decoder.

#include <array>
#include <cstdint>

namespace cobra::media {

constexpr int kDctBlockSize = 8;
using DctBlock = std::array<double, 64>;   ///< row-major 8x8 coefficients
using PixelBlock = std::array<int16_t, 64>;  ///< row-major 8x8 samples

/// Forward 8x8 DCT-II (orthonormal).
void ForwardDct(const PixelBlock& in, DctBlock* out);

/// Inverse 8x8 DCT (matches ForwardDct up to rounding).
void InverseDct(const DctBlock& in, PixelBlock* out);

/// Quantizes coefficients with the table scaled for `quality` in [1, 100]
/// (JPEG-style scaling: 50 = table as-is, higher = finer).
/// `chroma` selects the chroma table.
void Quantize(const DctBlock& in, int quality, bool chroma,
              std::array<int16_t, 64>* out);

/// Dequantizes back to coefficient space.
void Dequantize(const std::array<int16_t, 64>& in, int quality, bool chroma,
                DctBlock* out);

/// Zigzag order: index i of the scan -> position in the 8x8 block.
extern const std::array<uint8_t, 64> kZigzagOrder;

/// Reorders a quantized block into zigzag scan order.
void ZigzagScan(const std::array<int16_t, 64>& in, std::array<int16_t, 64>* out);
void ZigzagUnscan(const std::array<int16_t, 64>& in, std::array<int16_t, 64>* out);

}  // namespace cobra::media
