#pragma once

/// \file dct.h
/// 8x8 block DCT, quantization and zigzag scan — the transform layer of the
/// block video codec (media/block_codec.h) that stands in for the demo's
/// external MPEG decoder.
///
/// The inverse-DCT and dequantization inner loops are the decode hot path;
/// they dispatch through `DctOps` (scalar / SSE4.1 / AVX2 tiers, selected
/// at runtime through the shared util/simd level — the same override
/// vision/kernels honors). All tiers are bit-identical: every lane performs
/// the same multiply/add sequence in the same order as the scalar
/// reference, and rounding uses an explicit trunc(x + copysign(0.5, x))
/// formula that vectorizes exactly.

#include <array>
#include <cstdint>

#include "util/simd.h"

namespace cobra::media {

constexpr int kDctBlockSize = 8;
using DctBlock = std::array<double, 64>;   ///< row-major 8x8 coefficients
using PixelBlock = std::array<int16_t, 64>;  ///< row-major 8x8 samples

/// Forward 8x8 DCT-II (orthonormal).
void ForwardDct(const PixelBlock& in, DctBlock* out);

/// Inverse 8x8 DCT (matches ForwardDct up to rounding).
void InverseDct(const DctBlock& in, PixelBlock* out);

/// Quantizer tables scaled once for a `quality` in [1, 100] (JPEG-style
/// scaling: 50 = table as-is, higher = finer); index [chroma]. The encoder
/// and decoder build one per stream instead of re-scaling per coefficient.
struct QuantTableSet {
  std::array<int, 64> quant[2];       ///< divisor per coefficient
  std::array<double, 64> dequant[2];  ///< the same divisors as multipliers
};
QuantTableSet MakeQuantTables(int quality);

/// Quantizes coefficients with a prebuilt table set.
void Quantize(const DctBlock& in, const QuantTableSet& tables, bool chroma,
              std::array<int16_t, 64>* out);
/// Convenience overload that scales the tables on every call.
void Quantize(const DctBlock& in, int quality, bool chroma,
              std::array<int16_t, 64>* out);

/// Dequantizes back to coefficient space (dispatched kernel).
void Dequantize(const std::array<int16_t, 64>& in, const QuantTableSet& tables,
                bool chroma, DctBlock* out);
void Dequantize(const std::array<int16_t, 64>& in, int quality, bool chroma,
                DctBlock* out);

/// One tier of the transform kernels. All pointers address 64-element
/// row-major 8x8 blocks.
struct DctOps {
  /// Inverse DCT of dequantized coefficients, rounded to int16 samples.
  void (*idct8x8)(const double* in, int16_t* out);
  /// out[i] = in[i] * table[i].
  void (*dequant64)(const int16_t* in, const double* table, double* out);
};

/// Ops table for `level`, or nullptr if that tier is compiled out or the
/// CPU lacks the instructions. `kScalar` never returns nullptr.
const DctOps* DctOpsFor(util::simd::SimdLevel level);

/// The tier the codec currently dispatches to: the best compiled+supported
/// tier, capped by the shared util/simd forced level (which
/// vision::kernels::SetActiveLevel sets).
util::simd::SimdLevel ActiveDctLevel();
const DctOps& ActiveDctOps();

/// Zigzag order: index i of the scan -> position in the 8x8 block.
extern const std::array<uint8_t, 64> kZigzagOrder;

/// Reorders a quantized block into zigzag scan order.
void ZigzagScan(const std::array<int16_t, 64>& in, std::array<int16_t, 64>* out);
void ZigzagUnscan(const std::array<int16_t, 64>& in, std::array<int16_t, 64>* out);

}  // namespace cobra::media
