#pragma once

/// \file near_duplicate.h
/// Transformed near-duplicate clip generation (DESIGN.md §4j).
///
/// The E14 dedup experiment needs clips that are perceptually the *same
/// footage* as some source shot while differing pixel-wise — the edits real
/// rebroadcasts apply. Three transform grades are modeled:
///   * kCropZoom: crop a border fraction off every edge and scale back up
///     (nearest-neighbor) — reframing/zoom of the same take;
///   * kLetterbox: scale the frame down vertically and matte black bars
///     top and bottom — aspect-ratio conversion;
///   * kNoise: additive Gaussian pixel noise — generation loss / analog
///     re-digitization.
/// Every clip carries its ground-truth pairing (source video id + frame
/// range), so dedup precision/recall is computable exactly: a reported
/// pair is a true positive iff the truth lists it.

#include <cstdint>
#include <memory>
#include <vector>

#include "media/ground_truth.h"
#include "media/video.h"
#include "util/rng.h"
#include "util/status.h"

namespace cobra::media {

enum class NearDuplicateTransform : int {
  kCropZoom = 0,
  kLetterbox = 1,
  kNoise = 2,
};

const char* NearDuplicateTransformToString(NearDuplicateTransform t);

/// Transform strengths. Defaults are "recognizably the same shot":
/// perceptual block hashes move a few bits, not half the grid.
struct NearDuplicateConfig {
  /// kCropZoom: fraction of width/height cropped off each edge (0, 0.25).
  double crop_fraction = 0.08;
  /// kLetterbox: fraction of the height matted to black, split between the
  /// top and bottom bars (0, 0.5).
  double letterbox_fraction = 0.2;
  /// kNoise: additive Gaussian sigma in pixel-value units (> 0).
  double noise_sigma = 6.0;
  uint64_t seed = 0x5EED;
};

/// One transformed clip plus its pairing back to the source.
struct NearDuplicateClip {
  std::shared_ptr<MemoryVideo> video;
  NearDuplicateTransform transform = NearDuplicateTransform::kCropZoom;
  /// The source frames the clip duplicates (clip frame i <-> source frame
  /// source_range.begin + i).
  FrameInterval source_range{0, -1};
  /// Index of the source shot in the GroundTruth the clip was cut from
  /// (-1 when the clip was made from an explicit range).
  int source_shot = -1;
};

/// Applies `transform` to one frame. Deterministic given (config, rng
/// state); pure geometric transforms ignore `rng`.
Frame TransformFrame(const Frame& frame, NearDuplicateTransform transform,
                     const NearDuplicateConfig& config, Rng* rng);

/// Cuts frames [range.begin, range.end] out of `source` and renders them
/// through `transform`. OutOfRange on an empty or out-of-bounds range;
/// InvalidArgument on a degenerate transform config.
Result<NearDuplicateClip> MakeNearDuplicateClip(
    const VideoSource& source, FrameInterval range,
    NearDuplicateTransform transform, const NearDuplicateConfig& config);

/// Emits one transformed clip per selected source shot of `truth`, cycling
/// through the three transforms in shot order. `every_nth` selects every
/// n-th shot (1 = all); shots shorter than `min_frames` are skipped. Each
/// clip's `source_shot`/`source_range` is the exact dedup ground truth.
Result<std::vector<NearDuplicateClip>> MakeNearDuplicateClips(
    const VideoSource& source, const GroundTruth& truth, size_t every_nth,
    int64_t min_frames, const NearDuplicateConfig& config);

}  // namespace cobra::media
