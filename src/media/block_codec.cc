#include "media/block_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "media/dct.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace cobra::media {

namespace {

constexpr int kMb = 16;  // macroblock size in luma samples

/// One padded image plane of 16-bit samples.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<int16_t> samples;

  void Resize(int w, int h) {
    width = w;
    height = h;
    samples.assign(static_cast<size_t>(w) * h, 0);
  }
  int16_t At(int x, int y) const {
    return samples[static_cast<size_t>(y) * width + x];
  }
  void Set(int x, int y, int16_t v) {
    samples[static_cast<size_t>(y) * width + x] = v;
  }
};

struct Planes {
  Plane y, cb, cr;
};

int PadTo(int v, int multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

int16_t ClampSample(double v) {
  return static_cast<int16_t>(std::clamp(v, 0.0, 255.0));
}

/// RGB -> padded YCbCr 4:2:0 planes (BT.601 full range, edge-replicated
/// padding).
void FrameToPlanes(const Frame& frame, Planes* out) {
  const int luma_w = PadTo(frame.width(), kMb);
  const int luma_h = PadTo(frame.height(), kMb);
  out->y.Resize(luma_w, luma_h);
  out->cb.Resize(luma_w / 2, luma_h / 2);
  out->cr.Resize(luma_w / 2, luma_h / 2);

  for (int y = 0; y < luma_h; ++y) {
    int sy = std::min(y, frame.height() - 1);
    for (int x = 0; x < luma_w; ++x) {
      int sx = std::min(x, frame.width() - 1);
      const Rgb& p = frame.At(sx, sy);
      double luma = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
      out->y.Set(x, y, ClampSample(luma));
    }
  }
  for (int y = 0; y < luma_h / 2; ++y) {
    for (int x = 0; x < luma_w / 2; ++x) {
      double sum_cb = 0.0, sum_cr = 0.0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          int sx = std::min(2 * x + dx, frame.width() - 1);
          int sy = std::min(2 * y + dy, frame.height() - 1);
          const Rgb& p = frame.At(sx, sy);
          double luma = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
          sum_cb += 128.0 + 0.564 * (p.b - luma);
          sum_cr += 128.0 + 0.713 * (p.r - luma);
        }
      }
      out->cb.Set(x, y, ClampSample(sum_cb / 4.0));
      out->cr.Set(x, y, ClampSample(sum_cr / 4.0));
    }
  }
}

Frame PlanesToFrame(const Planes& planes, int width, int height) {
  Frame frame(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double luma = planes.y.At(x, y);
      double cb = planes.cb.At(x / 2, y / 2) - 128.0;
      double cr = planes.cr.At(x / 2, y / 2) - 128.0;
      double r = luma + 1.403 * cr;
      double g = luma - 0.344 * cb - 0.714 * cr;
      double b = luma + 1.773 * cb;
      frame.At(x, y) =
          Rgb{static_cast<uint8_t>(std::clamp(r, 0.0, 255.0)),
              static_cast<uint8_t>(std::clamp(g, 0.0, 255.0)),
              static_cast<uint8_t>(std::clamp(b, 0.0, 255.0))};
    }
  }
  return frame;
}

// ---------- bitstream helpers ----------

void PutVarint(int32_t value, std::vector<uint8_t>* out) {
  uint32_t zz = (static_cast<uint32_t>(value) << 1) ^
                static_cast<uint32_t>(value >> 31);
  while (zz >= 0x80) {
    out->push_back(static_cast<uint8_t>(zz) | 0x80);
    zz >>= 7;
  }
  out->push_back(static_cast<uint8_t>(zz));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, int32_t* value) {
  uint32_t zz = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 28) {
    uint8_t byte = in[(*pos)++];
    zz |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      *value = static_cast<int32_t>((zz >> 1) ^ (~(zz & 1) + 1));
      return true;
    }
    shift += 7;
  }
  return false;
}

constexpr uint8_t kEob = 0xFF;

/// RLE-encodes a zigzagged quantized block. Returns true if any coefficient
/// is nonzero (i.e. the block must be present in the stream).
bool EncodeBlock(const std::array<int16_t, 64>& zz, std::vector<uint8_t>* out) {
  bool any = false;
  int run = 0;
  for (int i = 0; i < 64; ++i) {
    if (zz[i] == 0) {
      ++run;
      continue;
    }
    out->push_back(static_cast<uint8_t>(run));
    PutVarint(zz[i], out);
    run = 0;
    any = true;
  }
  out->push_back(kEob);
  return any;
}

bool DecodeBlock(const std::vector<uint8_t>& in, size_t* pos,
                 std::array<int16_t, 64>* zz) {
  zz->fill(0);
  int i = 0;
  while (*pos < in.size()) {
    uint8_t run = in[(*pos)++];
    if (run == kEob) return true;
    i += run;
    int32_t level;
    if (i >= 64 || !GetVarint(in, pos, &level)) return false;
    (*zz)[static_cast<size_t>(i)] = static_cast<int16_t>(level);
    ++i;
  }
  return false;
}

// ---------- block transform round trip ----------

/// Quantizes an 8x8 sample/residual block; returns zigzagged levels and the
/// reconstructed (dequantized) samples the reference must hold.
void CodeBlock(const PixelBlock& input, const QuantTableSet& tables,
               bool chroma, std::array<int16_t, 64>* zz_out,
               PixelBlock* recon_out) {
  DctBlock coeffs;
  ForwardDct(input, &coeffs);
  std::array<int16_t, 64> quantized;
  Quantize(coeffs, tables, chroma, &quantized);
  ZigzagScan(quantized, zz_out);
  DctBlock dequantized;
  Dequantize(quantized, tables, chroma, &dequantized);
  InverseDct(dequantized, recon_out);
}

void ReconstructBlock(const std::array<int16_t, 64>& zz,
                      const QuantTableSet& tables, bool chroma,
                      PixelBlock* recon_out) {
  std::array<int16_t, 64> quantized;
  ZigzagUnscan(zz, &quantized);
  DctBlock dequantized;
  Dequantize(quantized, tables, chroma, &dequantized);
  InverseDct(dequantized, recon_out);
}

void ReadBlock(const Plane& plane, int bx, int by, PixelBlock* out) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      (*out)[static_cast<size_t>(y) * 8 + x] = plane.At(bx + x, by + y);
    }
  }
}

void WriteBlock(Plane* plane, int bx, int by, const PixelBlock& in,
                const PixelBlock* prediction, int dc_offset) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      int v = in[static_cast<size_t>(y) * 8 + x] + dc_offset;
      if (prediction) v += (*prediction)[static_cast<size_t>(y) * 8 + x];
      plane->Set(bx + x, by + y,
                 static_cast<int16_t>(std::clamp(v, 0, 255)));
    }
  }
}

/// Mean absolute difference per pixel between a 16x16 luma block and the
/// reference at an offset.
double MbSad(const Plane& cur, const Plane& ref, int mbx, int mby, int mvx,
             int mvy) {
  int64_t sad = 0;
  for (int y = 0; y < kMb; ++y) {
    for (int x = 0; x < kMb; ++x) {
      sad += std::abs(cur.At(mbx + x, mby + y) -
                      ref.At(mbx + x + mvx, mby + y + mvy));
    }
  }
  return static_cast<double>(sad) / (kMb * kMb);
}

enum MbMode : uint8_t { kSkip = 0, kInter = 1, kIntra = 2 };

/// The six 8x8 blocks of a macroblock: 4 luma, then Cb, Cr.
struct BlockRef {
  Plane Planes::*plane;
  int dx, dy;   ///< offset inside the macroblock, plane-local
  bool chroma;
};
constexpr BlockRef kMbBlocks[6] = {
    {&Planes::y, 0, 0, false}, {&Planes::y, 8, 0, false},
    {&Planes::y, 0, 8, false}, {&Planes::y, 8, 8, false},
    {&Planes::cb, 0, 0, true}, {&Planes::cr, 0, 0, true},
};

}  // namespace

// ---------- encoder ----------

int64_t EncodedVideo::TotalBytes() const {
  int64_t total = 0;
  for (const auto& f : frames_) total += static_cast<int64_t>(f.size());
  return total;
}

double EncodedVideo::CompressionRatio() const {
  double raw = static_cast<double>(width_) * height_ * 3 *
               static_cast<double>(frames_.size());
  int64_t coded = TotalBytes();
  return coded > 0 ? raw / static_cast<double>(coded) : 0.0;
}

namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

bool GetU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*pos]) |
       (static_cast<uint32_t>(in[*pos + 1]) << 8) |
       (static_cast<uint32_t>(in[*pos + 2]) << 16) |
       (static_cast<uint32_t>(in[*pos + 3]) << 24);
  *pos += 4;
  return true;
}

constexpr uint32_t kStreamMagic = 0xC0B7A01;

}  // namespace

void EncodedVideo::BuildGopIndex() {
  gops_.clear();
  int64_t offset = 0;
  for (size_t f = 0; f < frames_.size(); ++f) {
    const bool intra = !frames_[f].empty() && frames_[f][0] == 'I';
    // Frame 0 opens the first GOP even if its marker is corrupt; the decoder
    // reports the ParseError, the index just has to partition the frames.
    if (intra || gops_.empty()) {
      gops_.push_back(GopIndexEntry{static_cast<int64_t>(f), 0, offset});
    }
    ++gops_.back().num_frames;
    offset += static_cast<int64_t>(frames_[f].size());
  }
}

int64_t EncodedVideo::GopOfFrame(int64_t frame) const {
  // First GOP whose first_frame is > frame, minus one.
  int64_t lo = 0, hi = NumGops() - 1;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (gops_[static_cast<size_t>(mid)].first_frame <= frame) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<uint8_t> EncodedVideo::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(kStreamMagic, &out);
  PutU32(static_cast<uint32_t>(width_), &out);
  PutU32(static_cast<uint32_t>(height_), &out);
  PutU32(static_cast<uint32_t>(fps_ * 1000.0), &out);
  PutU32(static_cast<uint32_t>(config_.gop_size), &out);
  PutU32(static_cast<uint32_t>(config_.quality), &out);
  PutU32(static_cast<uint32_t>(frames_.size()), &out);
  for (size_t f = 0; f < frames_.size(); ++f) {
    PutU32(static_cast<uint32_t>(frames_[f].size()), &out);
    out.insert(out.end(), frames_[f].begin(), frames_[f].end());
    const CodedFrameStats& s = stats_[f];
    out.push_back(s.intra_frame ? 1 : 0);
    PutU32(static_cast<uint32_t>(s.mean_motion * 1000.0), &out);
    PutU32(static_cast<uint32_t>(s.intra_block_ratio * 10000.0), &out);
  }
  return out;
}

Result<EncodedVideo> EncodedVideo::Deserialize(
    const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  uint32_t magic, width, height, fps_milli, gop, quality, num_frames;
  if (!GetU32(bytes, &pos, &magic) || magic != kStreamMagic) {
    return Status::ParseError("bad coded-video magic");
  }
  if (!GetU32(bytes, &pos, &width) || !GetU32(bytes, &pos, &height) ||
      !GetU32(bytes, &pos, &fps_milli) || !GetU32(bytes, &pos, &gop) ||
      !GetU32(bytes, &pos, &quality) || !GetU32(bytes, &pos, &num_frames)) {
    return Status::ParseError("truncated coded-video header");
  }
  if (width == 0 || height == 0 || width > 1u << 16 || height > 1u << 16 ||
      gop == 0 || quality == 0 || quality > 100) {
    return Status::ParseError("implausible coded-video header");
  }
  EncodedVideo out;
  out.width_ = static_cast<int>(width);
  out.height_ = static_cast<int>(height);
  out.fps_ = fps_milli / 1000.0;
  out.config_.gop_size = static_cast<int>(gop);
  out.config_.quality = static_cast<int>(quality);
  for (uint32_t f = 0; f < num_frames; ++f) {
    uint32_t frame_bytes;
    if (!GetU32(bytes, &pos, &frame_bytes) ||
        pos + frame_bytes > bytes.size()) {
      return Status::ParseError("truncated coded frame");
    }
    out.frames_.emplace_back(bytes.begin() + static_cast<long>(pos),
                             bytes.begin() + static_cast<long>(pos + frame_bytes));
    pos += frame_bytes;
    if (pos + 9 > bytes.size()) {
      return Status::ParseError("truncated frame stats");
    }
    CodedFrameStats stats;
    stats.bytes = frame_bytes;
    stats.intra_frame = bytes[pos++] != 0;
    uint32_t motion_milli, ratio_e4;
    (void)GetU32(bytes, &pos, &motion_milli);
    (void)GetU32(bytes, &pos, &ratio_e4);
    stats.mean_motion = motion_milli / 1000.0;
    stats.intra_block_ratio = ratio_e4 / 10000.0;
    out.stats_.push_back(stats);
  }
  if (pos != bytes.size()) {
    return Status::ParseError("trailing bytes after coded video");
  }
  out.BuildGopIndex();
  return out;
}

Result<EncodedVideo> BlockVideoEncoder::Encode(const VideoSource& video,
                                               const CodecConfig& config) {
  if (video.num_frames() == 0) {
    return Status::InvalidArgument("cannot encode an empty video");
  }
  if (config.gop_size < 1 || config.quality < 1 || config.quality > 100 ||
      config.motion_search_range < 0 || config.motion_search_range > 120) {
    return Status::InvalidArgument("invalid codec config");
  }
  EncodedVideo out;
  out.width_ = video.width();
  out.height_ = video.height();
  out.fps_ = video.fps();
  out.config_ = config;
  const QuantTableSet tables = MakeQuantTables(config.quality);

  Planes reference;  // decoded (closed-loop) reference
  bool have_reference = false;

  for (int64_t f = 0; f < video.num_frames(); ++f) {
    COBRA_ASSIGN_OR_RETURN(Frame frame, video.GetFrame(f));
    Planes current;
    FrameToPlanes(frame, &current);
    Planes recon = current;  // overwritten block by block

    const bool intra_frame = (f % config.gop_size == 0);
    std::vector<uint8_t> bits;
    bits.push_back(intra_frame ? 'I' : 'P');

    CodedFrameStats stats;
    stats.intra_frame = intra_frame;
    int mbs = 0, analysis_intra = 0, inter_mbs = 0;
    double motion_sum = 0.0;

    const int mb_cols = current.y.width / kMb;
    const int mb_rows = current.y.height / kMb;
    for (int mby = 0; mby < mb_rows; ++mby) {
      for (int mbx = 0; mbx < mb_cols; ++mbx) {
        ++mbs;
        const int px = mbx * kMb, py = mby * kMb;

        // Motion estimation (always, for the analysis statistics).
        int best_mvx = 0, best_mvy = 0;
        double best_sad = 1e18, zero_sad = 1e18;
        if (have_reference) {
          const int range = config.motion_search_range;
          for (int mvy = -range; mvy <= range; ++mvy) {
            if (py + mvy < 0 || py + mvy + kMb > reference.y.height) continue;
            for (int mvx = -range; mvx <= range; ++mvx) {
              if (px + mvx < 0 || px + mvx + kMb > reference.y.width) continue;
              double sad = MbSad(current.y, reference.y, px, py, mvx, mvy);
              if (mvx == 0 && mvy == 0) zero_sad = sad;
              if (sad < best_sad ||
                  (sad == best_sad && std::abs(mvx) + std::abs(mvy) <
                                          std::abs(best_mvx) + std::abs(best_mvy))) {
                best_sad = sad;
                best_mvx = mvx;
                best_mvy = mvy;
              }
            }
          }
        }
        const bool analysis_poor = !have_reference || best_sad > config.intra_sad;
        if (analysis_poor) ++analysis_intra;

        // Mode decision for the actual coding.
        MbMode mode;
        if (intra_frame) {
          mode = kIntra;
        } else if (zero_sad < config.skip_sad) {
          mode = kSkip;
        } else if (!analysis_poor) {
          mode = kInter;
        } else {
          mode = kIntra;
        }

        if (mode == kSkip) {
          bits.push_back(kSkip);
          // Reconstruction copies the reference.
          for (const BlockRef& b : kMbBlocks) {
            const Plane& ref_plane = reference.*(b.plane);
            Plane& rec_plane = recon.*(b.plane);
            int scale = b.chroma ? 2 : 1;
            int bx = (b.chroma ? mbx * 8 : px) + b.dx;
            int by = (b.chroma ? mby * 8 : py) + b.dy;
            (void)scale;
            for (int y = 0; y < 8; ++y) {
              for (int x = 0; x < 8; ++x) {
                rec_plane.Set(bx + x, by + y, ref_plane.At(bx + x, by + y));
              }
            }
          }
          continue;
        }

        if (mode == kInter) {
          ++inter_mbs;
          motion_sum += std::sqrt(static_cast<double>(best_mvx) * best_mvx +
                                  static_cast<double>(best_mvy) * best_mvy);
        }

        bits.push_back(mode);
        if (mode == kInter) {
          bits.push_back(static_cast<uint8_t>(static_cast<int8_t>(best_mvx)));
          bits.push_back(static_cast<uint8_t>(static_cast<int8_t>(best_mvy)));
        }

        // Code the six blocks; collect the coded-block pattern first.
        std::array<int16_t, 64> zz[6];
        PixelBlock recon_block[6];
        PixelBlock prediction[6];
        uint8_t cbp = 0;
        for (int b = 0; b < 6; ++b) {
          const BlockRef& ref = kMbBlocks[b];
          int bx = (ref.chroma ? mbx * 8 : px) + ref.dx;
          int by = (ref.chroma ? mby * 8 : py) + ref.dy;
          PixelBlock source;
          ReadBlock(current.*(ref.plane), bx, by, &source);

          PixelBlock input;
          if (mode == kIntra) {
            for (int i = 0; i < 64; ++i) {
              input[static_cast<size_t>(i)] =
                  static_cast<int16_t>(source[static_cast<size_t>(i)] - 128);
            }
          } else {
            // Motion-compensated prediction (chroma uses mv/2).
            int mvx = ref.chroma ? best_mvx / 2 : best_mvx;
            int mvy = ref.chroma ? best_mvy / 2 : best_mvy;
            ReadBlock(reference.*(ref.plane), bx + mvx, by + mvy,
                      &prediction[b]);
            for (int i = 0; i < 64; ++i) {
              input[static_cast<size_t>(i)] = static_cast<int16_t>(
                  source[static_cast<size_t>(i)] -
                  prediction[b][static_cast<size_t>(i)]);
            }
          }
          CodeBlock(input, tables, ref.chroma, &zz[b], &recon_block[b]);
          bool nonzero = false;
          for (int16_t v : zz[b]) {
            if (v != 0) {
              nonzero = true;
              break;
            }
          }
          if (nonzero) cbp |= static_cast<uint8_t>(1 << b);
        }
        bits.push_back(cbp);
        for (int b = 0; b < 6; ++b) {
          if (cbp & (1 << b)) (void)EncodeBlock(zz[b], &bits);
        }

        // Closed-loop reconstruction.
        for (int b = 0; b < 6; ++b) {
          const BlockRef& ref = kMbBlocks[b];
          int bx = (ref.chroma ? mbx * 8 : px) + ref.dx;
          int by = (ref.chroma ? mby * 8 : py) + ref.dy;
          PixelBlock zero{};
          const PixelBlock& contribution =
              (cbp & (1 << b)) ? recon_block[b] : zero;
          if (mode == kIntra) {
            WriteBlock(&(recon.*(ref.plane)), bx, by, contribution, nullptr,
                       128);
          } else {
            WriteBlock(&(recon.*(ref.plane)), bx, by, contribution,
                       &prediction[b], 0);
          }
        }
      }
    }

    stats.bytes = bits.size();
    stats.mean_motion = inter_mbs > 0 ? motion_sum / inter_mbs : 0.0;
    stats.intra_block_ratio =
        mbs > 0 ? static_cast<double>(analysis_intra) / mbs : 0.0;
    out.frames_.push_back(std::move(bits));
    out.stats_.push_back(stats);

    reference = std::move(recon);
    have_reference = true;
  }
  out.BuildGopIndex();
  return out;
}

// ---------- decoder ----------

struct CodedVideoSource::DecoderState {
  Planes reference;
  int64_t next_index = 0;  ///< the frame DecodeNext would produce
};

CodedVideoSource::CodedVideoSource(EncodedVideo encoded)
    : encoded_(std::move(encoded)),
      quant_tables_(MakeQuantTables(encoded_.config().quality)) {}

CodedVideoSource::~CodedVideoSource() = default;

CodedVideoSource::DecoderState& CodedVideoSource::ThreadState() const {
  const std::thread::id id = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(states_mutex_);
  std::shared_ptr<DecoderState>& slot = states_[id];
  if (!slot) slot = std::make_shared<DecoderState>();
  // Safe to hand out unlocked: the state is only ever touched by the thread
  // whose id keys it, and map growth does not move existing nodes.
  return *slot;
}

namespace {

Status DecodeFrameBits(const std::vector<uint8_t>& bits,
                       const QuantTableSet& tables, Planes* reference,
                       int luma_w, int luma_h) {
  if (bits.empty()) return Status::ParseError("empty frame bitstream");
  size_t pos = 0;
  const char type = static_cast<char>(bits[pos++]);
  if (type != 'I' && type != 'P') {
    return Status::ParseError("bad frame type marker");
  }
  Planes current;
  current.y.Resize(luma_w, luma_h);
  current.cb.Resize(luma_w / 2, luma_h / 2);
  current.cr.Resize(luma_w / 2, luma_h / 2);

  const int mb_cols = luma_w / kMb;
  const int mb_rows = luma_h / kMb;
  for (int mby = 0; mby < mb_rows; ++mby) {
    for (int mbx = 0; mbx < mb_cols; ++mbx) {
      if (pos >= bits.size()) return Status::ParseError("truncated stream");
      const int px = mbx * kMb, py = mby * kMb;
      MbMode mode = static_cast<MbMode>(bits[pos++]);
      int mvx = 0, mvy = 0;
      if (mode == kSkip || mode == kInter) {
        if (type == 'I') return Status::ParseError("inter MB in I frame");
      }
      if (mode == kInter) {
        if (pos + 2 > bits.size()) return Status::ParseError("truncated mv");
        mvx = static_cast<int8_t>(bits[pos++]);
        mvy = static_cast<int8_t>(bits[pos++]);
      }
      if (mode == kSkip) {
        for (const BlockRef& b : kMbBlocks) {
          int bx = (b.chroma ? mbx * 8 : px) + b.dx;
          int by = (b.chroma ? mby * 8 : py) + b.dy;
          for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
              (current.*(b.plane))
                  .Set(bx + x, by + y, (reference->*(b.plane)).At(bx + x, by + y));
            }
          }
        }
        continue;
      }
      if (mode != kInter && mode != kIntra) {
        return Status::ParseError("bad macroblock mode");
      }
      if (pos >= bits.size()) return Status::ParseError("truncated cbp");
      uint8_t cbp = bits[pos++];
      for (int b = 0; b < 6; ++b) {
        const BlockRef& ref = kMbBlocks[b];
        int bx = (ref.chroma ? mbx * 8 : px) + ref.dx;
        int by = (ref.chroma ? mby * 8 : py) + ref.dy;
        PixelBlock contribution{};
        if (cbp & (1 << b)) {
          std::array<int16_t, 64> zz;
          if (!DecodeBlock(bits, &pos, &zz)) {
            return Status::ParseError("corrupt block data");
          }
          ReconstructBlock(zz, tables, ref.chroma, &contribution);
        }
        if (mode == kIntra) {
          WriteBlock(&(current.*(ref.plane)), bx, by, contribution, nullptr,
                     128);
        } else {
          int cmvx = ref.chroma ? mvx / 2 : mvx;
          int cmvy = ref.chroma ? mvy / 2 : mvy;
          PixelBlock prediction;
          ReadBlock(reference->*(ref.plane), bx + cmvx, by + cmvy, &prediction);
          WriteBlock(&(current.*(ref.plane)), bx, by, contribution, &prediction,
                     0);
        }
      }
    }
  }
  *reference = std::move(current);
  return Status::OK();
}

}  // namespace

Result<Frame> CodedVideoSource::DecodeAt(int64_t index) const {
  const int luma_w = PadTo(encoded_.width(), kMb);
  const int luma_h = PadTo(encoded_.height(), kMb);
  DecoderState& state = ThreadState();
  // The cache holds only this thread's most recently decoded frame
  // (next_index - 1). Restart at the target's I-frame when seeking
  // backwards, or when the target's GOP begins after the cache (cheaper
  // than decoding through).
  const int64_t gop_start =
      encoded_.Gops()[static_cast<size_t>(encoded_.GopOfFrame(index))]
          .first_frame;
  if (index + 1 < state.next_index || gop_start > state.next_index) {
    state.next_index = gop_start;
  }
  while (state.next_index <= index) {
    COBRA_RETURN_NOT_OK(DecodeFrameBits(encoded_.FrameBits(state.next_index),
                                        quant_tables_, &state.reference,
                                        luma_w, luma_h));
    ++state.next_index;
  }
  return PlanesToFrame(state.reference, encoded_.width(), encoded_.height());
}

Result<std::vector<Frame>> CodedVideoSource::DecodeGop(int64_t gop_index) const {
  if (gop_index < 0 || gop_index >= encoded_.NumGops()) {
    return Status::OutOfRange(
        StringFormat("GOP %lld out of [0, %lld)",
                     static_cast<long long>(gop_index),
                     static_cast<long long>(encoded_.NumGops())));
  }
  const GopIndexEntry& gop = encoded_.Gops()[static_cast<size_t>(gop_index)];
  const int luma_w = PadTo(encoded_.width(), kMb);
  const int luma_h = PadTo(encoded_.height(), kMb);
  Planes reference;  // local: nothing shared, nothing locked
  std::vector<Frame> frames;
  frames.reserve(static_cast<size_t>(gop.num_frames));
  for (int64_t f = gop.first_frame; f < gop.first_frame + gop.num_frames; ++f) {
    COBRA_RETURN_NOT_OK(DecodeFrameBits(encoded_.FrameBits(f), quant_tables_,
                                        &reference, luma_w, luma_h));
    frames.push_back(PlanesToFrame(reference, encoded_.width(),
                                   encoded_.height()));
  }
  return frames;
}

Result<MemoryVideo> CodedVideoSource::DecodeAll(util::ThreadPool* pool) const {
  std::vector<Frame> frames(static_cast<size_t>(encoded_.num_frames()));
  const int64_t num_gops = encoded_.NumGops();
  std::vector<Status> gop_status(static_cast<size_t>(num_gops), Status::OK());
  const auto decode_one = [&](int64_t g) {
    Result<std::vector<Frame>> decoded = DecodeGop(g);
    if (!decoded.ok()) {
      gop_status[static_cast<size_t>(g)] = decoded.status();
      return;
    }
    const int64_t first =
        encoded_.Gops()[static_cast<size_t>(g)].first_frame;
    std::vector<Frame> got = decoded.TakeValue();
    for (size_t i = 0; i < got.size(); ++i) {
      frames[static_cast<size_t>(first) + i] = std::move(got[i]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, num_gops, 1, decode_one);
  } else {
    for (int64_t g = 0; g < num_gops; ++g) decode_one(g);
  }
  for (const Status& s : gop_status) COBRA_RETURN_NOT_OK(s);
  return MemoryVideo(std::move(frames), encoded_.fps());
}

Result<Frame> CodedVideoSource::GetFrame(int64_t index) const {
  if (index < 0 || index >= encoded_.num_frames()) {
    return Status::OutOfRange(
        StringFormat("frame %lld out of range", static_cast<long long>(index)));
  }
  return DecodeAt(index);
}

Result<double> ComputePsnr(const Frame& a, const Frame& b) {
  if (!a.SameSizeAs(b) || a.Empty()) {
    return Status::InvalidArgument("PSNR requires equal non-empty frames");
  }
  double mse = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const Rgb& pa = a.At(x, y);
      const Rgb& pb = b.At(x, y);
      double dr = pa.r - static_cast<double>(pb.r);
      double dg = pa.g - static_cast<double>(pb.g);
      double db = pa.b - static_cast<double>(pb.b);
      mse += dr * dr + dg * dg + db * db;
    }
  }
  mse /= static_cast<double>(a.PixelCount()) * 3.0;
  if (mse <= 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace cobra::media
