#include "media/ppm.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "util/strings.h"

namespace cobra::media {

Status WritePpm(const Frame& frame, const std::string& path) {
  if (frame.Empty()) return Status::InvalidArgument("cannot write empty frame");
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "wb"),
                                          &std::fclose);
  if (!f) return Status::Internal(StringFormat("cannot open %s", path.c_str()));
  std::fprintf(f.get(), "P6\n%d %d\n255\n", frame.width(), frame.height());
  std::vector<uint8_t> row(static_cast<size_t>(frame.width()) * 3);
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const Rgb& p = frame.At(x, y);
      row[3 * x] = p.r;
      row[3 * x + 1] = p.g;
      row[3 * x + 2] = p.b;
    }
    if (std::fwrite(row.data(), 1, row.size(), f.get()) != row.size()) {
      return Status::Internal(StringFormat("short write to %s", path.c_str()));
    }
  }
  return Status::OK();
}

Result<Frame> ReadPpm(const std::string& path) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          &std::fclose);
  if (!f) return Status::NotFound(StringFormat("cannot open %s", path.c_str()));
  char magic[3] = {};
  int width = 0, height = 0, maxval = 0;
  if (std::fscanf(f.get(), "%2s %d %d %d", magic, &width, &height, &maxval) != 4 ||
      std::string(magic) != "P6" || maxval != 255 || width <= 0 || height <= 0) {
    return Status::ParseError(StringFormat("bad PPM header in %s", path.c_str()));
  }
  std::fgetc(f.get());  // single whitespace after maxval
  Frame frame(width, height);
  std::vector<uint8_t> row(static_cast<size_t>(width) * 3);
  for (int y = 0; y < height; ++y) {
    if (std::fread(row.data(), 1, row.size(), f.get()) != row.size()) {
      return Status::ParseError(StringFormat("truncated PPM %s", path.c_str()));
    }
    for (int x = 0; x < width; ++x) {
      frame.At(x, y) = Rgb{row[3 * x], row[3 * x + 1], row[3 * x + 2]};
    }
  }
  return frame;
}

}  // namespace cobra::media
