#pragma once

/// \file block_codec.h
/// A block-based hybrid video codec (8x8 DCT + quantization + zigzag/RLE
/// entropy coding, 16x16-macroblock motion compensation, I/P GOP
/// structure) in the style of MPEG-1.
///
/// In the original demo an external MPEG decoder sits below the segment
/// detector; this codec plays that role AND exposes the encoder-side
/// statistics (bytes per frame, motion magnitude, intra-block ratio) that
/// compressed-domain indexing techniques exploit (extension experiment E9).

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "media/dct.h"
#include "media/frame.h"
#include "media/video.h"
#include "util/status.h"

namespace cobra::util {
class ThreadPool;
}  // namespace cobra::util

namespace cobra::media {

struct CodecConfig {
  int gop_size = 12;           ///< one I-frame every gop_size frames
  int quality = 75;            ///< quantizer quality, 1..100
  int motion_search_range = 7; ///< full-pel search window (+-range)
  /// A P-frame macroblock whose motion-compensated SAD per pixel is below
  /// this is coded as SKIP (copy from reference).
  double skip_sad = 1.5;
  /// A macroblock is coded intra inside a P-frame when even the best
  /// motion-compensated SAD per pixel exceeds this. 16 gives clean
  /// separation between in-shot prediction (SAD ~ sensor noise) and
  /// across-cut prediction (SAD ~ scene difference), which the
  /// compressed-domain shot detector relies on.
  double intra_sad = 16.0;
};

/// Encoder-side per-frame statistics (the compressed-domain signal).
struct CodedFrameStats {
  bool intra_frame = false;       ///< I frame
  size_t bytes = 0;               ///< bitstream size
  double mean_motion = 0.0;       ///< mean |mv| over inter macroblocks
  /// Fraction of macroblocks whose best motion match is poor. Computed by
  /// the encoder's mode decision for every frame (also I frames, where it
  /// is analysis-only) — this is what the compressed-domain shot detector
  /// thresholds.
  double intra_block_ratio = 0.0;
};

/// One closed GOP: frames [first_frame, first_frame + num_frames), with an
/// I-frame at first_frame. Because every GOP starts at a random-access
/// point, GOPs decode independently — the unit of parallel decode.
/// `byte_offset` locates the GOP's first frame payload within the
/// concatenation of all frame bitstreams (the frame-payload region of
/// Serialize() output, ignoring the per-frame framing/stat bytes).
struct GopIndexEntry {
  int64_t first_frame = 0;
  int64_t num_frames = 0;
  int64_t byte_offset = 0;
};

/// An encoded video: per-frame bitstreams + stats + GOP index.
class EncodedVideo {
 public:
  int width() const { return width_; }
  int height() const { return height_; }
  double fps() const { return fps_; }
  const CodecConfig& config() const { return config_; }
  int64_t num_frames() const { return static_cast<int64_t>(frames_.size()); }

  const std::vector<uint8_t>& FrameBits(int64_t i) const {
    return frames_[static_cast<size_t>(i)];
  }
  const CodedFrameStats& Stats(int64_t i) const {
    return stats_[static_cast<size_t>(i)];
  }
  const std::vector<CodedFrameStats>& AllStats() const { return stats_; }

  int64_t TotalBytes() const;
  /// Raw RGB24 size / coded size.
  double CompressionRatio() const;

  /// The GOP index (random-access points), built by the encoder and by
  /// Deserialize from the 'I' frame markers. Never empty for a non-empty
  /// video; entries are sorted by first_frame and partition [0, num_frames).
  const std::vector<GopIndexEntry>& Gops() const { return gops_; }
  int64_t NumGops() const { return static_cast<int64_t>(gops_.size()); }
  /// Index into Gops() of the GOP containing frame `frame`; requires
  /// `frame` in [0, num_frames()).
  int64_t GopOfFrame(int64_t frame) const;

  /// Serializes the whole coded video (header + per-frame streams) to a
  /// byte buffer, and back. Deserialize validates the header and per-frame
  /// framing; corrupted payloads surface later as ParseError from the
  /// decoder, never as undefined behaviour.
  std::vector<uint8_t> Serialize() const;
  static Result<EncodedVideo> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  friend class BlockVideoEncoder;
  /// Rebuilds gops_ from the 'I'/'P' markers in frames_.
  void BuildGopIndex();

  int width_ = 0;
  int height_ = 0;
  double fps_ = 25.0;
  CodecConfig config_;
  std::vector<std::vector<uint8_t>> frames_;
  std::vector<CodedFrameStats> stats_;
  std::vector<GopIndexEntry> gops_;
};

/// Encodes a VideoSource into an EncodedVideo.
class BlockVideoEncoder {
 public:
  static Result<EncodedVideo> Encode(const VideoSource& video,
                                     const CodecConfig& config = {});
};

/// Decodes an EncodedVideo; random access decodes forward from the
/// preceding I-frame (sequential access is O(1) amortized via a per-thread
/// cache, worst case O(gop_size) per frame).
///
/// Thread-safety: `GetFrame` is safe to call concurrently — each calling
/// thread gets its own cached decoder state, so concurrent sequential scans
/// from a thread pool neither race nor thrash each other's cache.
/// `DecodeGop` is pure (no shared state) and reentrant.
class CodedVideoSource : public VideoSource {
 public:
  explicit CodedVideoSource(EncodedVideo encoded);
  ~CodedVideoSource() override;

  int64_t num_frames() const override { return encoded_.num_frames(); }
  int width() const override { return encoded_.width(); }
  int height() const override { return encoded_.height(); }
  double fps() const override { return encoded_.fps(); }

  Result<Frame> GetFrame(int64_t index) const override;

  /// Decodes one whole GOP (`gop_index` in [0, encoded().NumGops())) from
  /// its I-frame, returning its frames in display order. Touches no shared
  /// decoder state: independent GOPs decode concurrently, and the result is
  /// bit-identical to sequential GetFrame calls over the same range.
  Result<std::vector<Frame>> DecodeGop(int64_t gop_index) const;

  /// Decodes the entire video, GOP-parallel across `pool` (nullptr or an
  /// inline pool decodes sequentially). Output is bit-identical to
  /// sequential decode regardless of thread count: every frame slot is
  /// written exactly once, indexed by frame number.
  Result<MemoryVideo> DecodeAll(util::ThreadPool* pool = nullptr) const;

  const EncodedVideo& encoded() const { return encoded_; }

 private:
  struct DecoderState;
  /// This thread's decoder state (created on first use).
  DecoderState& ThreadState() const;
  Result<Frame> DecodeAt(int64_t index) const;

  EncodedVideo encoded_;
  QuantTableSet quant_tables_;  ///< scaled once for the stream's quality
  mutable std::mutex states_mutex_;
  mutable std::unordered_map<std::thread::id, std::shared_ptr<DecoderState>>
      states_;
};

/// PSNR (dB) between two same-size frames over all RGB channels.
Result<double> ComputePsnr(const Frame& a, const Frame& b);

}  // namespace cobra::media
