#pragma once

/// \file block_codec.h
/// A block-based hybrid video codec (8x8 DCT + quantization + zigzag/RLE
/// entropy coding, 16x16-macroblock motion compensation, I/P GOP
/// structure) in the style of MPEG-1.
///
/// In the original demo an external MPEG decoder sits below the segment
/// detector; this codec plays that role AND exposes the encoder-side
/// statistics (bytes per frame, motion magnitude, intra-block ratio) that
/// compressed-domain indexing techniques exploit (extension experiment E9).

#include <cstdint>
#include <memory>
#include <vector>

#include "media/frame.h"
#include "media/video.h"
#include "util/status.h"

namespace cobra::media {

struct CodecConfig {
  int gop_size = 12;           ///< one I-frame every gop_size frames
  int quality = 75;            ///< quantizer quality, 1..100
  int motion_search_range = 7; ///< full-pel search window (+-range)
  /// A P-frame macroblock whose motion-compensated SAD per pixel is below
  /// this is coded as SKIP (copy from reference).
  double skip_sad = 1.5;
  /// A macroblock is coded intra inside a P-frame when even the best
  /// motion-compensated SAD per pixel exceeds this. 16 gives clean
  /// separation between in-shot prediction (SAD ~ sensor noise) and
  /// across-cut prediction (SAD ~ scene difference), which the
  /// compressed-domain shot detector relies on.
  double intra_sad = 16.0;
};

/// Encoder-side per-frame statistics (the compressed-domain signal).
struct CodedFrameStats {
  bool intra_frame = false;       ///< I frame
  size_t bytes = 0;               ///< bitstream size
  double mean_motion = 0.0;       ///< mean |mv| over inter macroblocks
  /// Fraction of macroblocks whose best motion match is poor. Computed by
  /// the encoder's mode decision for every frame (also I frames, where it
  /// is analysis-only) — this is what the compressed-domain shot detector
  /// thresholds.
  double intra_block_ratio = 0.0;
};

/// An encoded video: per-frame bitstreams + stats.
class EncodedVideo {
 public:
  int width() const { return width_; }
  int height() const { return height_; }
  double fps() const { return fps_; }
  const CodecConfig& config() const { return config_; }
  int64_t num_frames() const { return static_cast<int64_t>(frames_.size()); }

  const std::vector<uint8_t>& FrameBits(int64_t i) const {
    return frames_[static_cast<size_t>(i)];
  }
  const CodedFrameStats& Stats(int64_t i) const {
    return stats_[static_cast<size_t>(i)];
  }
  const std::vector<CodedFrameStats>& AllStats() const { return stats_; }

  int64_t TotalBytes() const;
  /// Raw RGB24 size / coded size.
  double CompressionRatio() const;

  /// Serializes the whole coded video (header + per-frame streams) to a
  /// byte buffer, and back. Deserialize validates the header and per-frame
  /// framing; corrupted payloads surface later as ParseError from the
  /// decoder, never as undefined behaviour.
  std::vector<uint8_t> Serialize() const;
  static Result<EncodedVideo> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  friend class BlockVideoEncoder;
  int width_ = 0;
  int height_ = 0;
  double fps_ = 25.0;
  CodecConfig config_;
  std::vector<std::vector<uint8_t>> frames_;
  std::vector<CodedFrameStats> stats_;
};

/// Encodes a VideoSource into an EncodedVideo.
class BlockVideoEncoder {
 public:
  static Result<EncodedVideo> Encode(const VideoSource& video,
                                     const CodecConfig& config = {});
};

/// Decodes an EncodedVideo; random access decodes forward from the
/// preceding I-frame (sequential access is O(1) amortized via a cache).
class CodedVideoSource : public VideoSource {
 public:
  explicit CodedVideoSource(EncodedVideo encoded);
  ~CodedVideoSource() override;

  int64_t num_frames() const override { return encoded_.num_frames(); }
  int width() const override { return encoded_.width(); }
  int height() const override { return encoded_.height(); }
  double fps() const override { return encoded_.fps(); }

  Result<Frame> GetFrame(int64_t index) const override;

  const EncodedVideo& encoded() const { return encoded_; }

 private:
  struct DecoderState;
  Result<Frame> DecodeAt(int64_t index) const;

  EncodedVideo encoded_;
  mutable std::unique_ptr<DecoderState> state_;
};

/// PSNR (dB) between two same-size frames over all RGB channels.
Result<double> ComputePsnr(const Frame& a, const Frame& b);

}  // namespace cobra::media
