#include "media/video.h"

#include "util/strings.h"

namespace cobra::media {

MemoryVideo::MemoryVideo(std::vector<Frame> frames, double fps)
    : frames_(std::move(frames)), fps_(fps) {
  if (!frames_.empty()) {
    width_ = frames_.front().width();
    height_ = frames_.front().height();
  }
}

Result<Frame> MemoryVideo::GetFrame(int64_t index) const {
  if (index < 0 || index >= num_frames()) {
    return Status::OutOfRange(
        StringFormat("frame %lld out of [0, %lld)", static_cast<long long>(index),
                     static_cast<long long>(num_frames())));
  }
  return frames_[static_cast<size_t>(index)];
}

Result<Frame*> MemoryVideo::MutableFrame(int64_t index) {
  if (index < 0 || index >= num_frames()) {
    return Status::OutOfRange(
        StringFormat("frame %lld out of [0, %lld)", static_cast<long long>(index),
                     static_cast<long long>(num_frames())));
  }
  return &frames_[static_cast<size_t>(index)];
}

Status MemoryVideo::Append(Frame frame) {
  if (frames_.empty()) {
    width_ = frame.width();
    height_ = frame.height();
  } else if (frame.width() != width_ || frame.height() != height_) {
    return Status::InvalidArgument("appended frame dimensions differ");
  }
  frames_.push_back(std::move(frame));
  return Status::OK();
}

}  // namespace cobra::media
