#include "media/frame.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace cobra::media {

Frame::Frame(int width, int height, Rgb fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<size_t>(width) * static_cast<size_t>(height), fill) {}

void Frame::FillRect(const RectI& rect, Rgb color) {
  RectI r = rect.ClipTo(width_, height_);
  for (int y = r.y; y < r.Bottom(); ++y) {
    for (int x = r.x; x < r.Right(); ++x) {
      At(x, y) = color;
    }
  }
}

void Frame::FillEllipse(double cx, double cy, double rx, double ry, Rgb color) {
  if (rx <= 0 || ry <= 0) return;
  int y0 = std::max(0, static_cast<int>(std::floor(cy - ry)));
  int y1 = std::min(height_ - 1, static_cast<int>(std::ceil(cy + ry)));
  int x0 = std::max(0, static_cast<int>(std::floor(cx - rx)));
  int x1 = std::min(width_ - 1, static_cast<int>(std::ceil(cx + rx)));
  for (int y = y0; y <= y1; ++y) {
    double dy = (y - cy) / ry;
    for (int x = x0; x <= x1; ++x) {
      double dx = (x - cx) / rx;
      if (dx * dx + dy * dy <= 1.0) At(x, y) = color;
    }
  }
}

void Frame::DrawLine(int x0, int y0, int x1, int y1, Rgb color) {
  int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    Set(x0, y0, color);
    if (x0 == x1 && y0 == y1) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

Frame Frame::Crop(const RectI& rect) const {
  RectI r = rect.ClipTo(width_, height_);
  Frame out(r.width, r.height);
  for (int y = 0; y < r.height; ++y) {
    for (int x = 0; x < r.width; ++x) {
      out.At(x, y) = At(r.x + x, r.y + y);
    }
  }
  return out;
}

Result<Frame> Frame::Downsample(int factor) const {
  if (factor < 1) {
    return Status::InvalidArgument("downsample factor must be >= 1");
  }
  if (factor == 1) return *this;
  int nw = std::max(1, width_ / factor);
  int nh = std::max(1, height_ / factor);
  Frame out(nw, nh);
  for (int y = 0; y < nh; ++y) {
    for (int x = 0; x < nw; ++x) {
      int sum_r = 0, sum_g = 0, sum_b = 0, n = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          int sx = x * factor + dx;
          int sy = y * factor + dy;
          if (sx < width_ && sy < height_) {
            const Rgb& p = At(sx, sy);
            sum_r += p.r;
            sum_g += p.g;
            sum_b += p.b;
            ++n;
          }
        }
      }
      out.At(x, y) = Rgb{static_cast<uint8_t>(sum_r / n),
                         static_cast<uint8_t>(sum_g / n),
                         static_cast<uint8_t>(sum_b / n)};
    }
  }
  return out;
}

}  // namespace cobra::media
