#pragma once

/// \file video.h
/// `VideoSource`: the abstract decoded-video interface consumed by every
/// detector, plus an in-memory implementation.
///
/// The paper's segment detector sits behind an external MPEG decoder; here
/// any frame producer (the tennis synthesizer, a test pattern, a recorded
/// buffer) plugs in behind the same interface.

#include <cstdint>
#include <memory>
#include <vector>

#include "media/frame.h"
#include "util/status.h"

namespace cobra::media {

/// Random-access source of decoded frames.
class VideoSource {
 public:
  virtual ~VideoSource() = default;

  virtual int64_t num_frames() const = 0;
  virtual int width() const = 0;
  virtual int height() const = 0;
  /// Frames per second of the nominal timeline (used to convert event frame
  /// intervals to seconds in query results).
  virtual double fps() const = 0;

  /// Decodes frame `index` in [0, num_frames()).
  virtual Result<Frame> GetFrame(int64_t index) const = 0;
};

/// A video fully materialized in memory.
class MemoryVideo : public VideoSource {
 public:
  MemoryVideo(std::vector<Frame> frames, double fps);

  int64_t num_frames() const override {
    return static_cast<int64_t>(frames_.size());
  }
  int width() const override { return width_; }
  int height() const override { return height_; }
  double fps() const override { return fps_; }

  Result<Frame> GetFrame(int64_t index) const override;

  /// Appends a frame; must match the dimensions of the first frame.
  Status Append(Frame frame);

  /// Mutable access for post-processing passes (e.g. the synthesizer's
  /// dissolve rendering). Bounds-checked like GetFrame: returns OutOfRange
  /// instead of handing out a dangling pointer.
  Result<Frame*> MutableFrame(int64_t index);

 private:
  std::vector<Frame> frames_;
  int width_ = 0;
  int height_ = 0;
  double fps_ = 25.0;
};

}  // namespace cobra::media
