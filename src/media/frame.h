#pragma once

/// \file frame.h
/// `Frame`: a decoded RGB8 raster, the raw-data layer of the COBRA model.

#include <cstdint>
#include <vector>

#include "media/color.h"
#include "util/geometry.h"
#include "util/status.h"

namespace cobra::media {

/// A decoded video frame: packed RGB8, row-major, origin top-left.
///
/// Frames own their pixels; copying is explicit and cheap enough at the
/// analysis resolutions the detectors use (the paper's detectors operate on
/// subsampled frames too).
class Frame {
 public:
  Frame() = default;

  /// Allocates a width x height frame filled with `fill`.
  Frame(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool Empty() const { return width_ == 0 || height_ == 0; }
  int64_t PixelCount() const { return int64_t{width_} * height_; }

  /// Unchecked pixel access. Requires 0 <= x < width, 0 <= y < height.
  const Rgb& At(int x, int y) const { return pixels_[Index(x, y)]; }
  Rgb& At(int x, int y) { return pixels_[Index(x, y)]; }

  /// Bounds-checked pixel write; out-of-frame writes are ignored.
  void Set(int x, int y, Rgb color) {
    if (x >= 0 && x < width_ && y >= 0 && y < height_) At(x, y) = color;
  }

  const std::vector<Rgb>& pixels() const { return pixels_; }

  /// Pointer to the first pixel of row `y` (unchecked; 0 <= y < height).
  ///
  /// Contract: rows are packed `Rgb` triples (no padding, no row stride
  /// beyond `width()`), and consecutive rows are contiguous in memory, so
  /// `Row(0)` spans all `PixelCount()` pixels of the frame. The batch
  /// kernels in vision/kernels.h rely on this layout.
  const Rgb* Row(int y) const { return pixels_.data() + Index(0, y); }
  Rgb* Row(int y) { return pixels_.data() + Index(0, y); }

  /// Fills an axis-aligned rectangle (clipped to the frame).
  void FillRect(const RectI& rect, Rgb color);

  /// Fills an axis-aligned ellipse centered at (cx, cy) (clipped).
  void FillEllipse(double cx, double cy, double rx, double ry, Rgb color);

  /// Draws a 1-pixel-thick line (Bresenham), clipped.
  void DrawLine(int x0, int y0, int x1, int y1, Rgb color);

  /// Returns the sub-image under `rect` clipped to the frame.
  Frame Crop(const RectI& rect) const;

  /// Box-filter downsample by integer `factor` (>= 1).
  Result<Frame> Downsample(int factor) const;

  bool SameSizeAs(const Frame& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * static_cast<size_t>(width_) +
           static_cast<size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

}  // namespace cobra::media
