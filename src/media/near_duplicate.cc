#include "media/near_duplicate.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/strings.h"

namespace cobra::media {
namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::min(255.0, std::max(0.0, v)));
}

/// Nearest-neighbor resample of `src` into a width x height raster.
Frame ResizeNearest(const Frame& src, int width, int height) {
  Frame out(width, height);
  for (int y = 0; y < height; ++y) {
    const int sy = std::min(src.height() - 1,
                            static_cast<int>(int64_t{y} * src.height() / height));
    const Rgb* row = src.Row(sy);
    Rgb* out_row = out.Row(y);
    for (int x = 0; x < width; ++x) {
      const int sx = std::min(src.width() - 1,
                              static_cast<int>(int64_t{x} * src.width() / width));
      out_row[x] = row[sx];
    }
  }
  return out;
}

Status ValidateTransform(const Frame& probe, NearDuplicateTransform transform,
                         const NearDuplicateConfig& config) {
  switch (transform) {
    case NearDuplicateTransform::kCropZoom: {
      if (config.crop_fraction <= 0.0 || config.crop_fraction >= 0.25) {
        return Status::InvalidArgument("crop_fraction must be in (0, 0.25)");
      }
      const int cx = static_cast<int>(probe.width() * config.crop_fraction);
      const int cy = static_cast<int>(probe.height() * config.crop_fraction);
      if (probe.width() - 2 * cx < 2 || probe.height() - 2 * cy < 2) {
        return Status::InvalidArgument("crop_fraction leaves no interior");
      }
      return Status::OK();
    }
    case NearDuplicateTransform::kLetterbox: {
      if (config.letterbox_fraction <= 0.0 ||
          config.letterbox_fraction >= 0.5) {
        return Status::InvalidArgument(
            "letterbox_fraction must be in (0, 0.5)");
      }
      const int bar =
          static_cast<int>(probe.height() * config.letterbox_fraction / 2.0);
      if (probe.height() - 2 * bar < 2) {
        return Status::InvalidArgument("letterbox bars leave no content");
      }
      return Status::OK();
    }
    case NearDuplicateTransform::kNoise:
      if (config.noise_sigma <= 0.0) {
        return Status::InvalidArgument("noise_sigma must be positive");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown near-duplicate transform");
}

}  // namespace

const char* NearDuplicateTransformToString(NearDuplicateTransform t) {
  switch (t) {
    case NearDuplicateTransform::kCropZoom:
      return "crop_zoom";
    case NearDuplicateTransform::kLetterbox:
      return "letterbox";
    case NearDuplicateTransform::kNoise:
      return "noise";
  }
  return "?";
}

Frame TransformFrame(const Frame& frame, NearDuplicateTransform transform,
                     const NearDuplicateConfig& config, Rng* rng) {
  switch (transform) {
    case NearDuplicateTransform::kCropZoom: {
      const int cx = static_cast<int>(frame.width() * config.crop_fraction);
      const int cy = static_cast<int>(frame.height() * config.crop_fraction);
      const Frame cropped = frame.Crop(
          RectI{cx, cy, frame.width() - 2 * cx, frame.height() - 2 * cy});
      return ResizeNearest(cropped, frame.width(), frame.height());
    }
    case NearDuplicateTransform::kLetterbox: {
      const int bar =
          static_cast<int>(frame.height() * config.letterbox_fraction / 2.0);
      const int content = frame.height() - 2 * bar;
      const Frame squeezed = ResizeNearest(frame, frame.width(), content);
      Frame out(frame.width(), frame.height(), Rgb{0, 0, 0});
      for (int y = 0; y < content; ++y) {
        std::copy(squeezed.Row(y), squeezed.Row(y) + squeezed.width(),
                  out.Row(y + bar));
      }
      return out;
    }
    case NearDuplicateTransform::kNoise: {
      Frame out = frame;
      for (int y = 0; y < out.height(); ++y) {
        Rgb* row = out.Row(y);
        for (int x = 0; x < out.width(); ++x) {
          row[x].r = ClampByte(row[x].r +
                               rng->NextGaussian(0.0, config.noise_sigma));
          row[x].g = ClampByte(row[x].g +
                               rng->NextGaussian(0.0, config.noise_sigma));
          row[x].b = ClampByte(row[x].b +
                               rng->NextGaussian(0.0, config.noise_sigma));
        }
      }
      return out;
    }
  }
  return frame;
}

Result<NearDuplicateClip> MakeNearDuplicateClip(
    const VideoSource& source, FrameInterval range,
    NearDuplicateTransform transform, const NearDuplicateConfig& config) {
  if (range.begin < 0 || range.end < range.begin ||
      range.end >= source.num_frames()) {
    return Status::OutOfRange(
        StringFormat("clip range [%lld, %lld] outside video of %lld frames",
                     static_cast<long long>(range.begin),
                     static_cast<long long>(range.end),
                     static_cast<long long>(source.num_frames())));
  }
  COBRA_ASSIGN_OR_RETURN(Frame probe, source.GetFrame(range.begin));
  COBRA_RETURN_NOT_OK(ValidateTransform(probe, transform, config));

  // One deterministic noise stream per clip, seeded off (seed, range), so
  // regenerating a corpus subset reproduces identical pixels.
  Rng rng(config.seed ^ MixHash(static_cast<uint64_t>(range.begin) * 31 +
                                static_cast<uint64_t>(range.end)));
  std::vector<Frame> frames;
  frames.reserve(static_cast<size_t>(range.end - range.begin + 1));
  for (int64_t f = range.begin; f <= range.end; ++f) {
    COBRA_ASSIGN_OR_RETURN(Frame frame, source.GetFrame(f));
    frames.push_back(TransformFrame(frame, transform, config, &rng));
  }
  NearDuplicateClip clip;
  clip.video = std::make_shared<MemoryVideo>(std::move(frames), source.fps());
  clip.transform = transform;
  clip.source_range = range;
  return clip;
}

Result<std::vector<NearDuplicateClip>> MakeNearDuplicateClips(
    const VideoSource& source, const GroundTruth& truth, size_t every_nth,
    int64_t min_frames, const NearDuplicateConfig& config) {
  if (every_nth == 0) {
    return Status::InvalidArgument("every_nth must be >= 1");
  }
  std::vector<NearDuplicateClip> clips;
  size_t selected = 0;
  for (size_t i = 0; i < truth.shots.size(); ++i) {
    const ShotTruth& shot = truth.shots[i];
    if (shot.range.end - shot.range.begin + 1 < min_frames) continue;
    if (selected++ % every_nth != 0) continue;
    // Cycle the grades so every transform appears across the corpus.
    const auto transform =
        static_cast<NearDuplicateTransform>(clips.size() % 3);
    COBRA_ASSIGN_OR_RETURN(
        NearDuplicateClip clip,
        MakeNearDuplicateClip(source, shot.range, transform, config));
    clip.source_shot = static_cast<int>(i);
    clips.push_back(std::move(clip));
  }
  return clips;
}

}  // namespace cobra::media
