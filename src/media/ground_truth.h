#pragma once

/// \file ground_truth.h
/// Frame-accurate ground truth emitted by the broadcast synthesizer.
///
/// The original demo indexed real Australian Open footage for which no
/// machine-readable truth exists; the synthesizer records what it rendered
/// so every detector in the pipeline can be scored (see DESIGN.md §2).

#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace cobra::media {

/// The four shot categories of the paper's segment detector (§3).
enum class ShotCategory : int {
  kTennis = 0,   ///< court shot: whole playing field visible
  kCloseUp = 1,  ///< player close-up: significant skin-colored area
  kAudience = 2, ///< crowd shot: high entropy, no dominant color
  kOther = 3,    ///< anything else (graphics, studio, ...)
};

constexpr int kNumShotCategories = 4;

const char* ShotCategoryToString(ShotCategory c);

/// Canonical event names shared by the synthesizer, the rule-based event
/// detectors and the HMM recognizer.
inline constexpr const char* kEventServe = "serve";
inline constexpr const char* kEventRally = "rally";
inline constexpr const char* kEventNetPlay = "net_play";
inline constexpr const char* kEventBaselinePlay = "baseline_play";

/// A contiguous run of frames from one camera take.
struct ShotTruth {
  FrameInterval range;
  ShotCategory category = ShotCategory::kOther;
};

/// Where a player really is in one frame of a court shot.
struct PlayerTruth {
  int player_id = 0;  ///< 0 = near (bottom) player, 1 = far (top) player
  PointD center;      ///< body centroid in pixels
  RectI bbox;         ///< tight body bounding box
};

/// A semantic event the synthesizer scripted.
struct EventTruth {
  std::string name;      ///< one of the kEvent* constants
  int player_id = -1;    ///< acting player; -1 = whole court
  FrameInterval range;
};

/// Everything the synthesizer knows about the broadcast it rendered.
class GroundTruth {
 public:
  std::vector<ShotTruth> shots;
  /// players_by_frame[f] lists the players visible in frame f (empty for
  /// non-court shots).
  std::vector<std::vector<PlayerTruth>> players_by_frame;
  std::vector<EventTruth> events;
  /// Gradual (dissolve) transitions: the blended frame ranges. Each begins
  /// at the corresponding shot's first frame.
  std::vector<FrameInterval> gradual_transitions;

  /// True if the cut at `position` (a shot's first frame) is gradual.
  bool IsGradual(int64_t position) const {
    for (const FrameInterval& t : gradual_transitions) {
      if (t.begin == position) return true;
    }
    return false;
  }

  /// Cut positions of hard cuts only.
  std::vector<int64_t> HardCutPositions() const {
    std::vector<int64_t> cuts;
    for (size_t i = 1; i < shots.size(); ++i) {
      if (!IsGradual(shots[i].range.begin)) cuts.push_back(shots[i].range.begin);
    }
    return cuts;
  }

  /// First frames of every shot except the first — the cut positions a shot
  /// boundary detector must find.
  std::vector<int64_t> CutPositions() const {
    std::vector<int64_t> cuts;
    for (size_t i = 1; i < shots.size(); ++i) cuts.push_back(shots[i].range.begin);
    return cuts;
  }

  /// Category of the shot containing `frame`; kOther if out of range.
  ShotCategory CategoryAt(int64_t frame) const {
    for (const auto& s : shots) {
      if (s.range.Contains(frame)) return s.category;
    }
    return ShotCategory::kOther;
  }

  /// Events with the given name.
  std::vector<EventTruth> EventsNamed(const std::string& name) const {
    std::vector<EventTruth> out;
    for (const auto& e : events) {
      if (e.name == name) out.push_back(e);
    }
    return out;
  }
};

}  // namespace cobra::media
