#pragma once

/// \file prefetch.h
/// `PrefetchingVideoSource`: a VideoSource decorator that hides the coded
/// decode stall behind GOP-granular read-ahead.
///
/// The FDE's detectors walk frames roughly in order; the decoder's cost is
/// concentrated in GOP decodes. This decorator watches the access pattern,
/// and while the pipeline consumes frame i it schedules the GOPs covering
/// (i, i + prefetch_frames] onto a thread pool. Decoded GOPs land in a
/// bounded buffer (LRU-evicted per GOP), so the steady-state sequential
/// read is a buffer hit and the decode happens off the critical path.
///
/// Thread-safety contract: `GetFrame` is safe from any number of threads
/// (the FDE calls it from every wave worker). Decode work itself is
/// `CodedVideoSource::DecodeGop`, which is pure, so output is bit-identical
/// to the undecorated source for every config. Destruction joins all
/// in-flight decode tasks.

#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "media/block_codec.h"
#include "media/video.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cobra::media {

struct PrefetchConfig {
  /// How far past the last served frame to keep decoded (in frames).
  /// <= 0 disables read-ahead: the decorator degenerates to a per-GOP
  /// decode cache.
  int64_t prefetch_frames = 96;
  /// A forward jump of at most this many frames still counts as sequential
  /// access (detectors sample every k-th frame); larger jumps and backward
  /// seeks are treated as random access and trigger no read-ahead.
  int64_t sequential_stride = 16;
};

/// Counters for observability and bench assertions (snapshot under lock).
struct PrefetchStats {
  int64_t buffer_hits = 0;      ///< frame served from a resident GOP
  int64_t buffer_waits = 0;     ///< GOP was in flight; caller blocked on it
  int64_t inline_decodes = 0;   ///< GOP absent; caller decoded it itself
  int64_t scheduled_gops = 0;   ///< GOP decodes submitted to the pool
  int64_t evicted_gops = 0;
};

class PrefetchingVideoSource : public VideoSource {
 public:
  /// `source` must outlive this object. `pool` (borrowed, may be null) runs
  /// the read-ahead decodes; with a null or inline pool every decode is
  /// synchronous on the calling thread and only the GOP cache remains.
  ///
  /// `pool` must be DEDICATED to this prefetcher: a waiter on an in-flight
  /// GOP blocks until the pool runs that GOP's task, so if the pool's
  /// workers can themselves block in GetFrame (e.g. the FDE wave pool),
  /// every worker may end up waiting on a task none of them will run. The
  /// FDE therefore owns a separate decode pool (FdeConfig::decode_threads).
  PrefetchingVideoSource(const CodedVideoSource& source, PrefetchConfig config,
                         util::ThreadPool* pool);
  ~PrefetchingVideoSource() override;

  int64_t num_frames() const override { return source_.num_frames(); }
  int width() const override { return source_.width(); }
  int height() const override { return source_.height(); }
  double fps() const override { return source_.fps(); }

  Result<Frame> GetFrame(int64_t index) const override;

  const CodedVideoSource& source() const { return source_; }
  PrefetchStats stats() const;

 private:
  /// One GOP's decode slot in the buffer.
  struct GopSlot {
    enum class State { kInFlight, kReady, kFailed };
    State state = State::kInFlight;
    Status status = Status::OK();  ///< failure cause when kFailed
    std::vector<Frame> frames;     ///< display order when kReady
    int64_t last_touch = 0;        ///< LRU stamp
  };

  /// Per-reader-thread stream position. Concurrent detector branches walk
  /// the stream at different offsets; tracking them separately keeps the
  /// sequential heuristic meaningful (a global "last index" flip-flops
  /// between readers) and lets eviction know which GOPs are behind every
  /// reader and therefore dead.
  struct ReaderPos {
    int64_t frame = -1;
    int64_t stamp = 0;  ///< touch_clock_ at last access
  };

  /// Publishes a finished decode into `slot` and wakes waiters. Called with
  /// `mutex_` held.
  void PublishLocked(GopSlot* slot, Result<std::vector<Frame>> decoded) const;
  /// Schedules GOPs covering (index, index + prefetch_frames] that are not
  /// yet resident. Called with `mutex_` held; only enqueues, never decodes.
  void ScheduleLookaheadLocked(int64_t index) const;
  /// Drops ready GOPs beyond the buffer budget, preferring GOPs behind
  /// every tracked reader (nobody will re-read them on a forward scan).
  /// GOPs still ahead of some reader are spared until the buffer reaches
  /// `kOverdriveFactor` times the budget — evicting them while readers are
  /// merely drifting apart forces the laggard to re-decode, which under
  /// concurrent branches degenerates into each branch decoding the whole
  /// stream. Called with `mutex_` held; never drops `keep_gop` or in-flight
  /// slots.
  void EvictLocked(int64_t keep_gop) const;
  /// Smallest GOP any tracked reader is positioned in. Called with `mutex_`
  /// held.
  int64_t MinReaderGopLocked() const;

  const CodedVideoSource& source_;
  const PrefetchConfig config_;
  util::ThreadPool* const pool_;  ///< null or inline => synchronous mode
  const size_t max_resident_gops_;

  mutable std::mutex mutex_;
  mutable std::condition_variable ready_cv_;
  mutable std::unordered_map<int64_t, std::shared_ptr<GopSlot>> slots_;
  mutable std::unordered_map<std::thread::id, ReaderPos> positions_;
  mutable int64_t touch_clock_ = 0;
  mutable bool stopping_ = false;
  mutable PrefetchStats stats_;
  /// All Run calls are serialized under mutex_; Wait runs only in the
  /// destructor after stopping_ blocks further Runs — the TaskGroup
  /// single-submitter contract holds.
  mutable util::TaskGroup tasks_;
};

}  // namespace cobra::media
