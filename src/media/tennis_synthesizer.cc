#include "media/tennis_synthesizer.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace cobra::media {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Palette. The court is Australian Open "Plexicushion" blue; the surround is
// green; players wear saturated shirts distinct from both court and skin.
// Values sit at the centers of 32-wide quantization bins so that the
// +-4% illumination drift never marches a whole uniform surface across a
// histogram bin boundary at once (real surfaces are textured; see
// ApplyNoiseAndDrift, which adds the static texture that carries the same
// guarantee for off-center colors).
constexpr Rgb kCourtBlue{48, 80, 176};
constexpr Rgb kSurroundGreen{48, 112, 80};
constexpr Rgb kLineWhite{240, 240, 240};
constexpr Rgb kSkin{208, 144, 112};
constexpr Rgb kHair{48, 48, 48};
constexpr Rgb kDarkLegs{48, 48, 80};
constexpr Rgb kNearShirt{208, 48, 48};
constexpr Rgb kFarShirt{240, 208, 48};

uint8_t ClampU8(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

CourtGeometry CourtGeometry::ForFrame(int width, int height) {
  // Broadcast framing: the court fills just over half the frame, a crowd
  // strip runs along the top, green surround elsewhere.
  CourtGeometry g;
  int cx = static_cast<int>(width * 0.14);
  int cy = static_cast<int>(height * 0.20);
  g.court = RectI{cx, cy, static_cast<int>(width * 0.72),
                  static_cast<int>(height * 0.75)};
  g.net_y = g.court.y + g.court.height / 2;
  g.baseline_near_y = g.court.Bottom() - 4;
  g.baseline_far_y = g.court.y + 4;
  return g;
}

/// Per-player simulation state for one point.
struct TennisBroadcastSynthesizer::PlayerSim {
  int id = 0;
  double base_x = 0.0;
  double amp = 0.0;     ///< lateral oscillation amplitude
  double omega = 0.0;   ///< lateral oscillation angular frequency
  double phase = 0.0;
  double baseline_y = 0.0;
  double body_w = 12.0;
  double body_h = 22.0;
  Rgb shirt;

  // Net approach script: move during [a0,a1), hold at net [a1,a2),
  // retreat [a2,a3). a0 < 0 disables.
  int64_t a0 = -1, a1 = -1, a2 = -1, a3 = -1;
  double net_hold_y = 0.0;

  // Serve script: stand still at serve_x until serve_end.
  int64_t serve_end = 0;
  double serve_x = 0.0;

  PointD PositionAt(int64_t t, double jitter_x, double jitter_y) const {
    // Frames over which a player accelerates out of the serve stance into
    // the rally trajectory (players do not teleport).
    constexpr int64_t kServeBlendFrames = 15;
    double x, y;
    if (t < serve_end) {
      x = serve_x;
      y = baseline_y;
    } else {
      x = base_x + amp * std::sin(omega * static_cast<double>(t) + phase) +
          jitter_x;
      y = baseline_y + 2.0 * std::sin(0.13 * static_cast<double>(t) + phase) +
          jitter_y;
      if (t < serve_end + kServeBlendFrames) {
        double f = static_cast<double>(t - serve_end) /
                   static_cast<double>(kServeBlendFrames);
        x = serve_x + f * (x - serve_x);
        y = baseline_y + f * (y - baseline_y);
      }
      if (a0 >= 0) {
        if (t >= a0 && t < a1) {
          double f = static_cast<double>(t - a0) / static_cast<double>(a1 - a0);
          y = baseline_y + f * (net_hold_y - baseline_y);
        } else if (t >= a1 && t < a2) {
          y = net_hold_y + jitter_y;
        } else if (t >= a2 && t < a3) {
          double f = static_cast<double>(t - a2) / static_cast<double>(a3 - a2);
          y = net_hold_y + f * (baseline_y - net_hold_y);
        }
      }
    }
    return PointD{x, y};
  }

  RectI BboxAt(const PointD& center) const {
    return RectI{static_cast<int>(std::lround(center.x - body_w / 2)),
                 static_cast<int>(std::lround(center.y - body_h / 2)),
                 static_cast<int>(body_w), static_cast<int>(body_h)};
  }
};

TennisBroadcastSynthesizer::TennisBroadcastSynthesizer(TennisSynthConfig config)
    : config_(config),
      geom_(CourtGeometry::ForFrame(config.width, config.height)),
      rng_(config.seed) {
  noise_table_.resize(16384);
  for (double& v : noise_table_) v = rng_.NextGaussian();
}

Status TennisBroadcastSynthesizer::Validate() const {
  if (config_.width < 48 || config_.height < 36) {
    return Status::InvalidArgument("frame size must be at least 48x36");
  }
  if (config_.num_points < 1) {
    return Status::InvalidArgument("num_points must be >= 1");
  }
  if (config_.min_court_frames > config_.max_court_frames ||
      config_.min_court_frames < 40) {
    return Status::InvalidArgument("court frame range invalid (min >= 40)");
  }
  if (config_.min_cutaway_frames > config_.max_cutaway_frames ||
      config_.min_cutaway_frames < 2) {
    return Status::InvalidArgument("cutaway frame range invalid");
  }
  if (config_.noise_sigma < 0) {
    return Status::InvalidArgument("noise_sigma must be non-negative");
  }
  return Status::OK();
}

Result<Broadcast> TennisBroadcastSynthesizer::Synthesize() {
  COBRA_RETURN_NOT_OK(Validate());
  Broadcast out;
  out.video = std::make_shared<MemoryVideo>(std::vector<Frame>{}, config_.fps);
  int64_t frame_index = 0;
  for (int point = 0; point < config_.num_points; ++point) {
    frame_index += SynthesizePoint(out.video.get(), &out.truth, frame_index);
    if (config_.include_cutaways) {
      int num_cutaways = 1 + static_cast<int>(rng_.NextBounded(2));
      for (int c = 0; c < num_cutaways; ++c) {
        static const std::vector<double> kWeights = {0.45, 0.35, 0.20};
        size_t pick = rng_.NextCategorical(kWeights);
        ShotCategory cat = pick == 0   ? ShotCategory::kCloseUp
                           : pick == 1 ? ShotCategory::kAudience
                                       : ShotCategory::kOther;
        frame_index +=
            SynthesizeCutaway(out.video.get(), &out.truth, frame_index, cat);
      }
    }
  }

  // Dissolve pass: turn a random subset of transitions into cross-fades —
  // the outgoing shot's last frame fades into the incoming shot over the
  // first dissolve_frames of the new shot.
  if (config_.dissolve_prob > 0.0) {
    for (size_t s = 1; s < out.truth.shots.size(); ++s) {
      if (!rng_.NextBernoulli(config_.dissolve_prob)) continue;
      const int64_t boundary = out.truth.shots[s].range.begin;
      const int64_t len = std::min<int64_t>(config_.dissolve_frames,
                                            out.truth.shots[s].range.Length());
      if (len < 2) continue;
      COBRA_ASSIGN_OR_RETURN(Frame * outgoing_ptr,
                             out.video->MutableFrame(boundary - 1));
      Frame outgoing = *outgoing_ptr;
      for (int64_t i = 0; i < len; ++i) {
        COBRA_ASSIGN_OR_RETURN(Frame * incoming,
                               out.video->MutableFrame(boundary + i));
        const double alpha =
            static_cast<double>(i + 1) / static_cast<double>(len + 1);
        for (int y = 0; y < incoming->height(); ++y) {
          for (int x = 0; x < incoming->width(); ++x) {
            const Rgb& from = outgoing.At(x, y);
            Rgb& to = incoming->At(x, y);
            to = Rgb{ClampU8((1.0 - alpha) * from.r + alpha * to.r),
                     ClampU8((1.0 - alpha) * from.g + alpha * to.g),
                     ClampU8((1.0 - alpha) * from.b + alpha * to.b)};
          }
        }
      }
      out.truth.gradual_transitions.push_back(
          FrameInterval{boundary, boundary + len - 1});
    }
  }
  return out;
}

int64_t TennisBroadcastSynthesizer::SynthesizePoint(MemoryVideo* video,
                                                    GroundTruth* truth,
                                                    int64_t start_frame) {
  const int64_t shot_len =
      rng_.NextInt(config_.min_court_frames, config_.max_court_frames);
  const int64_t serve_len = rng_.NextInt(10, 20);
  const int server = static_cast<int>(rng_.NextBounded(2));

  const double court_cx = geom_.court.Center().x;
  const double lateral_span = geom_.court.width * 0.28;

  PlayerSim near_p;
  near_p.id = 0;
  near_p.baseline_y = geom_.baseline_near_y - 6.0;
  near_p.body_w = std::max(6.0, config_.width * 0.065);
  near_p.body_h = std::max(10.0, config_.height * 0.16);
  near_p.shirt = kNearShirt;

  PlayerSim far_p;
  far_p.id = 1;
  far_p.baseline_y = geom_.baseline_far_y + 5.0;
  far_p.body_w = std::max(4.0, config_.width * 0.045);
  far_p.body_h = std::max(7.0, config_.height * 0.11);
  far_p.shirt = kFarShirt;

  for (PlayerSim* p : {&near_p, &far_p}) {
    p->base_x = court_cx + rng_.NextDouble(-0.15, 0.15) * geom_.court.width;
    p->amp = rng_.NextDouble(0.45, 1.0) * lateral_span;
    p->omega = 2.0 * kPi / rng_.NextDouble(45.0, 90.0);
    p->phase = rng_.NextDouble(0.0, 2.0 * kPi);
    p->serve_end = serve_len;
    p->serve_x = court_cx +
                 (rng_.NextBernoulli(0.5) ? 1.0 : -1.0) *
                     rng_.NextDouble(0.2, 0.3) * geom_.court.width;
  }

  // Optional net approach by one player, after the serve settles.
  if (rng_.NextBernoulli(config_.net_approach_prob) && shot_len > serve_len + 70) {
    PlayerSim* who = rng_.NextBernoulli(0.65) ? &near_p : &far_p;
    int64_t latest_start = shot_len - 55;
    who->a0 = rng_.NextInt(serve_len + 10, std::max(serve_len + 10, latest_start));
    who->a1 = who->a0 + rng_.NextInt(16, 24);
    who->a2 = who->a1 + rng_.NextInt(14, 26);
    who->a3 = std::min<int64_t>(shot_len, who->a2 + rng_.NextInt(12, 20));
    double offset = std::max(8.0, geom_.court.height * 0.12);
    who->net_hold_y =
        who->id == 0 ? geom_.net_y + offset : geom_.net_y - offset;
  }

  // Render and record truth.
  const double net_dist_thresh = geom_.court.height * 0.17;
  std::vector<std::vector<bool>> at_net(2, std::vector<bool>(shot_len, false));
  std::vector<std::vector<bool>> at_baseline(2,
                                             std::vector<bool>(shot_len, false));
  for (int64_t t = 0; t < shot_len; ++t) {
    double jx0 = rng_.NextGaussian() * 0.8, jy0 = rng_.NextGaussian() * 0.5;
    double jx1 = rng_.NextGaussian() * 0.6, jy1 = rng_.NextGaussian() * 0.4;
    PointD pos0 = near_p.PositionAt(t, jx0, jy0);
    PointD pos1 = far_p.PositionAt(t, jx1, jy1);
    // Clamp into the court laterally.
    auto clamp_x = [&](double x) {
      return std::clamp(x, static_cast<double>(geom_.court.x + 4),
                        static_cast<double>(geom_.court.Right() - 4));
    };
    pos0.x = clamp_x(pos0.x);
    pos1.x = clamp_x(pos1.x);

    PlayerSim near_now = near_p;  // carries sizes/colors for the renderer
    PlayerSim far_now = far_p;

    Frame frame(config_.width, config_.height);
    // Positions are communicated via base_x/baseline_y trick-free: render
    // takes explicit positions below.
    RenderCourtFrame(&frame, near_now, far_now);
    // RenderCourtFrame draws static court; players drawn here with pos:
    // torso
    auto draw_player = [&](const PlayerSim& p, const PointD& pos) {
      double w = p.body_w, h = p.body_h;
      // legs
      frame.FillRect(RectI{static_cast<int>(pos.x - w * 0.3),
                           static_cast<int>(pos.y + h * 0.1),
                           std::max(1, static_cast<int>(w * 0.25)),
                           std::max(1, static_cast<int>(h * 0.4))},
                     kDarkLegs);
      frame.FillRect(RectI{static_cast<int>(pos.x + w * 0.05),
                           static_cast<int>(pos.y + h * 0.1),
                           std::max(1, static_cast<int>(w * 0.25)),
                           std::max(1, static_cast<int>(h * 0.4))},
                     kDarkLegs);
      // torso
      frame.FillEllipse(pos.x, pos.y - h * 0.05, w * 0.5, h * 0.32, p.shirt);
      // head
      frame.FillEllipse(pos.x, pos.y - h * 0.42, w * 0.22, h * 0.13, kSkin);
    };
    draw_player(near_now, pos0);
    draw_player(far_now, pos1);
    ApplyNoiseAndDrift(&frame, t, shot_len);
    (void)video->Append(std::move(frame));

    std::vector<PlayerTruth> players(2);
    players[0] = PlayerTruth{0, pos0, near_p.BboxAt(pos0)};
    players[1] = PlayerTruth{1, pos1, far_p.BboxAt(pos1)};
    truth->players_by_frame.push_back(std::move(players));

    at_net[0][t] = std::fabs(pos0.y - geom_.net_y) < net_dist_thresh;
    at_net[1][t] = std::fabs(pos1.y - geom_.net_y) < net_dist_thresh;
    at_baseline[0][t] = std::fabs(pos0.y - near_p.baseline_y) < 6.0;
    at_baseline[1][t] = std::fabs(pos1.y - far_p.baseline_y) < 6.0;
  }

  // Shot + event truth.
  FrameInterval shot_range{start_frame, start_frame + shot_len - 1};
  truth->shots.push_back(ShotTruth{shot_range, ShotCategory::kTennis});
  truth->events.push_back(EventTruth{
      kEventServe, server, FrameInterval{start_frame, start_frame + serve_len - 1}});
  truth->events.push_back(EventTruth{
      kEventRally, -1, FrameInterval{start_frame + serve_len, shot_range.end}});

  auto emit_runs = [&](const std::vector<bool>& flags, const char* name,
                       int player_id, int64_t min_len) {
    int64_t run_start = -1;
    for (int64_t t = 0; t <= shot_len; ++t) {
      bool on = t < shot_len && flags[t];
      if (on && run_start < 0) run_start = t;
      if (!on && run_start >= 0) {
        if (t - run_start >= min_len) {
          truth->events.push_back(EventTruth{
              name, player_id,
              FrameInterval{start_frame + run_start, start_frame + t - 1}});
        }
        run_start = -1;
      }
    }
  };
  emit_runs(at_net[0], kEventNetPlay, 0, 10);
  emit_runs(at_net[1], kEventNetPlay, 1, 10);
  emit_runs(at_baseline[0], kEventBaselinePlay, 0, 25);
  emit_runs(at_baseline[1], kEventBaselinePlay, 1, 25);

  return shot_len;
}

int64_t TennisBroadcastSynthesizer::SynthesizeCutaway(MemoryVideo* video,
                                                      GroundTruth* truth,
                                                      int64_t start_frame,
                                                      ShotCategory category) {
  const int64_t shot_len =
      rng_.NextInt(config_.min_cutaway_frames, config_.max_cutaway_frames);
  const uint64_t variant = rng_.NextU64();
  for (int64_t t = 0; t < shot_len; ++t) {
    Frame frame(config_.width, config_.height);
    switch (category) {
      case ShotCategory::kCloseUp:
        RenderCloseUpFrame(&frame, t, variant);
        break;
      case ShotCategory::kAudience:
        RenderAudienceFrame(&frame, t, variant);
        break;
      default:
        RenderOtherFrame(&frame, t, variant);
        break;
    }
    ApplyNoiseAndDrift(&frame, t, shot_len);
    (void)video->Append(std::move(frame));
    truth->players_by_frame.emplace_back();
  }
  truth->shots.push_back(
      ShotTruth{FrameInterval{start_frame, start_frame + shot_len - 1}, category});
  return shot_len;
}

void TennisBroadcastSynthesizer::RenderCourtFrame(Frame* frame,
                                                  const PlayerSim& /*near_p*/,
                                                  const PlayerSim& /*far_p*/) {
  frame->FillRect(RectI{0, 0, config_.width, config_.height}, kSurroundGreen);
  // Static crowd strip along the top of the stadium (same mosaic in every
  // court frame: it is the same stadium).
  const int strip_h = std::max(3, config_.height / 8);
  const int block = std::max(3, config_.width / 48);
  for (int by = 0; by * block < strip_h; ++by) {
    for (int bx = 0; bx * block < config_.width; ++bx) {
      uint64_t hc = MixHash(0xC0447ULL ^ (static_cast<uint64_t>(by) << 32) ^
                            static_cast<uint64_t>(bx));
      Hsv hsv{static_cast<double>(hc % 360), 0.2 + (hc >> 9) % 35 / 100.0,
              0.2 + (hc >> 17) % 45 / 100.0};
      RectI r{bx * block, by * block, block, std::min(block, strip_h - by * block)};
      frame->FillRect(r, HsvToRgb(hsv));
    }
  }
  frame->FillRect(geom_.court, kCourtBlue);
  // Court outline.
  const RectI& c = geom_.court;
  frame->DrawLine(c.x, c.y, c.Right() - 1, c.y, kLineWhite);
  frame->DrawLine(c.x, c.Bottom() - 1, c.Right() - 1, c.Bottom() - 1, kLineWhite);
  frame->DrawLine(c.x, c.y, c.x, c.Bottom() - 1, kLineWhite);
  frame->DrawLine(c.Right() - 1, c.y, c.Right() - 1, c.Bottom() - 1, kLineWhite);
  // Singles sidelines.
  int inset = c.width / 8;
  frame->DrawLine(c.x + inset, c.y, c.x + inset, c.Bottom() - 1, kLineWhite);
  frame->DrawLine(c.Right() - 1 - inset, c.y, c.Right() - 1 - inset,
                  c.Bottom() - 1, kLineWhite);
  // Service lines and center line.
  int service_off = c.height / 4;
  frame->DrawLine(c.x + inset, geom_.net_y - service_off, c.Right() - 1 - inset,
                  geom_.net_y - service_off, kLineWhite);
  frame->DrawLine(c.x + inset, geom_.net_y + service_off, c.Right() - 1 - inset,
                  geom_.net_y + service_off, kLineWhite);
  int center_x = c.x + c.width / 2;
  frame->DrawLine(center_x, geom_.net_y - service_off, center_x,
                  geom_.net_y + service_off, kLineWhite);
  // Net: a 2-px darker band across the full width.
  frame->FillRect(RectI{0, geom_.net_y - 1, config_.width, 2}, Rgb{30, 30, 34});
}

void TennisBroadcastSynthesizer::RenderCloseUpFrame(Frame* frame,
                                                    int64_t frame_in_shot,
                                                    uint64_t variant) {
  // Soft two-tone background whose hue depends on the variant.
  double bg_hue = static_cast<double>(MixHash(variant) % 360);
  Rgb bg_top = HsvToRgb(Hsv{bg_hue, 0.35, 0.45});
  Rgb bg_bottom = HsvToRgb(Hsv{bg_hue, 0.40, 0.30});
  for (int y = 0; y < config_.height; ++y) {
    double f = static_cast<double>(y) / config_.height;
    Rgb c{ClampU8(bg_top.r + f * (bg_bottom.r - bg_top.r)),
          ClampU8(bg_top.g + f * (bg_bottom.g - bg_top.g)),
          ClampU8(bg_top.b + f * (bg_bottom.b - bg_top.b))};
    for (int x = 0; x < config_.width; ++x) frame->At(x, y) = c;
  }
  // Head: large skin ellipse covering ~20-25% of the frame, gently bobbing.
  double cx = config_.width * 0.5 +
              3.0 * std::sin(0.11 * static_cast<double>(frame_in_shot));
  double cy = config_.height * 0.46 +
              2.0 * std::sin(0.07 * static_cast<double>(frame_in_shot) + 1.0);
  double rx = config_.width * 0.21;
  double ry = config_.height * 0.33;
  frame->FillEllipse(cx, cy, rx, ry, kSkin);
  // Hair cap.
  frame->FillEllipse(cx, cy - ry * 0.72, rx * 0.95, ry * 0.38, kHair);
  // Shoulders / shirt along the bottom.
  Rgb shirt = HsvToRgb(Hsv{static_cast<double>(MixHash(variant ^ 7) % 360), 0.7, 0.6});
  frame->FillEllipse(cx, config_.height * 1.05, config_.width * 0.42,
                     config_.height * 0.3, shirt);
}

void TennisBroadcastSynthesizer::RenderAudienceFrame(Frame* frame,
                                                     int64_t frame_in_shot,
                                                     uint64_t variant) {
  // Mosaic of small blocks with pseudo-random muted colors -> high entropy,
  // no dominant color. A small fraction of blocks flickers over time
  // (spectator motion), not enough to look like a cut.
  const int block = std::max(3, config_.width / 48);
  for (int by = 0; by * block < config_.height; ++by) {
    for (int bx = 0; bx * block < config_.width; ++bx) {
      uint64_t h = MixHash(variant ^ (static_cast<uint64_t>(by) << 32) ^
                           static_cast<uint64_t>(bx));
      bool flickers = (h % 100) < 12;
      uint64_t time_salt =
          flickers ? static_cast<uint64_t>(frame_in_shot / 6) : 0;
      uint64_t hc = MixHash(h ^ (time_salt << 17));
      Hsv hsv{static_cast<double>(hc % 360), 0.25 + (hc >> 9) % 40 / 100.0,
              0.25 + (hc >> 17) % 55 / 100.0};
      frame->FillRect(RectI{bx * block, by * block, block, block}, HsvToRgb(hsv));
    }
  }
}

void TennisBroadcastSynthesizer::RenderOtherFrame(Frame* frame,
                                                  int64_t frame_in_shot,
                                                  uint64_t variant) {
  // Studio/graphics shot: near-uniform dark background, one saturated logo
  // band and a few white caption strips -> low entropy, dominant color far
  // from both court blue and skin.
  uint64_t h = MixHash(variant);
  Rgb bg{static_cast<uint8_t>(40 + h % 30), static_cast<uint8_t>(40 + (h >> 8) % 30),
         static_cast<uint8_t>(46 + (h >> 16) % 30)};
  frame->FillRect(RectI{0, 0, config_.width, config_.height}, bg);
  Rgb band = HsvToRgb(
      Hsv{static_cast<double>(MixHash(variant ^ 3) % 360), 0.85, 0.75});
  int band_y = config_.height / 5 +
               static_cast<int>(2 * std::sin(0.05 * static_cast<double>(frame_in_shot)));
  frame->FillRect(RectI{0, band_y, config_.width, config_.height / 7}, band);
  // Caption strips.
  for (int i = 0; i < 3; ++i) {
    int y = config_.height * (3 + i) / 7;
    frame->FillRect(RectI{config_.width / 8, y, config_.width * 3 / 4,
                          std::max(2, config_.height / 36)},
                    Rgb{210, 210, 210});
  }
}

void TennisBroadcastSynthesizer::ApplyNoiseAndDrift(Frame* frame,
                                                    int64_t frame_in_shot,
                                                    int64_t shot_len) {
  const double drift =
      1.0 + config_.illumination_drift *
                std::sin(2.0 * kPi * static_cast<double>(frame_in_shot) /
                         std::max<int64_t>(1, shot_len));
  const bool noisy = config_.noise_sigma > 0.0;
  const double sigma = config_.noise_sigma;
  const size_t mask = noise_table_.size() - 1;  // table size is a power of two
  for (int y = 0; y < frame->height(); ++y) {
    for (int x = 0; x < frame->width(); ++x) {
      Rgb& p = frame->At(x, y);
      // Static per-pixel surface texture in [-6, +6] per channel: real
      // surfaces are never flat, and without it a uniform region drifts
      // across a quantization boundary all at once, which reads as a cut.
      uint64_t tex = MixHash((static_cast<uint64_t>(y) << 20) ^
                             static_cast<uint64_t>(x));
      double tr = static_cast<double>(tex % 13) - 6.0;
      double tg = static_cast<double>((tex >> 8) % 13) - 6.0;
      double tb = static_cast<double>((tex >> 16) % 13) - 6.0;
      double r = (p.r + tr) * drift;
      double g = (p.g + tg) * drift;
      double b = (p.b + tb) * drift;
      if (noisy) {
        uint64_t bits = rng_.NextU64();
        r += sigma * noise_table_[bits & mask];
        g += sigma * noise_table_[(bits >> 16) & mask];
        b += sigma * noise_table_[(bits >> 32) & mask];
      }
      p = Rgb{ClampU8(r), ClampU8(g), ClampU8(b)};
    }
  }
}

Frame TennisBroadcastSynthesizer::RenderStandalone(ShotCategory category,
                                                   uint64_t variant) {
  Frame frame(config_.width, config_.height);
  switch (category) {
    case ShotCategory::kTennis: {
      PlayerSim near_p, far_p;
      near_p.body_w = std::max(6.0, config_.width * 0.065);
      near_p.body_h = std::max(10.0, config_.height * 0.16);
      far_p.body_w = std::max(4.0, config_.width * 0.045);
      far_p.body_h = std::max(7.0, config_.height * 0.11);
      RenderCourtFrame(&frame, near_p, far_p);
      double off = static_cast<double>(MixHash(variant) % 41) - 20.0;
      frame.FillEllipse(geom_.court.Center().x + off, geom_.baseline_near_y - 8,
                        near_p.body_w * 0.5, near_p.body_h * 0.32, kNearShirt);
      frame.FillEllipse(geom_.court.Center().x - off, geom_.baseline_far_y + 6,
                        far_p.body_w * 0.5, far_p.body_h * 0.32, kFarShirt);
      break;
    }
    case ShotCategory::kCloseUp:
      RenderCloseUpFrame(&frame, static_cast<int64_t>(variant % 30), variant);
      break;
    case ShotCategory::kAudience:
      RenderAudienceFrame(&frame, static_cast<int64_t>(variant % 30), variant);
      break;
    case ShotCategory::kOther:
      RenderOtherFrame(&frame, static_cast<int64_t>(variant % 30), variant);
      break;
  }
  return frame;
}

const char* ShotCategoryToString(ShotCategory c) {
  switch (c) {
    case ShotCategory::kTennis:
      return "tennis";
    case ShotCategory::kCloseUp:
      return "close-up";
    case ShotCategory::kAudience:
      return "audience";
    case ShotCategory::kOther:
      return "other";
  }
  return "unknown";
}

}  // namespace cobra::media
