#pragma once

/// \file tennis_synthesizer.h
/// Procedural tennis-broadcast generator.
///
/// Substitutes for the Australian Open footage of the original demo (see
/// DESIGN.md §2). It reproduces exactly the statistical properties the
/// paper's detectors exploit:
///   * hard cuts between shots -> color histogram discontinuities;
///   * a dominant court color in tennis shots;
///   * large skin-colored regions in close-ups;
///   * high spatial entropy in audience shots;
///   * two player blobs that move according to scripted rallies, serves and
///     net approaches -> trackable regions and detectable events;
/// and it emits frame-accurate ground truth for all of them.

#include <cstdint>
#include <memory>

#include "media/frame.h"
#include "media/ground_truth.h"
#include "media/video.h"
#include "util/rng.h"
#include "util/status.h"

namespace cobra::media {

/// Static geometry of the rendered court, in pixels, derived from the frame
/// size. Exposed so tests can assert against it; detectors must *estimate*
/// their own court model from pixels (as the paper's tennis detector does).
struct CourtGeometry {
  RectI court;   ///< playing field rectangle
  int net_y = 0; ///< y of the net line
  int baseline_near_y = 0;
  int baseline_far_y = 0;

  static CourtGeometry ForFrame(int width, int height);
};

/// Knobs of the synthesizer. Defaults give a ~2400-frame broadcast with
/// 8 points and interleaved cutaways at QCIF-ish resolution.
struct TennisSynthConfig {
  int width = 192;
  int height = 144;
  double fps = 25.0;
  uint64_t seed = 42;

  int num_points = 8;           ///< number of court (play) shots
  int min_court_frames = 90;
  int max_court_frames = 200;
  int min_cutaway_frames = 24;
  int max_cutaway_frames = 60;

  /// Std-dev of additive Gaussian pixel noise (0 disables).
  double noise_sigma = 4.0;
  /// Peak relative luma drift within a shot (simulated auto-exposure), which
  /// makes naive frame-differencing fire inside shots.
  double illumination_drift = 0.04;

  /// Probability that a point contains a net approach by some player.
  double net_approach_prob = 0.5;
  /// Insert close-up / audience / other shots between points.
  bool include_cutaways = true;

  /// Probability that a shot transition is a dissolve instead of a hard
  /// cut: the outgoing frame cross-fades into the incoming shot over
  /// `dissolve_frames`. Dissolves defeat naive frame differencing and are
  /// the target of the twin-comparison detector extension.
  double dissolve_prob = 0.0;
  int dissolve_frames = 12;
};

/// A rendered broadcast plus its ground truth.
struct Broadcast {
  std::shared_ptr<MemoryVideo> video;
  GroundTruth truth;
};

/// Renders a complete broadcast according to the config.
///
/// Deterministic: the same config (including seed) yields the identical
/// pixel stream and truth.
class TennisBroadcastSynthesizer {
 public:
  explicit TennisBroadcastSynthesizer(TennisSynthConfig config);

  /// Renders the broadcast. Fails on degenerate configs (non-positive
  /// sizes, inverted frame-count ranges).
  Result<Broadcast> Synthesize();

  const TennisSynthConfig& config() const { return config_; }

  /// Renders a single standalone frame of the given category (used by the
  /// classifier tests); player positions for tennis frames are scripted at
  /// mid-rally. `variant` varies non-essential appearance.
  Frame RenderStandalone(ShotCategory category, uint64_t variant);

 private:
  struct PlayerSim;

  Status Validate() const;

  void RenderCourtFrame(Frame* frame, const PlayerSim& near_p,
                        const PlayerSim& far_p);
  void RenderCloseUpFrame(Frame* frame, int64_t frame_in_shot, uint64_t variant);
  void RenderAudienceFrame(Frame* frame, int64_t frame_in_shot, uint64_t variant);
  void RenderOtherFrame(Frame* frame, int64_t frame_in_shot, uint64_t variant);
  void ApplyNoiseAndDrift(Frame* frame, int64_t frame_in_shot,
                          int64_t shot_len);

  /// Simulates one point and appends frames + truth. Returns frames added.
  int64_t SynthesizePoint(MemoryVideo* video, GroundTruth* truth,
                          int64_t start_frame);
  int64_t SynthesizeCutaway(MemoryVideo* video, GroundTruth* truth,
                            int64_t start_frame, ShotCategory category);

  TennisSynthConfig config_;
  CourtGeometry geom_;
  Rng rng_;
  std::vector<double> noise_table_;
};

}  // namespace cobra::media
