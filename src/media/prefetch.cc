#include "media/prefetch.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace cobra::media {

namespace {

/// Buffer budget in GOPs for a given lookahead: the GOPs spanned by the
/// read-ahead window, plus the one being consumed and one of slack so a
/// just-behind reader does not evict what a just-ahead reader needs.
size_t ResidentBudget(const PrefetchConfig& config, const EncodedVideo& video) {
  const int gop = std::max(1, video.config().gop_size);
  const int64_t window = std::max<int64_t>(0, config.prefetch_frames);
  return static_cast<size_t>(window / gop + 3);
}

/// How far past the budget the buffer may grow before eviction stops
/// sparing GOPs that some tracked reader has not passed yet. Bounds memory
/// when a reader goes quiet mid-stream (its stale position would otherwise
/// pin every later GOP).
constexpr size_t kOverdriveFactor = 4;

}  // namespace

PrefetchingVideoSource::PrefetchingVideoSource(const CodedVideoSource& source,
                                               PrefetchConfig config,
                                               util::ThreadPool* pool)
    : source_(source),
      config_(config),
      pool_(pool != nullptr && pool->num_threads() > 0 ? pool : nullptr),
      max_resident_gops_(ResidentBudget(config, source.encoded())),
      tasks_(pool_) {}

PrefetchingVideoSource::~PrefetchingVideoSource() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;  // ScheduleLookaheadLocked submits nothing past here
  }
  tasks_.Wait();  // join in-flight decodes that reference this object
}

PrefetchStats PrefetchingVideoSource::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PrefetchingVideoSource::PublishLocked(
    GopSlot* slot, Result<std::vector<Frame>> decoded) const {
  if (decoded.ok()) {
    slot->frames = decoded.TakeValue();
    slot->state = GopSlot::State::kReady;
  } else {
    slot->status = decoded.status();
    slot->state = GopSlot::State::kFailed;
  }
  ready_cv_.notify_all();
}

void PrefetchingVideoSource::ScheduleLookaheadLocked(int64_t index) const {
  if (pool_ == nullptr || stopping_ || config_.prefetch_frames <= 0) return;
  const int64_t last = std::min(index + config_.prefetch_frames,
                                source_.num_frames() - 1);
  const int64_t first_gop = source_.encoded().GopOfFrame(index);
  const int64_t last_gop = source_.encoded().GopOfFrame(last);
  for (int64_t g = first_gop; g <= last_gop; ++g) {
    if (slots_.count(g) > 0) continue;
    if (slots_.size() >= max_resident_gops_ + 1) break;  // buffer is full
    auto slot = std::make_shared<GopSlot>();
    slot->last_touch = ++touch_clock_;
    slots_.emplace(g, slot);
    ++stats_.scheduled_gops;
    tasks_.Run([this, g, slot]() {
      // Pure decode outside the lock; publish under it.
      Result<std::vector<Frame>> decoded = source_.DecodeGop(g);
      std::lock_guard<std::mutex> lock(mutex_);
      PublishLocked(slot.get(), std::move(decoded));
    });
  }
}

int64_t PrefetchingVideoSource::MinReaderGopLocked() const {
  int64_t min_gop = source_.encoded().NumGops();
  for (const auto& [tid, pos] : positions_) {
    if (pos.frame < 0) continue;
    min_gop = std::min(min_gop, source_.encoded().GopOfFrame(pos.frame));
  }
  return min_gop;
}

void PrefetchingVideoSource::EvictLocked(int64_t keep_gop) const {
  const int64_t min_reader_gop = MinReaderGopLocked();
  while (slots_.size() > max_resident_gops_) {
    // Pass 1: least-recently-touched GOP behind every reader (dead on a
    // forward scan). Pass 2 (only past the overdrive bound): plain LRU.
    auto victim = slots_.end();
    for (int pass = 0; pass < 2 && victim == slots_.end(); ++pass) {
      if (pass == 1 && slots_.size() <= max_resident_gops_ * kOverdriveFactor) {
        return;  // tolerate reader drift instead of forcing re-decodes
      }
      for (auto it = slots_.begin(); it != slots_.end(); ++it) {
        if (it->first == keep_gop ||
            it->second->state == GopSlot::State::kInFlight ||
            (pass == 0 && it->first >= min_reader_gop)) {
          continue;
        }
        if (victim == slots_.end() ||
            it->second->last_touch < victim->second->last_touch) {
          victim = it;
        }
      }
    }
    if (victim == slots_.end()) return;  // everything is in use or in flight
    slots_.erase(victim);
    ++stats_.evicted_gops;
  }
}

Result<Frame> PrefetchingVideoSource::GetFrame(int64_t index) const {
  if (index < 0 || index >= source_.num_frames()) {
    return Status::OutOfRange(
        StringFormat("frame %lld out of range", static_cast<long long>(index)));
  }
  const int64_t gop = source_.encoded().GopOfFrame(index);

  std::unique_lock<std::mutex> lock(mutex_);
  // The heuristic is per reader thread: concurrent branches interleave
  // arbitrarily, but each branch on its own walks forward.
  ReaderPos& pos = positions_[std::this_thread::get_id()];
  const bool sequential =
      pos.frame < 0
          ? index <= config_.sequential_stride
          : index >= pos.frame &&
                index - pos.frame <= config_.sequential_stride;
  pos.frame = index;
  pos.stamp = ++touch_clock_;

  auto it = slots_.find(gop);
  std::shared_ptr<GopSlot> slot;
  if (it == slots_.end()) {
    // Miss: claim the slot, decode on this thread (off the lock), publish.
    slot = std::make_shared<GopSlot>();
    slots_.emplace(gop, slot);
    ++stats_.inline_decodes;
    if (sequential) ScheduleLookaheadLocked(index);
    lock.unlock();
    Result<std::vector<Frame>> decoded = source_.DecodeGop(gop);
    lock.lock();
    PublishLocked(slot.get(), std::move(decoded));
  } else {
    slot = it->second;
    if (slot->state == GopSlot::State::kInFlight) {
      ++stats_.buffer_waits;
    } else {
      ++stats_.buffer_hits;
    }
    if (sequential) ScheduleLookaheadLocked(index);
    ready_cv_.wait(lock, [&slot]() {
      return slot->state != GopSlot::State::kInFlight;
    });
  }

  if (slot->state == GopSlot::State::kFailed) {
    // Failed slots are not cached: drop so a retry re-decodes.
    auto failed = slots_.find(gop);
    if (failed != slots_.end() && failed->second == slot) slots_.erase(failed);
    return slot->status;
  }
  slot->last_touch = ++touch_clock_;
  EvictLocked(gop);
  lock.unlock();
  // Copy outside the lock: `frames` is written once at publish and the
  // shared_ptr keeps the slot alive even if a concurrent eviction drops it
  // from the map.
  const int64_t first =
      source_.encoded().Gops()[static_cast<size_t>(gop)].first_frame;
  return slot->frames[static_cast<size_t>(index - first)];
}

}  // namespace cobra::media
