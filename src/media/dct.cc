#include "media/dct.h"

#include <algorithm>
#include <cmath>

namespace cobra::media {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// DCT basis matrix C[k][n] = s(k) cos((2n+1) k pi / 16).
struct DctTables {
  double basis[8][8];
  DctTables() {
    for (int k = 0; k < 8; ++k) {
      double s = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n) {
        basis[k][n] = s * std::cos((2 * n + 1) * k * kPi / 16.0);
      }
    }
  }
};
const DctTables kTables;

// JPEG Annex K quantization tables.
constexpr int kLumaQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
constexpr int kChromaQuant[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

int ScaledQuant(int base, int quality) {
  quality = std::clamp(quality, 1, 100);
  int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  int q = (base * scale + 50) / 100;
  return std::clamp(q, 1, 255);
}

}  // namespace

const std::array<uint8_t, 64> kZigzagOrder = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

void ForwardDct(const PixelBlock& in, DctBlock* out) {
  // Separable: rows then columns.
  double tmp[64];
  for (int y = 0; y < 8; ++y) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += kTables.basis[k][n] * in[y * 8 + n];
      tmp[y * 8 + k] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += kTables.basis[k][n] * tmp[n * 8 + x];
      (*out)[k * 8 + x] = acc;
    }
  }
}

void InverseDct(const DctBlock& in, PixelBlock* out) {
  double tmp[64];
  for (int x = 0; x < 8; ++x) {
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += kTables.basis[k][n] * in[k * 8 + x];
      tmp[n * 8 + x] = acc;
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += kTables.basis[k][n] * tmp[y * 8 + k];
      (*out)[y * 8 + n] = static_cast<int16_t>(std::lround(acc));
    }
  }
}

void Quantize(const DctBlock& in, int quality, bool chroma,
              std::array<int16_t, 64>* out) {
  const int* table = chroma ? kChromaQuant : kLumaQuant;
  for (int i = 0; i < 64; ++i) {
    int q = ScaledQuant(table[i], quality);
    (*out)[i] = static_cast<int16_t>(std::lround(in[i] / q));
  }
}

void Dequantize(const std::array<int16_t, 64>& in, int quality, bool chroma,
                DctBlock* out) {
  const int* table = chroma ? kChromaQuant : kLumaQuant;
  for (int i = 0; i < 64; ++i) {
    int q = ScaledQuant(table[i], quality);
    (*out)[i] = static_cast<double>(in[i]) * q;
  }
}

void ZigzagScan(const std::array<int16_t, 64>& in,
                std::array<int16_t, 64>* out) {
  for (int i = 0; i < 64; ++i) (*out)[i] = in[kZigzagOrder[i]];
}

void ZigzagUnscan(const std::array<int16_t, 64>& in,
                  std::array<int16_t, 64>* out) {
  for (int i = 0; i < 64; ++i) (*out)[kZigzagOrder[i]] = in[i];
}

}  // namespace cobra::media
