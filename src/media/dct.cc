#include "media/dct.h"

#include <algorithm>
#include <cmath>

// SIMD tiers exist only on x86-64 GCC/Clang builds with the COBRA_SIMD CMake
// option ON; everywhere else only the scalar tier is compiled and dispatch
// degenerates to it (same gating as vision/kernels.cc).
#if defined(COBRA_SIMD) && COBRA_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define COBRA_DCT_SIMD_X86 1
#include <immintrin.h>
#else
#define COBRA_DCT_SIMD_X86 0
#endif

namespace cobra::media {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// DCT basis matrix C[k][n] = s(k) cos((2n+1) k pi / 16).
struct DctTables {
  double basis[8][8];
  DctTables() {
    for (int k = 0; k < 8; ++k) {
      double s = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n) {
        basis[k][n] = s * std::cos((2 * n + 1) * k * kPi / 16.0);
      }
    }
  }
};
const DctTables kTables;

// JPEG Annex K quantization tables.
constexpr int kLumaQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
constexpr int kChromaQuant[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

int ScaledQuant(int base, int quality) {
  quality = std::clamp(quality, 1, 100);
  int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  int q = (base * scale + 50) / 100;
  return std::clamp(q, 1, 255);
}

// ---------------------------------------------------------------------------
// Transform kernels. The accumulation contract every tier follows exactly:
// each output lane sums its 8 basis*input products sequentially in k order
// (no trees, no FMA contraction — explicit mul then add), and rounding is
// trunc(v + copysign(0.5, v)). The vector tiers carry 8 output lanes per row
// and perform the same per-lane sequence, so all tiers are bit-identical.
// ---------------------------------------------------------------------------

inline int16_t RoundSample(double v) {
  return static_cast<int16_t>(static_cast<int32_t>(v + std::copysign(0.5, v)));
}

void IdctScalar(const double* in, int16_t* out) {
  // Columns then rows; each inner loop is the sequential k-order sum.
  double tmp[64];
  for (int n = 0; n < 8; ++n) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += kTables.basis[k][n] * in[k * 8 + x];
      tmp[n * 8 + x] = acc;
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += kTables.basis[k][n] * tmp[y * 8 + k];
      out[y * 8 + n] = RoundSample(acc);
    }
  }
}

void Dequant64Scalar(const int16_t* in, const double* table, double* out) {
  for (int i = 0; i < 64; ++i) out[i] = static_cast<double>(in[i]) * table[i];
}

constexpr DctOps kScalarDctOps = {IdctScalar, Dequant64Scalar};

#if COBRA_DCT_SIMD_X86

// ---------------- SSE4.1 tier: 8 lanes as four __m128d ----------------

__attribute__((target("sse4.1"))) inline __m128d TruncRound128(__m128d v) {
  const __m128d sign = _mm_and_pd(v, _mm_set1_pd(-0.0));
  const __m128d half = _mm_or_pd(_mm_set1_pd(0.5), sign);
  return _mm_round_pd(_mm_add_pd(v, half),
                      _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
}

__attribute__((target("sse4.1"))) void IdctSse41(const double* in,
                                                 int16_t* out) {
  double tmp[64];
  // Pass 1: tmp[n][x] = sum_k basis[k][n] * in[k][x]; lanes over x.
  for (int n = 0; n < 8; ++n) {
    __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
    for (int k = 0; k < 8; ++k) {
      const __m128d b = _mm_set1_pd(kTables.basis[k][n]);
      const double* row = in + k * 8;
      a0 = _mm_add_pd(a0, _mm_mul_pd(b, _mm_loadu_pd(row)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(b, _mm_loadu_pd(row + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(b, _mm_loadu_pd(row + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(b, _mm_loadu_pd(row + 6)));
    }
    _mm_storeu_pd(tmp + n * 8, a0);
    _mm_storeu_pd(tmp + n * 8 + 2, a1);
    _mm_storeu_pd(tmp + n * 8 + 4, a2);
    _mm_storeu_pd(tmp + n * 8 + 6, a3);
  }
  // Pass 2: out[y][n] = sum_k basis[k][n] * tmp[y][k]; lanes over n
  // (basis row k is contiguous over n).
  for (int y = 0; y < 8; ++y) {
    __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
    for (int k = 0; k < 8; ++k) {
      const __m128d t = _mm_set1_pd(tmp[y * 8 + k]);
      const double* row = kTables.basis[k];
      a0 = _mm_add_pd(a0, _mm_mul_pd(t, _mm_loadu_pd(row)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(t, _mm_loadu_pd(row + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(t, _mm_loadu_pd(row + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(t, _mm_loadu_pd(row + 6)));
    }
    const __m128i i0 = _mm_cvtpd_epi32(TruncRound128(a0));  // 2 ints, lanes 0-1
    const __m128i i1 = _mm_cvtpd_epi32(TruncRound128(a1));
    const __m128i i2 = _mm_cvtpd_epi32(TruncRound128(a2));
    const __m128i i3 = _mm_cvtpd_epi32(TruncRound128(a3));
    const __m128i lo = _mm_unpacklo_epi64(i0, i1);  // ints 0..3
    const __m128i hi = _mm_unpacklo_epi64(i2, i3);  // ints 4..7
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + y * 8),
                     _mm_packs_epi32(lo, hi));
  }
}

__attribute__((target("sse4.1"))) void Dequant64Sse41(const int16_t* in,
                                                      const double* table,
                                                      double* out) {
  for (int i = 0; i < 64; i += 4) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + i));
    const __m128i i32 = _mm_cvtepi16_epi32(raw);
    const __m128d lo = _mm_cvtepi32_pd(i32);
    const __m128d hi = _mm_cvtepi32_pd(_mm_srli_si128(i32, 8));
    _mm_storeu_pd(out + i, _mm_mul_pd(lo, _mm_loadu_pd(table + i)));
    _mm_storeu_pd(out + i + 2, _mm_mul_pd(hi, _mm_loadu_pd(table + i + 2)));
  }
}

constexpr DctOps kSse41DctOps = {IdctSse41, Dequant64Sse41};

// ---------------- AVX2 tier: 8 lanes as two __m256d ----------------

__attribute__((target("avx2"))) inline __m256d TruncRound256(__m256d v) {
  const __m256d sign = _mm256_and_pd(v, _mm256_set1_pd(-0.0));
  const __m256d half = _mm256_or_pd(_mm256_set1_pd(0.5), sign);
  return _mm256_round_pd(_mm256_add_pd(v, half),
                         _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
}

__attribute__((target("avx2"))) void IdctAvx2(const double* in, int16_t* out) {
  double tmp[64];
  for (int n = 0; n < 8; ++n) {
    __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
    for (int k = 0; k < 8; ++k) {
      const __m256d b = _mm256_set1_pd(kTables.basis[k][n]);
      const double* row = in + k * 8;
      lo = _mm256_add_pd(lo, _mm256_mul_pd(b, _mm256_loadu_pd(row)));
      hi = _mm256_add_pd(hi, _mm256_mul_pd(b, _mm256_loadu_pd(row + 4)));
    }
    _mm256_storeu_pd(tmp + n * 8, lo);
    _mm256_storeu_pd(tmp + n * 8 + 4, hi);
  }
  for (int y = 0; y < 8; ++y) {
    __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
    for (int k = 0; k < 8; ++k) {
      const __m256d t = _mm256_set1_pd(tmp[y * 8 + k]);
      const double* row = kTables.basis[k];
      lo = _mm256_add_pd(lo, _mm256_mul_pd(t, _mm256_loadu_pd(row)));
      hi = _mm256_add_pd(hi, _mm256_mul_pd(t, _mm256_loadu_pd(row + 4)));
    }
    const __m128i i_lo = _mm256_cvtpd_epi32(TruncRound256(lo));  // ints 0..3
    const __m128i i_hi = _mm256_cvtpd_epi32(TruncRound256(hi));  // ints 4..7
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + y * 8),
                     _mm_packs_epi32(i_lo, i_hi));
  }
}

__attribute__((target("avx2"))) void Dequant64Avx2(const int16_t* in,
                                                   const double* table,
                                                   double* out) {
  for (int i = 0; i < 64; i += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m256i i32 = _mm256_cvtepi16_epi32(raw);
    const __m256d lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(i32));
    const __m256d hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(i32, 1));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(lo, _mm256_loadu_pd(table + i)));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_mul_pd(hi, _mm256_loadu_pd(table + i + 4)));
  }
}

constexpr DctOps kAvx2DctOps = {IdctAvx2, Dequant64Avx2};

#endif  // COBRA_DCT_SIMD_X86

}  // namespace

const std::array<uint8_t, 64> kZigzagOrder = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

const DctOps* DctOpsFor(util::simd::SimdLevel level) {
  using util::simd::SimdLevel;
  if (level == SimdLevel::kScalar) return &kScalarDctOps;
#if COBRA_DCT_SIMD_X86
  if (static_cast<int>(level) >
      static_cast<int>(util::simd::CpuBestLevel())) {
    return nullptr;
  }
  if (level == SimdLevel::kSse41) return &kSse41DctOps;
  if (level == SimdLevel::kAvx2) return &kAvx2DctOps;
#endif
  return nullptr;
}

util::simd::SimdLevel ActiveDctLevel() {
  const int forced = util::simd::ForcedLevel();
  int level = forced < 0 ? static_cast<int>(util::simd::CpuBestLevel()) : forced;
  while (level > 0 &&
         DctOpsFor(static_cast<util::simd::SimdLevel>(level)) == nullptr) {
    --level;
  }
  return static_cast<util::simd::SimdLevel>(level);
}

const DctOps& ActiveDctOps() { return *DctOpsFor(ActiveDctLevel()); }

void ForwardDct(const PixelBlock& in, DctBlock* out) {
  // Separable: rows then columns.
  double tmp[64];
  for (int y = 0; y < 8; ++y) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += kTables.basis[k][n] * in[y * 8 + n];
      tmp[y * 8 + k] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += kTables.basis[k][n] * tmp[n * 8 + x];
      (*out)[k * 8 + x] = acc;
    }
  }
}

void InverseDct(const DctBlock& in, PixelBlock* out) {
  ActiveDctOps().idct8x8(in.data(), out->data());
}

QuantTableSet MakeQuantTables(int quality) {
  QuantTableSet tables;
  for (int chroma = 0; chroma < 2; ++chroma) {
    const int* base = chroma ? kChromaQuant : kLumaQuant;
    for (int i = 0; i < 64; ++i) {
      const int q = ScaledQuant(base[i], quality);
      tables.quant[chroma][static_cast<size_t>(i)] = q;
      tables.dequant[chroma][static_cast<size_t>(i)] = static_cast<double>(q);
    }
  }
  return tables;
}

void Quantize(const DctBlock& in, const QuantTableSet& tables, bool chroma,
              std::array<int16_t, 64>* out) {
  const std::array<int, 64>& q = tables.quant[chroma ? 1 : 0];
  for (int i = 0; i < 64; ++i) {
    (*out)[static_cast<size_t>(i)] =
        static_cast<int16_t>(std::lround(in[static_cast<size_t>(i)] /
                                         q[static_cast<size_t>(i)]));
  }
}

void Quantize(const DctBlock& in, int quality, bool chroma,
              std::array<int16_t, 64>* out) {
  Quantize(in, MakeQuantTables(quality), chroma, out);
}

void Dequantize(const std::array<int16_t, 64>& in, const QuantTableSet& tables,
                bool chroma, DctBlock* out) {
  ActiveDctOps().dequant64(in.data(), tables.dequant[chroma ? 1 : 0].data(),
                           out->data());
}

void Dequantize(const std::array<int16_t, 64>& in, int quality, bool chroma,
                DctBlock* out) {
  Dequantize(in, MakeQuantTables(quality), chroma, out);
}

void ZigzagScan(const std::array<int16_t, 64>& in,
                std::array<int16_t, 64>* out) {
  for (int i = 0; i < 64; ++i) (*out)[i] = in[kZigzagOrder[i]];
}

void ZigzagUnscan(const std::array<int16_t, 64>& in,
                  std::array<int16_t, 64>* out) {
  for (int i = 0; i < 64; ++i) (*out)[kZigzagOrder[i]] = in[i];
}

}  // namespace cobra::media
