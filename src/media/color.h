#pragma once

/// \file color.h
/// Pixel color types and RGB <-> HSV conversion.
///
/// The shot classifier works in HSV because the paper's cues — court
/// dominant color and skin tone — are hue/saturation phenomena that are
/// robust to the illumination drift the synthesizer injects.

#include <cstdint>

namespace cobra::media {

/// 8-bit RGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  constexpr Rgb() = default;
  constexpr Rgb(uint8_t rr, uint8_t gg, uint8_t bb) : r(rr), g(gg), b(bb) {}

  bool operator==(const Rgb& o) const { return r == o.r && g == o.g && b == o.b; }

  /// ITU-R BT.601 luma in [0, 255].
  double Luma() const { return 0.299 * r + 0.587 * g + 0.114 * b; }
};

/// HSV color: h in [0, 360), s and v in [0, 1].
struct Hsv {
  double h = 0.0;
  double s = 0.0;
  double v = 0.0;
};

Hsv RgbToHsv(const Rgb& rgb);
Rgb HsvToRgb(const Hsv& hsv);

/// True if the pixel falls inside the skin-tone region used by the
/// close-up classifier (hue in the orange band, moderate saturation,
/// sufficient brightness). Matches the synthesizer's skin palette and the
/// usual RGB-ratio skin heuristics.
bool IsSkinColor(const Rgb& rgb);

}  // namespace cobra::media
