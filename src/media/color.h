#pragma once

/// \file color.h
/// Pixel color types and RGB <-> HSV conversion.
///
/// The shot classifier works in HSV because the paper's cues — court
/// dominant color and skin tone — are hue/saturation phenomena that are
/// robust to the illumination drift the synthesizer injects.

#include <cstdint>

namespace cobra::media {

/// 8-bit RGB pixel.
struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  constexpr Rgb() = default;
  constexpr Rgb(uint8_t rr, uint8_t gg, uint8_t bb) : r(rr), g(gg), b(bb) {}

  bool operator==(const Rgb& o) const { return r == o.r && g == o.g && b == o.b; }

  /// ITU-R BT.601 luma in [0, 255].
  double Luma() const { return 0.299 * r + 0.587 * g + 0.114 * b; }
};

/// HSV color: h in [0, 360), s and v in [0, 1].
struct Hsv {
  double h = 0.0;
  double s = 0.0;
  double v = 0.0;
};

Hsv RgbToHsv(const Rgb& rgb);
Rgb HsvToRgb(const Hsv& hsv);

/// True if the pixel falls inside the skin-tone region used by the
/// close-up classifier (hue in the orange band, moderate saturation,
/// sufficient brightness). Matches the synthesizer's skin palette and the
/// usual RGB-ratio skin heuristics.
///
/// Evaluated in exact integer arithmetic so the batch kernels in
/// vision/kernels.h reproduce it bit-for-bit. Given the RGB gates
/// (r > 80, r > g > b, r - b >= 15) the max channel is r and the min is b,
/// so the HSV band of the original heuristic reduces to integer ratios:
///   s > 0.1   <=>  10(r - b) > r
///   s < 0.75  <=>   4(r - b) < 3r
///   h < 50    <=>   6(g - b) < 5(r - b)   (h lies in (0, 60) when r > g > b,
///                                          so the h > 340 arm is unreachable)
///   v > 0.3   is implied by r > 80 (v = r/255 > 0.31).
inline bool IsSkinColor(const Rgb& rgb) {
  const int r = rgb.r, g = rgb.g, b = rgb.b;
  if (r <= 80 || r <= g || g <= b) return false;
  const int d = r - b;  // == 255 * v * s in HSV terms
  if (d < 15) return false;
  return 10 * d > r && 4 * d < 3 * r && 6 * (g - b) < 5 * d;
}

}  // namespace cobra::media
