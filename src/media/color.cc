#include "media/color.h"

#include <algorithm>
#include <cmath>

namespace cobra::media {

Hsv RgbToHsv(const Rgb& rgb) {
  const double r = rgb.r / 255.0;
  const double g = rgb.g / 255.0;
  const double b = rgb.b / 255.0;
  const double mx = std::max({r, g, b});
  const double mn = std::min({r, g, b});
  const double delta = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = mx > 0.0 ? delta / mx : 0.0;
  if (delta <= 0.0) {
    out.h = 0.0;
  } else if (mx == r) {
    out.h = 60.0 * std::fmod((g - b) / delta, 6.0);
  } else if (mx == g) {
    out.h = 60.0 * ((b - r) / delta + 2.0);
  } else {
    out.h = 60.0 * ((r - g) / delta + 4.0);
  }
  if (out.h < 0.0) out.h += 360.0;
  return out;
}

Rgb HsvToRgb(const Hsv& hsv) {
  const double c = hsv.v * hsv.s;
  const double hp = hsv.h / 60.0;
  const double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r = 0, g = 0, b = 0;
  if (hp < 1) {
    r = c; g = x;
  } else if (hp < 2) {
    r = x; g = c;
  } else if (hp < 3) {
    g = c; b = x;
  } else if (hp < 4) {
    g = x; b = c;
  } else if (hp < 5) {
    r = x; b = c;
  } else {
    r = c; b = x;
  }
  const double m = hsv.v - c;
  auto to8 = [m](double ch) {
    return static_cast<uint8_t>(std::clamp((ch + m) * 255.0 + 0.5, 0.0, 255.0));
  };
  return Rgb{to8(r), to8(g), to8(b)};
}

}  // namespace cobra::media
