#pragma once

/// \file ppm.h
/// Binary PPM (P6) export, so examples can dump frames for visual
/// inspection without an image library dependency.

#include <string>

#include "media/frame.h"
#include "util/status.h"

namespace cobra::media {

/// Writes `frame` as a binary PPM file at `path`.
Status WritePpm(const Frame& frame, const std::string& path);

/// Reads a binary PPM (P6, maxval 255) file.
Result<Frame> ReadPpm(const std::string& path);

}  // namespace cobra::media
