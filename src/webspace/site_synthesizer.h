#pragma once

/// \file site_synthesizer.h
/// Generates an Australian Open-style tournament webspace (DESIGN.md §2):
/// players, past tournaments and their champions, interviews (free text
/// with exactly the "hidden semantics" problem of paper §2: words like
/// "champion" appear in non-champions' interviews too), and match videos
/// whose participants are linked with a court-side role.
///
/// Emits ground truth so E7 can score the motivating query — "left-handed
/// female players who have won the Australian Open in the past" — for both
/// the conceptual engine and the keyword baseline.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "webspace/store.h"

namespace cobra::webspace {

struct SiteConfig {
  int num_players = 32;
  int num_past_years = 6;       ///< tournaments 1996..2001 for the 2002 demo
  int first_year = 1996;
  int videos_per_year = 2;
  int interviews_per_player = 1;
  uint64_t seed = 2002;
  /// Probability a non-champion interview still uses championship words
  /// (the keyword trap).
  double spurious_champion_mention = 0.4;
  /// Guarantee the motivating query has a non-empty answer: at least one
  /// champion is a left-handed female player (the 2002 site had one).
  bool ensure_answer = false;
};

/// The generated site plus its ground truth.
struct SynthesizedSite {
  WebspaceStore store;

  std::vector<int64_t> player_oids;
  std::vector<int64_t> tournament_oids;
  std::vector<int64_t> interview_oids;
  std::vector<int64_t> video_oids;

  /// interview oid -> raw text (for the full-text index).
  std::map<int64_t, std::string> interview_texts;
  /// video oid -> synthesizer seed for rendering/indexing its broadcast.
  std::map<int64_t, uint64_t> video_seeds;

  /// The true answer to "left-handed female players who won the
  /// tournament" (player oids, ascending).
  std::vector<int64_t> left_handed_female_champions;
  /// All champions (any handedness/gender).
  std::vector<int64_t> champions;

  Result<std::string> PlayerName(int64_t oid) const;
};

/// Deterministic generator (same config -> same site).
class SiteSynthesizer {
 public:
  static Result<SynthesizedSite> Generate(const SiteConfig& config);

  /// The tournament concept schema: Player, Tournament, Interview, Video;
  /// won, interviewed_in, plays_in(role = court side 0/1).
  static Result<ConceptSchema> TournamentSchema();
};

}  // namespace cobra::webspace
