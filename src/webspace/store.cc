#include "webspace/store.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>

#include "util/strings.h"

namespace cobra::webspace {

using storage::DataType;
using storage::Table;
using storage::Value;

Result<WebspaceStore> WebspaceStore::Create(ConceptSchema schema) {
  WebspaceStore store;
  for (const ClassDef& cls : schema.classes()) {
    std::vector<storage::ColumnDef> columns = {{"oid", DataType::kInt64}};
    for (const AttributeDef& attr : cls.attributes) {
      columns.push_back({attr.name, attr.type});
    }
    COBRA_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(columns)));
    store.class_tables_.emplace(cls.name, std::move(table));
    store.class_rows_.emplace(cls.name,
                              std::unordered_map<int64_t, int64_t>{});
  }
  for (const AssociationDef& assoc : schema.associations()) {
    COBRA_ASSIGN_OR_RETURN(Table table,
                           Table::Create({{"from_oid", DataType::kInt64},
                                          {"to_oid", DataType::kInt64},
                                          {"role", DataType::kInt64}}));
    store.assoc_tables_.emplace(assoc.name, std::move(table));
    store.assoc_index_.emplace(assoc.name, AssocIndex{});
  }
  store.schema_ = std::move(schema);
  return store;
}

Result<WebspaceStore> WebspaceStore::Restore(
    ConceptSchema schema, std::map<std::string, Table> class_tables,
    std::map<std::string, Table> assoc_tables) {
  WebspaceStore store;
  for (const ClassDef& cls : schema.classes()) {
    auto it = class_tables.find(cls.name);
    if (it == class_tables.end()) {
      return Status::InvalidArgument(
          StringFormat("restore: missing table for class '%s'",
                       cls.name.c_str()));
    }
    if (it->second.num_columns() != cls.attributes.size() + 1) {
      return Status::InvalidArgument(StringFormat(
          "restore: class '%s' table has %zu columns, schema wants %zu",
          cls.name.c_str(), it->second.num_columns(),
          cls.attributes.size() + 1));
    }
  }
  for (const AssociationDef& assoc : schema.associations()) {
    auto it = assoc_tables.find(assoc.name);
    if (it == assoc_tables.end()) {
      return Status::InvalidArgument(
          StringFormat("restore: missing table for association '%s'",
                       assoc.name.c_str()));
    }
  }
  if (class_tables.size() != schema.classes().size() ||
      assoc_tables.size() != schema.associations().size()) {
    return Status::InvalidArgument(
        "restore: table not declared by the schema");
  }
  store.class_tables_ = std::move(class_tables);
  store.assoc_tables_ = std::move(assoc_tables);
  // Derived state is rebuilt, never persisted: oid maps and row indexes
  // from the class tables, adjacency from the association tables.
  for (const auto& [name, table] : store.class_tables_) {
    auto& rows = store.class_rows_[name];
    const std::vector<int64_t>& oids = table.IntColumn(0);
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      const int64_t oid = oids[static_cast<size_t>(row)];
      if (!store.oid_class_.emplace(oid, name).second) {
        return Status::InvalidArgument(StringFormat(
            "restore: oid %lld appears in two classes",
            static_cast<long long>(oid)));
      }
      rows[oid] = row;
      store.next_oid_ = std::max(store.next_oid_, oid + 1);
    }
  }
  for (const auto& [name, table] : store.assoc_tables_) {
    AssocIndex& index = store.assoc_index_[name];
    const std::vector<int64_t>& from = table.IntColumn(0);
    const std::vector<int64_t>& to = table.IntColumn(1);
    const std::vector<int64_t>& roles = table.IntColumn(2);
    for (size_t i = 0; i < from.size(); ++i) {
      index.forward[from[i]].emplace_back(to[i], roles[i]);
      index.reverse[to[i]].emplace_back(from[i], roles[i]);
    }
  }
  store.schema_ = std::move(schema);
  return store;
}

Result<int64_t> WebspaceStore::Insert(const std::string& class_name,
                                      std::vector<Value> values) {
  auto it = class_tables_.find(class_name);
  if (it == class_tables_.end()) {
    return Status::NotFound(StringFormat("no class '%s'", class_name.c_str()));
  }
  int64_t oid = next_oid_++;
  std::vector<Value> row;
  row.reserve(values.size() + 1);
  row.emplace_back(oid);
  for (Value& v : values) row.push_back(std::move(v));
  const int64_t row_id = it->second.num_rows();
  COBRA_RETURN_NOT_OK(it->second.AppendRow(std::move(row)));
  oid_class_[oid] = class_name;
  class_rows_[class_name][oid] = row_id;
  return oid;
}

Status WebspaceStore::Link(const std::string& association, int64_t from_oid,
                           int64_t to_oid, int64_t role) {
  auto it = assoc_tables_.find(association);
  if (it == assoc_tables_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  COBRA_ASSIGN_OR_RETURN(const AssociationDef* def,
                         schema_.FindAssociation(association));
  auto from_cls = oid_class_.find(from_oid);
  auto to_cls = oid_class_.find(to_oid);
  if (from_cls == oid_class_.end() || from_cls->second != def->from_class ||
      to_cls == oid_class_.end() || to_cls->second != def->to_class) {
    return Status::InvalidArgument(StringFormat(
        "link %lld -> %lld violates association '%s' (%s -> %s)",
        static_cast<long long>(from_oid), static_cast<long long>(to_oid),
        association.c_str(), def->from_class.c_str(), def->to_class.c_str()));
  }
  COBRA_RETURN_NOT_OK(it->second.AppendRow({from_oid, to_oid, role}));
  AssocIndex& index = assoc_index_[association];
  index.forward[from_oid].emplace_back(to_oid, role);
  index.reverse[to_oid].emplace_back(from_oid, role);
  return Status::OK();
}

Result<const Table*> WebspaceStore::ClassTable(
    const std::string& class_name) const {
  auto it = class_tables_.find(class_name);
  if (it == class_tables_.end()) {
    return Status::NotFound(StringFormat("no class '%s'", class_name.c_str()));
  }
  return &it->second;
}

Result<const Table*> WebspaceStore::AssociationTable(
    const std::string& association) const {
  auto it = assoc_tables_.find(association);
  if (it == assoc_tables_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  return &it->second;
}

Result<Value> WebspaceStore::GetAttribute(const std::string& class_name,
                                          int64_t oid,
                                          const std::string& attribute) const {
  COBRA_ASSIGN_OR_RETURN(const Table* table, ClassTable(class_name));
  COBRA_ASSIGN_OR_RETURN(size_t col, table->ColumnIndex(attribute));
  const int64_t row = RowOf(class_name, oid);
  if (row < 0) {
    return Status::NotFound(StringFormat("no %s object with oid %lld",
                                         class_name.c_str(),
                                         static_cast<long long>(oid)));
  }
  return table->GetValue(row, col);
}

int64_t WebspaceStore::RowOf(const std::string& class_name,
                             int64_t oid) const {
  auto cls = class_rows_.find(class_name);
  if (cls == class_rows_.end()) return -1;
  auto it = cls->second.find(oid);
  return it == cls->second.end() ? -1 : it->second;
}

namespace {

/// Sorts into ascending unique order in place.
void SortUnique(std::vector<int64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Sets bit `v - lo` in a [lo, hi] membership bitmap.
void SetBit(std::vector<uint64_t>& bits, int64_t lo, int64_t v) {
  const uint64_t off = static_cast<uint64_t>(v - lo);
  bits[off >> 6] |= uint64_t{1} << (off & 63);
}

bool TestBit(const std::vector<uint64_t>& bits, int64_t lo, int64_t v) {
  const uint64_t off = static_cast<uint64_t>(v - lo);
  return ((bits[off >> 6] >> (off & 63)) & 1) != 0;
}

/// Global [min, max] of an int64 column, folded from its zone maps.
std::pair<int64_t, int64_t> ColumnRange(const storage::Table& table,
                                        size_t col) {
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (const storage::ZoneEntry& z : table.Zones(col)) {
    lo = std::min(lo, z.imin);
    hi = std::max(hi, z.imax);
  }
  return {lo, hi};
}

/// Scan path for dense key sets: streams the contiguous edge columns with a
/// bitmap membership test over [min_key, max_key]. One sequential pass over
/// the table beats one random hash probe per key once the selection covers
/// a sizable fraction of the edges. Reached oids dedupe into a second
/// bitmap sized from the target column's zone maps, so the ascending output
/// falls out of a bitmap sweep instead of a sort.
std::vector<int64_t> TraverseScan(const storage::Table& edges, size_t key_col,
                                  size_t other_col,
                                  const std::vector<int64_t>& uniq,
                                  int64_t role) {
  const auto& keys = edges.IntColumn(key_col);
  const auto& others = edges.IntColumn(other_col);
  const auto& roles = edges.IntColumn(2);
  const int64_t lo = uniq.front();
  const int64_t hi = uniq.back();
  std::vector<uint64_t> bits((static_cast<uint64_t>(hi - lo) >> 6) + 1, 0);
  for (int64_t k : uniq) SetBit(bits, lo, k);

  const size_t n = keys.size();
  const auto [olo, ohi] = ColumnRange(edges, other_col);
  if (olo > ohi) return {};
  if (static_cast<uint64_t>(ohi - olo) >= 64 * (static_cast<uint64_t>(n) + 1024)) {
    // Target oids too sparse for a bitmap: collect matches and sort.
    std::vector<int64_t> out;
    out.reserve(uniq.size());
    for (size_t i = 0; i < n; ++i) {
      const int64_t k = keys[i];
      if (k < lo || k > hi || !TestBit(bits, lo, k)) continue;
      if (role >= 0 && roles[i] != role) continue;
      out.push_back(others[i]);
    }
    SortUnique(out);
    return out;
  }
  std::vector<uint64_t> reached((static_cast<uint64_t>(ohi - olo) >> 6) + 1,
                                0);
  for (size_t i = 0; i < n; ++i) {
    const int64_t k = keys[i];
    if (k < lo || k > hi || !TestBit(bits, lo, k)) continue;
    if (role >= 0 && roles[i] != role) continue;
    SetBit(reached, olo, others[i]);
  }
  std::vector<int64_t> out;
  for (size_t w = 0; w < reached.size(); ++w) {
    uint64_t word = reached[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(olo + static_cast<int64_t>((w << 6) + bit));
      word &= word - 1;
    }
  }
  return out;
}

/// Walks the adjacency lists of the unique keys; returns the set of
/// reached oids, ascending (same contract as the old full-scan traversal).
/// Dispatch between the walk and the column scan is a costed decision (see
/// TraversalStrategy in store.h): the old fixed density ratio
/// (|keys|·16 >= |edges|) is replaced by a per-key cost of one hash probe
/// plus the association's average fan-out from the edge table's exact NDV
/// statistics, against one streaming pass for the scan. The scan's bitmap
/// stays no bigger than one edge column (the width guard), so a forced
/// kScan outside that bound runs the walk instead.
Result<std::vector<int64_t>> TraverseIndexed(
    const std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>>&
        adjacency,
    const storage::Table& edges, size_t key_col, size_t other_col,
    const std::vector<int64_t>& keys, int64_t role,
    TraversalStrategy strategy, TraversalStrategy* chosen) {
  if (chosen != nullptr) *chosen = TraversalStrategy::kWalk;
  std::vector<int64_t> uniq = keys;
  SortUnique(uniq);
  if (uniq.empty()) return std::vector<int64_t>{};
  const auto rows = static_cast<size_t>(edges.num_rows());
  const uint64_t width = static_cast<uint64_t>(uniq.back() - uniq.front()) + 1;
  const bool scan_feasible = width <= 64 * (rows + 1024);
  bool scan = strategy == TraversalStrategy::kScan;
  if (strategy == TraversalStrategy::kAuto) {
    COBRA_ASSIGN_OR_RETURN(int64_t key_ndv, edges.Ndv(key_col));
    const double fanout =
        static_cast<double>(rows) / static_cast<double>(std::max<int64_t>(1, key_ndv));
    // One adjacency probe costs several scanned edge elements (hash + cache
    // misses); emitting a reached edge costs about the same on both paths.
    constexpr double kProbeCost = 8.0;
    const double walk_cost =
        static_cast<double>(uniq.size()) * (kProbeCost + fanout);
    const double scan_cost =
        static_cast<double>(rows) + static_cast<double>(width) / 64.0;
    scan = scan_cost < walk_cost;
  }
  if (scan && scan_feasible) {
    if (chosen != nullptr) *chosen = TraversalStrategy::kScan;
    return TraverseScan(edges, key_col, other_col, uniq, role);
  }
  std::vector<int64_t> out;
  out.reserve(uniq.size());
  for (int64_t key : uniq) {
    auto it = adjacency.find(key);
    if (it == adjacency.end()) continue;
    for (const auto& [other, edge_role] : it->second) {
      if (role >= 0 && edge_role != role) continue;
      out.push_back(other);
    }
  }
  SortUnique(out);
  return out;
}

}  // namespace

Result<std::vector<int64_t>> WebspaceStore::Traverse(
    const std::string& association, const std::vector<int64_t>& from_oids,
    int64_t role, TraversalStrategy strategy, TraversalStrategy* chosen) const {
  auto it = assoc_index_.find(association);
  if (it == assoc_index_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  return TraverseIndexed(it->second.forward, assoc_tables_.at(association),
                         /*key_col=*/0, /*other_col=*/1, from_oids, role,
                         strategy, chosen);
}

Result<std::vector<int64_t>> WebspaceStore::TraverseReverse(
    const std::string& association, const std::vector<int64_t>& to_oids,
    int64_t role, TraversalStrategy strategy, TraversalStrategy* chosen) const {
  auto it = assoc_index_.find(association);
  if (it == assoc_index_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  return TraverseIndexed(it->second.reverse, assoc_tables_.at(association),
                         /*key_col=*/1, /*other_col=*/0, to_oids, role,
                         strategy, chosen);
}

Result<std::vector<int64_t>> WebspaceStore::Roles(const std::string& association,
                                                  int64_t from_oid,
                                                  int64_t to_oid) const {
  auto assoc = assoc_index_.find(association);
  if (assoc == assoc_index_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  // Forward adjacency preserves Link order, so roles come back in the same
  // (insertion) order the full table scan produced.
  std::vector<int64_t> out;
  auto it = assoc->second.forward.find(from_oid);
  if (it == assoc->second.forward.end()) return out;
  for (const auto& [other, edge_role] : it->second) {
    if (other == to_oid) out.push_back(edge_role);
  }
  return out;
}

}  // namespace cobra::webspace
