#include "webspace/store.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace cobra::webspace {

using storage::DataType;
using storage::Table;
using storage::Value;

Result<WebspaceStore> WebspaceStore::Create(ConceptSchema schema) {
  WebspaceStore store;
  for (const ClassDef& cls : schema.classes()) {
    std::vector<storage::ColumnDef> columns = {{"oid", DataType::kInt64}};
    for (const AttributeDef& attr : cls.attributes) {
      columns.push_back({attr.name, attr.type});
    }
    COBRA_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(columns)));
    store.class_tables_.emplace(cls.name, std::move(table));
  }
  for (const AssociationDef& assoc : schema.associations()) {
    COBRA_ASSIGN_OR_RETURN(Table table,
                           Table::Create({{"from_oid", DataType::kInt64},
                                          {"to_oid", DataType::kInt64},
                                          {"role", DataType::kInt64}}));
    store.assoc_tables_.emplace(assoc.name, std::move(table));
  }
  store.schema_ = std::move(schema);
  return store;
}

Result<int64_t> WebspaceStore::Insert(const std::string& class_name,
                                      std::vector<Value> values) {
  auto it = class_tables_.find(class_name);
  if (it == class_tables_.end()) {
    return Status::NotFound(StringFormat("no class '%s'", class_name.c_str()));
  }
  int64_t oid = next_oid_++;
  std::vector<Value> row;
  row.reserve(values.size() + 1);
  row.emplace_back(oid);
  for (Value& v : values) row.push_back(std::move(v));
  COBRA_RETURN_NOT_OK(it->second.AppendRow(std::move(row)));
  oid_class_[oid] = class_name;
  return oid;
}

Status WebspaceStore::Link(const std::string& association, int64_t from_oid,
                           int64_t to_oid, int64_t role) {
  auto it = assoc_tables_.find(association);
  if (it == assoc_tables_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  COBRA_ASSIGN_OR_RETURN(const AssociationDef* def,
                         schema_.FindAssociation(association));
  auto from_cls = oid_class_.find(from_oid);
  auto to_cls = oid_class_.find(to_oid);
  if (from_cls == oid_class_.end() || from_cls->second != def->from_class ||
      to_cls == oid_class_.end() || to_cls->second != def->to_class) {
    return Status::InvalidArgument(StringFormat(
        "link %lld -> %lld violates association '%s' (%s -> %s)",
        static_cast<long long>(from_oid), static_cast<long long>(to_oid),
        association.c_str(), def->from_class.c_str(), def->to_class.c_str()));
  }
  return it->second.AppendRow({from_oid, to_oid, role});
}

Result<const Table*> WebspaceStore::ClassTable(
    const std::string& class_name) const {
  auto it = class_tables_.find(class_name);
  if (it == class_tables_.end()) {
    return Status::NotFound(StringFormat("no class '%s'", class_name.c_str()));
  }
  return &it->second;
}

Result<const Table*> WebspaceStore::AssociationTable(
    const std::string& association) const {
  auto it = assoc_tables_.find(association);
  if (it == assoc_tables_.end()) {
    return Status::NotFound(
        StringFormat("no association '%s'", association.c_str()));
  }
  return &it->second;
}

Result<Value> WebspaceStore::GetAttribute(const std::string& class_name,
                                          int64_t oid,
                                          const std::string& attribute) const {
  COBRA_ASSIGN_OR_RETURN(const Table* table, ClassTable(class_name));
  COBRA_ASSIGN_OR_RETURN(size_t col, table->ColumnIndex(attribute));
  COBRA_ASSIGN_OR_RETURN(
      std::vector<int64_t> rows,
      storage::Select(*table, {"oid", storage::CompareOp::kEq, oid}));
  if (rows.empty()) {
    return Status::NotFound(StringFormat("no %s object with oid %lld",
                                         class_name.c_str(),
                                         static_cast<long long>(oid)));
  }
  return table->GetValue(rows[0], col);
}

namespace {

Result<std::vector<int64_t>> TraverseImpl(const Table& table, size_t key_col,
                                          size_t out_col,
                                          const std::vector<int64_t>& keys,
                                          int64_t role) {
  std::set<int64_t> key_set(keys.begin(), keys.end());
  std::set<int64_t> out;
  const auto& key_data =
      key_col == 0 ? table.IntColumn(0) : table.IntColumn(1);
  const auto& out_data =
      out_col == 0 ? table.IntColumn(0) : table.IntColumn(1);
  const auto& roles = table.IntColumn(2);
  for (size_t r = 0; r < key_data.size(); ++r) {
    if (!key_set.count(key_data[r])) continue;
    if (role >= 0 && roles[r] != role) continue;
    out.insert(out_data[r]);
  }
  return std::vector<int64_t>(out.begin(), out.end());
}

}  // namespace

Result<std::vector<int64_t>> WebspaceStore::Traverse(
    const std::string& association, const std::vector<int64_t>& from_oids,
    int64_t role) const {
  COBRA_ASSIGN_OR_RETURN(const Table* table, AssociationTable(association));
  return TraverseImpl(*table, 0, 1, from_oids, role);
}

Result<std::vector<int64_t>> WebspaceStore::TraverseReverse(
    const std::string& association, const std::vector<int64_t>& to_oids,
    int64_t role) const {
  COBRA_ASSIGN_OR_RETURN(const Table* table, AssociationTable(association));
  return TraverseImpl(*table, 1, 0, to_oids, role);
}

Result<std::vector<int64_t>> WebspaceStore::Roles(const std::string& association,
                                                  int64_t from_oid,
                                                  int64_t to_oid) const {
  COBRA_ASSIGN_OR_RETURN(const Table* table, AssociationTable(association));
  std::vector<int64_t> out;
  const auto& from = table->IntColumn(0);
  const auto& to = table->IntColumn(1);
  const auto& roles = table->IntColumn(2);
  for (size_t r = 0; r < from.size(); ++r) {
    if (from[r] == from_oid && to[r] == to_oid) out.push_back(roles[r]);
  }
  return out;
}

}  // namespace cobra::webspace
