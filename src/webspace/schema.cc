#include "webspace/schema.h"

#include <set>

#include "util/strings.h"

namespace cobra::webspace {

Result<ConceptSchema> ConceptSchema::Create(
    std::vector<ClassDef> classes, std::vector<AssociationDef> associations) {
  std::set<std::string> class_names;
  for (const ClassDef& cls : classes) {
    if (cls.name.empty()) {
      return Status::InvalidArgument("class names must be non-empty");
    }
    if (!class_names.insert(cls.name).second) {
      return Status::InvalidArgument(
          StringFormat("duplicate class '%s'", cls.name.c_str()));
    }
    std::set<std::string> attr_names = {"oid"};  // implicit key
    for (const AttributeDef& attr : cls.attributes) {
      if (!attr_names.insert(attr.name).second) {
        return Status::InvalidArgument(
            StringFormat("class '%s': duplicate attribute '%s'",
                         cls.name.c_str(), attr.name.c_str()));
      }
    }
  }
  std::set<std::string> assoc_names;
  for (const AssociationDef& assoc : associations) {
    if (!assoc_names.insert(assoc.name).second) {
      return Status::InvalidArgument(
          StringFormat("duplicate association '%s'", assoc.name.c_str()));
    }
    if (!class_names.count(assoc.from_class) ||
        !class_names.count(assoc.to_class)) {
      return Status::InvalidArgument(
          StringFormat("association '%s' references unknown class",
                       assoc.name.c_str()));
    }
  }
  ConceptSchema schema;
  schema.classes_ = std::move(classes);
  schema.associations_ = std::move(associations);
  return schema;
}

bool ConceptSchema::HasClass(const std::string& name) const {
  for (const ClassDef& cls : classes_) {
    if (cls.name == name) return true;
  }
  return false;
}

Result<const ClassDef*> ConceptSchema::FindClass(const std::string& name) const {
  for (const ClassDef& cls : classes_) {
    if (cls.name == name) return &cls;
  }
  return Status::NotFound(StringFormat("no class '%s'", name.c_str()));
}

Result<const AssociationDef*> ConceptSchema::FindAssociation(
    const std::string& name) const {
  for (const AssociationDef& assoc : associations_) {
    if (assoc.name == name) return &assoc;
  }
  return Status::NotFound(StringFormat("no association '%s'", name.c_str()));
}

}  // namespace cobra::webspace
