#pragma once

/// \file schema.h
/// The webspace method (ref [4]): conceptual modeling of a limited-domain
/// web site. A concept schema declares object classes with typed attributes
/// and named associations between classes; site content is then stored as
/// objects conforming to the schema, which is what makes precise,
/// concept-level query formulation possible (paper §2).

#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace cobra::webspace {

struct AttributeDef {
  std::string name;
  storage::DataType type;
};

struct ClassDef {
  std::string name;
  std::vector<AttributeDef> attributes;
};

/// Directed binary association with an integer `role` payload (e.g. which
/// side of a match a player occupies).
struct AssociationDef {
  std::string name;
  std::string from_class;
  std::string to_class;
};

/// A validated conceptual schema.
class ConceptSchema {
 public:
  static Result<ConceptSchema> Create(std::vector<ClassDef> classes,
                                      std::vector<AssociationDef> associations);

  const std::vector<ClassDef>& classes() const { return classes_; }
  const std::vector<AssociationDef>& associations() const {
    return associations_;
  }

  bool HasClass(const std::string& name) const;
  Result<const ClassDef*> FindClass(const std::string& name) const;
  Result<const AssociationDef*> FindAssociation(const std::string& name) const;

 private:
  std::vector<ClassDef> classes_;
  std::vector<AssociationDef> associations_;
};

}  // namespace cobra::webspace
