#include "webspace/site_synthesizer.h"

#include <algorithm>

#include "text/corpus.h"
#include "util/strings.h"

namespace cobra::webspace {

using storage::DataType;
using storage::Value;

namespace {

std::string Capitalize(std::string word) {
  if (!word.empty()) {
    word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
  }
  return word;
}

std::string PlayerFullName(int index) {
  // Distinct, pronounceable, deterministic; offsets keep first/last pools
  // disjoint from each other and from the low-rank corpus filler words.
  return Capitalize(text::VocabularyWord(4000 + index)) + " " +
         Capitalize(text::VocabularyWord(8000 + index));
}

const char* kCountries[] = {"australia", "usa",    "france", "spain",
                            "russia",    "belgium", "serbia", "japan"};

}  // namespace

Result<std::string> SynthesizedSite::PlayerName(int64_t oid) const {
  COBRA_ASSIGN_OR_RETURN(Value name, store.GetAttribute("Player", oid, "name"));
  return std::get<std::string>(name);
}

Result<ConceptSchema> SiteSynthesizer::TournamentSchema() {
  return ConceptSchema::Create(
      {
          ClassDef{"Player",
                   {{"name", DataType::kString},
                    {"gender", DataType::kString},
                    {"hand", DataType::kString},
                    {"country", DataType::kString},
                    {"ranking", DataType::kInt64}}},
          ClassDef{"Tournament",
                   {{"name", DataType::kString}, {"year", DataType::kInt64}}},
          ClassDef{"Interview",
                   {{"title", DataType::kString}, {"text", DataType::kString}}},
          ClassDef{"Video",
                   {{"title", DataType::kString}, {"year", DataType::kInt64}}},
      },
      {
          AssociationDef{"won", "Player", "Tournament"},
          AssociationDef{"interviewed_in", "Player", "Interview"},
          AssociationDef{"plays_in", "Player", "Video"},
      });
}

Result<SynthesizedSite> SiteSynthesizer::Generate(const SiteConfig& config) {
  if (config.num_players < 4 || config.num_past_years < 1) {
    return Status::InvalidArgument("site needs >= 4 players and >= 1 year");
  }
  COBRA_ASSIGN_OR_RETURN(ConceptSchema schema, TournamentSchema());
  COBRA_ASSIGN_OR_RETURN(WebspaceStore store, WebspaceStore::Create(std::move(schema)));
  SynthesizedSite site{std::move(store), {}, {}, {}, {}, {}, {}, {}, {}};
  Rng rng(config.seed);

  // --- players ---
  struct PlayerInfo {
    int64_t oid;
    std::string name;
    bool female;
    bool left;
  };
  std::vector<PlayerInfo> players;
  std::vector<int64_t> rankings(static_cast<size_t>(config.num_players));
  for (int i = 0; i < config.num_players; ++i) rankings[static_cast<size_t>(i)] = i + 1;
  rng.Shuffle(&rankings);
  for (int i = 0; i < config.num_players; ++i) {
    PlayerInfo info;
    info.name = PlayerFullName(i);
    info.female = rng.NextBernoulli(0.5);
    info.left = rng.NextBernoulli(0.3);
    if (config.ensure_answer && i == 0) {
      info.female = true;
      info.left = true;
    }
    COBRA_ASSIGN_OR_RETURN(
        info.oid,
        site.store.Insert(
            "Player",
            {info.name, std::string(info.female ? "female" : "male"),
             std::string(info.left ? "left" : "right"),
             std::string(kCountries[rng.NextBounded(8)]),
             rankings[static_cast<size_t>(i)]}));
    site.player_oids.push_back(info.oid);
    players.push_back(std::move(info));
  }

  // --- past tournaments + champions ---
  std::vector<bool> is_champion(players.size(), false);
  for (int y = 0; y < config.num_past_years; ++y) {
    int64_t year = config.first_year + y;
    COBRA_ASSIGN_OR_RETURN(
        int64_t tournament_oid,
        site.store.Insert("Tournament",
                          {std::string("australian open"), year}));
    site.tournament_oids.push_back(tournament_oid);
    size_t champ = rng.NextBounded(players.size());
    if (config.ensure_answer && y == 0) champ = 0;  // the guaranteed answer
    is_champion[champ] = true;
    COBRA_RETURN_NOT_OK(
        site.store.Link("won", players[champ].oid, tournament_oid));

    // Match videos of the year; the champion appears in the first one.
    for (int v = 0; v < config.videos_per_year; ++v) {
      size_t a = v == 0 ? champ : rng.NextBounded(players.size());
      size_t b = rng.NextBounded(players.size());
      while (b == a) b = rng.NextBounded(players.size());
      COBRA_ASSIGN_OR_RETURN(
          int64_t video_oid,
          site.store.Insert(
              "Video", {StringFormat("final %lld match %d",
                                     static_cast<long long>(year), v),
                        year}));
      site.video_oids.push_back(video_oid);
      site.video_seeds[video_oid] =
          MixHash(config.seed ^ (static_cast<uint64_t>(year) << 8) ^
                  static_cast<uint64_t>(v));
      COBRA_RETURN_NOT_OK(
          site.store.Link("plays_in", players[a].oid, video_oid, /*role=*/0));
      COBRA_RETURN_NOT_OK(
          site.store.Link("plays_in", players[b].oid, video_oid, /*role=*/1));
    }
  }

  // --- interviews: free text with hidden semantics ---
  for (size_t p = 0; p < players.size(); ++p) {
    for (int i = 0; i < config.interviews_per_player; ++i) {
      std::string lower_name = ToLowerAscii(players[p].name);
      std::string text = StringFormat(
          "interview with %s at the australian open in melbourne. ",
          lower_name.c_str());
      if (is_champion[p]) {
        text +=
            "the champion talked about winning the title and defending it "
            "this year. ";
      } else if (rng.NextBernoulli(config.spurious_champion_mention)) {
        // The keyword trap: championship vocabulary without the semantics.
        text +=
            "the player dreams of becoming champion and lifting the title "
            "one day. ";
      }
      if (rng.NextBernoulli(0.3)) {
        text += StringFormat("known for a strong %s-handed serve. ",
                             players[p].left ? "left" : "right");
      }
      if (rng.NextBernoulli(0.5)) {
        text += "favorite tactic is approaching the net after a deep volley. ";
      }
      // Filler so tf-idf has realistic mass.
      for (int w = 0; w < 30; ++w) {
        text += text::VocabularyWord(1 + rng.NextBounded(700)) + " ";
      }
      COBRA_ASSIGN_OR_RETURN(
          int64_t interview_oid,
          site.store.Insert("Interview",
                            {StringFormat("interview %zu-%d", p, i), text}));
      site.interview_oids.push_back(interview_oid);
      site.interview_texts[interview_oid] = text;
      COBRA_RETURN_NOT_OK(
          site.store.Link("interviewed_in", players[p].oid, interview_oid));
    }
  }

  // --- ground truth ---
  for (size_t p = 0; p < players.size(); ++p) {
    if (is_champion[p]) {
      site.champions.push_back(players[p].oid);
      if (players[p].female && players[p].left) {
        site.left_handed_female_champions.push_back(players[p].oid);
      }
    }
  }
  std::sort(site.champions.begin(), site.champions.end());
  std::sort(site.left_handed_female_champions.begin(),
            site.left_handed_female_champions.end());
  return site;
}

}  // namespace cobra::webspace
