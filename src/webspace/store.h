#pragma once

/// \file store.h
/// Object store conforming to a ConceptSchema: one column-store table per
/// class (with an implicit `oid` key) and one per association.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/ops.h"
#include "storage/table.h"
#include "webspace/schema.h"

namespace cobra::webspace {

/// How Traverse/TraverseReverse materializes the reached set (results are
/// identical for every choice, DESIGN.md §4g). kWalk probes the hash
/// adjacency once per unique key; kScan streams the contiguous edge columns
/// against a key bitmap. kAuto is the costed decision: walking costs one
/// probe plus the association's average fan-out (edges / exact key-column
/// NDV) per key, scanning one pass over the edges plus the bitmaps. A
/// forced kScan still falls back to the walk when the key range is too wide
/// for a bitmap (the `chosen` out-parameter reports what actually ran).
enum class TraversalStrategy { kAuto, kWalk, kScan };

class WebspaceStore {
 public:
  /// Builds empty tables for every class and association of `schema`.
  static Result<WebspaceStore> Create(ConceptSchema schema);

  /// Reassembles a store from persisted tables (one per schema class and
  /// association, same layouts as ClassTable/AssociationTable expose). The
  /// derived state — oid→class map, oid→row indexes, adjacency lists and
  /// the next-oid counter — is rebuilt by scanning the tables, so only the
  /// tables themselves need to be serialized (DESIGN.md §4h). Fails when a
  /// schema class/association is missing a table, a table is unknown to
  /// the schema, or an oid appears in two classes.
  static Result<WebspaceStore> Restore(
      ConceptSchema schema, std::map<std::string, storage::Table> class_tables,
      std::map<std::string, storage::Table> assoc_tables);

  const ConceptSchema& schema() const { return schema_; }

  /// Inserts an object; `values` must match the class's declared attributes
  /// in order (oid is assigned). Returns the new oid (globally unique).
  Result<int64_t> Insert(const std::string& class_name,
                         std::vector<storage::Value> values);

  /// Links two objects through an association; `role` is an integer
  /// payload (e.g. the court side a player occupies in a match video).
  Status Link(const std::string& association, int64_t from_oid, int64_t to_oid,
              int64_t role = 0);

  /// Class table: columns (oid, <declared attributes>...).
  Result<const storage::Table*> ClassTable(const std::string& class_name) const;

  /// Association table: columns (from_oid, to_oid, role).
  Result<const storage::Table*> AssociationTable(
      const std::string& association) const;

  /// Attribute value of one object. Resolved through the oid→row index,
  /// not a column scan.
  Result<storage::Value> GetAttribute(const std::string& class_name,
                                      int64_t oid,
                                      const std::string& attribute) const;

  /// Row of `oid` in the class table, or -1 when the class does not exist
  /// or holds no such object. O(1); query plans use this to turn oid sets
  /// into selection vectors for `storage::Refine`.
  int64_t RowOf(const std::string& class_name, int64_t oid) const;

  /// Oids reachable from `from_oids` through `association` (set semantics,
  /// ascending). Role filter applies when role >= 0. `strategy` defaults to
  /// the costed dispatch; `chosen`, when non-null, receives the strategy
  /// that actually ran (kWalk/kScan — the planner's explain surface).
  Result<std::vector<int64_t>> Traverse(
      const std::string& association, const std::vector<int64_t>& from_oids,
      int64_t role = -1, TraversalStrategy strategy = TraversalStrategy::kAuto,
      TraversalStrategy* chosen = nullptr) const;

  /// Reverse traversal: from target oids back to sources.
  Result<std::vector<int64_t>> TraverseReverse(
      const std::string& association, const std::vector<int64_t>& to_oids,
      int64_t role = -1, TraversalStrategy strategy = TraversalStrategy::kAuto,
      TraversalStrategy* chosen = nullptr) const;

  /// All role payloads on edges from `from_oid` to `to_oid`.
  Result<std::vector<int64_t>> Roles(const std::string& association,
                                     int64_t from_oid, int64_t to_oid) const;

 private:
  /// Per-direction adjacency of one association, maintained on Link:
  /// key oid -> (other-end oid, role) edges in insertion order.
  struct AssocIndex {
    std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>>
        forward;  ///< from_oid -> (to_oid, role)
    std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>>
        reverse;  ///< to_oid -> (from_oid, role)
  };

  ConceptSchema schema_;
  std::map<std::string, storage::Table> class_tables_;
  std::map<std::string, storage::Table> assoc_tables_;
  std::map<int64_t, std::string> oid_class_;  ///< oid -> class name
  /// oid -> row in the class table, per class (maintained on Insert).
  std::map<std::string, std::unordered_map<int64_t, int64_t>> class_rows_;
  std::map<std::string, AssocIndex> assoc_index_;
  int64_t next_oid_ = 1;
};

}  // namespace cobra::webspace
