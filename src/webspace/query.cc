#include "webspace/query.h"

#include <algorithm>

namespace cobra::webspace {

Result<std::vector<int64_t>> SelectObjects(const WebspaceStore& store,
                                           const ClassSelection& selection) {
  COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                         store.ClassTable(selection.class_name));
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                         storage::SelectAll(*table, selection.predicates));
  // Oids are assigned monotonically at insert, so ascending rows are
  // ascending oids — no sort needed.
  const auto& oid_col = table->IntColumn(0);
  std::vector<int64_t> oids;
  oids.reserve(rows.size());
  for (int64_t r : rows) oids.push_back(oid_col[static_cast<size_t>(r)]);
  return oids;
}

namespace {

/// Filters `reached` oids down to those satisfying `selection`, preserving
/// order. Instead of re-selecting the whole class and intersecting, the
/// reached set is mapped to rows through the oid→row index (dropping oids
/// of other classes, which the intersection also excluded) and the
/// predicates run as a `Refine` chain over just those rows.
Result<std::vector<int64_t>> FilterReached(const WebspaceStore& store,
                                           const std::vector<int64_t>& reached,
                                           const ClassSelection& selection) {
  COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                         store.ClassTable(selection.class_name));
  std::vector<int64_t> rows;
  rows.reserve(reached.size());
  for (int64_t oid : reached) {
    const int64_t row = store.RowOf(selection.class_name, oid);
    if (row >= 0) rows.push_back(row);
  }
  for (const storage::Predicate& pred : selection.predicates) {
    COBRA_ASSIGN_OR_RETURN(rows, storage::Refine(*table, pred, rows));
  }
  const auto& oid_col = table->IntColumn(0);
  std::vector<int64_t> oids;
  oids.reserve(rows.size());
  for (int64_t r : rows) oids.push_back(oid_col[static_cast<size_t>(r)]);
  return oids;
}

}  // namespace

Result<std::vector<int64_t>> ExecuteQuery(const WebspaceStore& store,
                                          const WebspaceQuery& query) {
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> current,
                         SelectObjects(store, query.source));
  for (const PathStep& step : query.path) {
    if (current.empty()) return current;
    COBRA_ASSIGN_OR_RETURN(
        std::vector<int64_t> reached,
        step.reverse ? store.TraverseReverse(step.association, current, step.role)
                     : store.Traverse(step.association, current, step.role));
    COBRA_ASSIGN_OR_RETURN(current, FilterReached(store, reached, step.target));
  }
  return current;
}

}  // namespace cobra::webspace
