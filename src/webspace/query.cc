#include "webspace/query.h"

#include <algorithm>
#include <set>

namespace cobra::webspace {

Result<std::vector<int64_t>> SelectObjects(const WebspaceStore& store,
                                           const ClassSelection& selection) {
  COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                         store.ClassTable(selection.class_name));
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                         storage::SelectAll(*table, selection.predicates));
  std::vector<int64_t> oids;
  oids.reserve(rows.size());
  for (int64_t r : rows) {
    COBRA_ASSIGN_OR_RETURN(int64_t oid, table->GetInt(r, 0));
    oids.push_back(oid);
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

Result<std::vector<int64_t>> ExecuteQuery(const WebspaceStore& store,
                                          const WebspaceQuery& query) {
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> current,
                         SelectObjects(store, query.source));
  for (const PathStep& step : query.path) {
    if (current.empty()) return current;
    COBRA_ASSIGN_OR_RETURN(
        std::vector<int64_t> reached,
        step.reverse ? store.TraverseReverse(step.association, current, step.role)
                     : store.Traverse(step.association, current, step.role));
    COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> allowed,
                           SelectObjects(store, step.target));
    std::set<int64_t> allowed_set(allowed.begin(), allowed.end());
    std::vector<int64_t> filtered;
    for (int64_t oid : reached) {
      if (allowed_set.count(oid)) filtered.push_back(oid);
    }
    current = std::move(filtered);
  }
  return current;
}

}  // namespace cobra::webspace
