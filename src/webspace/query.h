#pragma once

/// \file query.h
/// Concept-level conjunctive queries over a webspace: select objects of a
/// class by attribute predicates, then walk associations, filtering at each
/// step. This is the "more precise query formulation" of paper §2 — the
/// semantics that keyword search over the rendered HTML loses.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/ops.h"
#include "webspace/store.h"

namespace cobra::webspace {

/// Objects of one class satisfying a conjunction of attribute predicates.
struct ClassSelection {
  std::string class_name;
  std::vector<storage::Predicate> predicates;
};

/// One association hop. `reverse` walks to->from; `role` filters edge
/// payloads when >= 0.
struct PathStep {
  std::string association;
  bool reverse = false;
  int64_t role = -1;
  ClassSelection target;
};

/// source -[step]-> ... -[step]-> result. The query returns the oids of the
/// final selection (the source selection when the path is empty).
struct WebspaceQuery {
  ClassSelection source;
  std::vector<PathStep> path;
};

/// Oids (ascending) of the objects satisfying `selection`.
Result<std::vector<int64_t>> SelectObjects(const WebspaceStore& store,
                                           const ClassSelection& selection);

/// Executes the path query.
Result<std::vector<int64_t>> ExecuteQuery(const WebspaceStore& store,
                                          const WebspaceQuery& query);

}  // namespace cobra::webspace
