#include "text/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/strings.h"

namespace cobra::text {

namespace {

/// Sorts hits by score descending, doc id ascending (deterministic ties).
void SortHits(std::vector<SearchHit>* hits) {
  std::sort(hits->begin(), hits->end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_id < b.doc_id;
            });
}

}  // namespace

Status InvertedIndex::AddDocument(int64_t doc_id,
                                  const std::vector<std::string>& tokens) {
  if (finalized_) {
    return Status::FailedPrecondition("index is finalized");
  }
  if (doc_id < 0) {
    return Status::InvalidArgument("doc ids must be non-negative");
  }
  if (doc_norm_.count(doc_id)) {
    return Status::AlreadyExists(
        StringFormat("doc %lld already indexed", static_cast<long long>(doc_id)));
  }
  std::unordered_map<std::string, int64_t> tf;
  for (const std::string& token : tokens) tf[token]++;
  // Stash raw tf in `weight`; Finalize() converts to normalized weights.
  for (const auto& [term, count] : tf) {
    postings_[term].postings.push_back(
        Posting{doc_id, static_cast<double>(count)});
  }
  doc_norm_[doc_id] =
      tokens.empty() ? 1.0 : 1.0 / std::sqrt(static_cast<double>(tokens.size()));
  return Status::OK();
}

Status InvertedIndex::AddText(int64_t doc_id, const std::string& text) {
  return AddDocument(doc_id, Analyze(text));
}

Status InvertedIndex::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  const double num_docs = static_cast<double>(doc_norm_.size());
  for (auto& [term, info] : postings_) {
    info.idf =
        std::log(1.0 + num_docs / static_cast<double>(info.postings.size()));
    info.max_weight = 0.0;
    for (Posting& p : info.postings) {
      // Log-scaled tf, length-normalized.
      p.weight = (1.0 + std::log(p.weight)) * doc_norm_[p.doc_id];
      info.max_weight = std::max(info.max_weight, p.weight);
    }
    // Postings sorted by doc id: scans are cache-friendly and results
    // deterministic.
    std::sort(info.postings.begin(), info.postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.doc_id < b.doc_id;
              });
  }
  finalized_ = true;
  return Status::OK();
}

int64_t InvertedIndex::TotalPostings() const {
  int64_t n = 0;
  for (const auto& [term, info] : postings_) {
    n += static_cast<int64_t>(info.postings.size());
  }
  return n;
}

int64_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  auto it = postings_.find(term);
  return it == postings_.end()
             ? 0
             : static_cast<int64_t>(it->second.postings.size());
}

Result<std::vector<InvertedIndex::TermSnapshot>> InvertedIndex::ExportTerms()
    const {
  if (!finalized_) {
    return Status::FailedPrecondition("index is not finalized");
  }
  std::vector<TermSnapshot> out;
  out.reserve(postings_.size());
  for (const auto& [term, info] : postings_) {
    TermSnapshot snapshot;
    snapshot.term = term;
    snapshot.idf = info.idf;
    snapshot.postings.reserve(info.postings.size());
    for (const Posting& p : info.postings) {
      snapshot.postings.push_back(SearchHit{p.doc_id, p.weight});
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

Result<std::vector<std::string>> InvertedIndex::AnalyzeQuery(
    const std::string& query) const {
  if (!finalized_) {
    return Status::FailedPrecondition("index is not finalized");
  }
  std::vector<std::string> terms = Analyze(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no indexable terms");
  }
  return terms;
}

Result<std::vector<SearchHit>> InvertedIndex::SearchExhaustive(
    const std::string& query, size_t n, SearchStats* stats) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> terms, AnalyzeQuery(query));
  SearchStats local;
  std::unordered_map<int64_t, double> acc;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    ++local.terms_evaluated;
    for (const Posting& p : it->second.postings) {
      acc[p.doc_id] += it->second.idf * p.weight;
      ++local.postings_scanned;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc_id, score] : acc) hits.push_back(SearchHit{doc_id, score});
  SortHits(&hits);
  if (hits.size() > n) hits.resize(n);
  if (stats) *stats = local;
  return hits;
}

Result<std::vector<SearchHit>> InvertedIndex::SearchTopN(
    const std::string& query, size_t n, SearchStats* stats) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> terms, AnalyzeQuery(query));
  if (n == 0) return std::vector<SearchHit>{};
  SearchStats local;

  // Deduplicate query terms into (term info, query tf), then order by
  // maximum possible score contribution, highest first.
  struct QueryTerm {
    const TermInfo* info;
    double qtf;
    double max_contribution;
  };
  std::map<std::string, double> qtf;
  for (const std::string& term : terms) qtf[term] += 1.0;
  std::vector<QueryTerm> query_terms;
  for (const auto& [term, count] : qtf) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    query_terms.push_back(QueryTerm{
        &it->second, count, count * it->second.idf * it->second.max_weight});
  }
  std::sort(query_terms.begin(), query_terms.end(),
            [](const QueryTerm& a, const QueryTerm& b) {
              return a.max_contribution > b.max_contribution;
            });

  std::unordered_map<int64_t, double> acc;
  bool restricted = false;  // true once new docs can no longer reach top N
  for (size_t i = 0; i < query_terms.size(); ++i) {
    const QueryTerm& qt = query_terms[i];
    ++local.terms_evaluated;
    for (const Posting& p : qt.info->postings) {
      if (restricted) {
        auto it = acc.find(p.doc_id);
        if (it == acc.end()) continue;  // semijoin against candidate set
        it->second += qt.qtf * qt.info->idf * p.weight;
      } else {
        acc[p.doc_id] += qt.qtf * qt.info->idf * p.weight;
      }
      ++local.postings_scanned;
    }
    if (!restricted && acc.size() >= n) {
      // Maximum score any document outside the candidate set could still
      // collect from the remaining terms.
      double remaining_max = 0.0;
      for (size_t j = i + 1; j < query_terms.size(); ++j) {
        remaining_max += query_terms[j].max_contribution;
      }
      // N-th best current partial score.
      std::vector<double> scores;
      scores.reserve(acc.size());
      for (const auto& [doc, score] : acc) scores.push_back(score);
      std::nth_element(scores.begin(), scores.begin() + (n - 1), scores.end(),
                       std::greater<double>());
      double nth = scores[n - 1];
      if (nth >= remaining_max) {
        // Candidates keep accumulating (their final scores must be exact),
        // but no new document can enter the top N anymore.
        restricted = true;
        local.early_terminated = true;
      }
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc_id, score] : acc) hits.push_back(SearchHit{doc_id, score});
  SortHits(&hits);
  if (hits.size() > n) hits.resize(n);
  if (stats) *stats = local;
  return hits;
}

}  // namespace cobra::text
