#include "text/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/daat.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace cobra::text {

namespace {

/// Sorts hits by score descending, doc id ascending (deterministic ties).
void SortHits(std::vector<SearchHit>* hits) {
  std::sort(hits->begin(), hits->end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc_id < b.doc_id;
            });
}

}  // namespace

InvertedIndex::InvertedIndex(const InvertedIndex& other)
    : postings_(other.postings_),
      doc_norm_(other.doc_norm_),
      finalized_(other.finalized_) {
  // Re-point spans that referenced the source's own storage; view spans
  // (zero-copy restores) keep referencing the external mapped memory.
  for (auto& [term, info] : postings_) {
    const TermInfo& src = other.postings_.at(term);
    if (src.postings.data() == src.postings_store.data()) {
      info.postings = {info.postings_store.data(), info.postings_store.size()};
    }
    if (src.blocks.data() == src.blocks_store.data()) {
      info.blocks = {info.blocks_store.data(), info.blocks_store.size()};
    }
  }
}

InvertedIndex& InvertedIndex::operator=(const InvertedIndex& other) {
  if (this != &other) *this = InvertedIndex(other);
  return *this;
}

Status InvertedIndex::AddDocument(int64_t doc_id,
                                  const std::vector<std::string>& tokens) {
  if (finalized_) {
    return Status::FailedPrecondition("index is finalized");
  }
  if (doc_id < 0) {
    return Status::InvalidArgument("doc ids must be non-negative");
  }
  if (doc_norm_.count(doc_id)) {
    return Status::AlreadyExists(
        StringFormat("doc %lld already indexed", static_cast<long long>(doc_id)));
  }
  std::unordered_map<std::string, int64_t> tf;
  for (const std::string& token : tokens) tf[token]++;
  // Stash raw tf in `weight`; Finalize() converts to normalized weights.
  for (const auto& [term, count] : tf) {
    postings_[term].postings_store.push_back(
        Posting{doc_id, static_cast<double>(count)});
  }
  doc_norm_[doc_id] =
      tokens.empty() ? 1.0 : 1.0 / std::sqrt(static_cast<double>(tokens.size()));
  return Status::OK();
}

Status InvertedIndex::AddText(int64_t doc_id, const std::string& text) {
  return AddDocument(doc_id, Analyze(text));
}

Status InvertedIndex::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  const double num_docs = static_cast<double>(doc_norm_.size());
  for (auto& [term, info] : postings_) {
    std::vector<Posting>& postings = info.postings_store;
    info.idf = std::log(1.0 + num_docs / static_cast<double>(postings.size()));
    info.max_weight = 0.0;
    for (Posting& p : postings) {
      // Log-scaled tf, length-normalized.
      p.weight = (1.0 + std::log(p.weight)) * doc_norm_[p.doc_id];
      info.max_weight = std::max(info.max_weight, p.weight);
    }
    // Postings sorted by doc id: scans are cache-friendly and results
    // deterministic.
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.doc_id < b.doc_id;
              });
    // Skip blocks over the sorted list: last doc id + max weight per block
    // of kSkipBlockSize postings, for the DAAT block-max evaluator.
    info.blocks_store.clear();
    info.blocks_store.reserve((postings.size() + kSkipBlockSize - 1) /
                              kSkipBlockSize);
    for (size_t i = 0; i < postings.size(); i += kSkipBlockSize) {
      size_t end = std::min(i + kSkipBlockSize, postings.size());
      BlockMeta block;
      block.last_doc = postings[end - 1].doc_id;
      for (size_t j = i; j < end; ++j) {
        block.max_weight = std::max(block.max_weight, postings[j].weight);
      }
      info.blocks_store.push_back(block);
    }
    info.postings = {postings.data(), postings.size()};
    info.blocks = {info.blocks_store.data(), info.blocks_store.size()};
  }
  finalized_ = true;
  return Status::OK();
}

int64_t InvertedIndex::TotalPostings() const {
  int64_t n = 0;
  for (const auto& [term, info] : postings_) {
    n += static_cast<int64_t>(finalized_ ? info.postings.size()
                                         : info.postings_store.size());
  }
  return n;
}

int64_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  auto it = postings_.find(term);
  if (it == postings_.end()) return 0;
  const TermInfo& info = it->second;
  return static_cast<int64_t>(finalized_ ? info.postings.size()
                                         : info.postings_store.size());
}

Result<std::vector<InvertedIndex::TermSnapshot>> InvertedIndex::ExportTerms()
    const {
  if (!finalized_) {
    return Status::FailedPrecondition("index is not finalized");
  }
  std::vector<TermSnapshot> out;
  out.reserve(postings_.size());
  for (const auto& [term, info] : postings_) {
    TermSnapshot snapshot;
    snapshot.term = term;
    snapshot.idf = info.idf;
    snapshot.postings.reserve(info.postings.size());
    for (const Posting& p : info.postings) {
      snapshot.postings.push_back(SearchHit{p.doc_id, p.weight});
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

Result<std::vector<InvertedIndex::TermRange>> InvertedIndex::TermRanges()
    const {
  if (!finalized_) {
    return Status::FailedPrecondition("index is not finalized");
  }
  std::vector<TermRange> out;
  out.reserve(postings_.size());
  for (const auto& [term, info] : postings_) {
    TermRange range;
    range.term = &term;
    range.idf = info.idf;
    range.max_weight = info.max_weight;
    range.postings = info.postings;
    range.blocks = info.blocks;
    out.push_back(range);
  }
  return out;
}

Result<InvertedIndex> InvertedIndex::FromTerms(
    std::vector<RestoredTerm> terms,
    std::vector<std::pair<int64_t, double>> doc_norms, bool copy) {
  InvertedIndex index;
  for (auto& [doc_id, norm] : doc_norms) {
    if (!index.doc_norm_.emplace(doc_id, norm).second) {
      return Status::InvalidArgument(
          StringFormat("duplicate doc norm for doc %lld",
                       static_cast<long long>(doc_id)));
    }
  }
  for (RestoredTerm& t : terms) {
    auto [it, inserted] = index.postings_.try_emplace(std::move(t.term));
    if (!inserted) {
      return Status::InvalidArgument("duplicate term in restored index");
    }
    TermInfo& info = it->second;
    info.idf = t.idf;
    info.max_weight = t.max_weight;
    const size_t expect_blocks =
        (t.postings.size() + kSkipBlockSize - 1) / kSkipBlockSize;
    if (t.blocks.size() != expect_blocks) {
      return Status::InvalidArgument(
          StringFormat("term block count mismatch: %zu postings want %zu "
                       "blocks, got %zu",
                       t.postings.size(), expect_blocks, t.blocks.size()));
    }
    if (copy) {
      info.postings_store.assign(t.postings.begin(), t.postings.end());
      info.blocks_store.assign(t.blocks.begin(), t.blocks.end());
      info.postings = {info.postings_store.data(), info.postings_store.size()};
      info.blocks = {info.blocks_store.data(), info.blocks_store.size()};
    } else {
      info.postings = t.postings;
      info.blocks = t.blocks;
    }
  }
  index.finalized_ = true;
  return index;
}

Result<std::vector<std::string>> InvertedIndex::AnalyzeQuery(
    const std::string& query) const {
  if (!finalized_) {
    return Status::FailedPrecondition("index is not finalized");
  }
  std::vector<std::string> terms = Analyze(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no indexable terms");
  }
  return terms;
}

std::vector<InvertedIndex::QueryTerm> InvertedIndex::CollectQueryTerms(
    const std::vector<std::string>& terms) const {
  std::vector<QueryTerm> query_terms;
  std::unordered_map<const TermInfo*, size_t> seen;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const TermInfo* info = &it->second;
    auto [slot, inserted] = seen.emplace(info, query_terms.size());
    if (inserted) {
      query_terms.push_back(QueryTerm{info, 1.0, 0.0});
    } else {
      query_terms[slot->second].qtf += 1.0;
    }
  }
  for (QueryTerm& qt : query_terms) {
    qt.max_contribution = qt.qtf * qt.info->idf * qt.info->max_weight;
  }
  return query_terms;
}

Result<std::vector<SearchHit>> InvertedIndex::SearchExhaustive(
    const std::string& query, size_t n, SearchStats* stats) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> terms, AnalyzeQuery(query));
  SearchStats local;
  std::unordered_map<int64_t, double> acc;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    ++local.terms_evaluated;
    for (const Posting& p : it->second.postings) {
      acc[p.doc_id] += it->second.idf * p.weight;
      ++local.postings_scanned;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc_id, score] : acc) hits.push_back(SearchHit{doc_id, score});
  SortHits(&hits);
  if (hits.size() > n) hits.resize(n);
  if (stats) *stats = local;
  return hits;
}

Result<std::vector<SearchHit>> InvertedIndex::SearchTopN(
    const std::string& query, size_t n, SearchStats* stats) const {
  return SearchTopNImpl(query, n, /*accept=*/nullptr, stats);
}

Result<std::vector<SearchHit>> InvertedIndex::SearchTopNFiltered(
    const std::string& query, size_t n, const std::vector<int64_t>& accept_docs,
    SearchStats* stats) const {
  return SearchTopNImpl(query, n, &accept_docs, stats);
}

Result<std::vector<SearchHit>> InvertedIndex::SearchTopNImpl(
    const std::string& query, size_t n, const std::vector<int64_t>* accept,
    SearchStats* stats) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> terms, AnalyzeQuery(query));
  if (n == 0) return std::vector<SearchHit>{};
  SearchStats local;
  std::vector<QueryTerm> query_terms = CollectQueryTerms(terms);
  local.terms_evaluated = static_cast<int64_t>(query_terms.size());

  /// DAAT cursor over one term's sorted postings vector, skipping via the
  /// finalized BlockMeta table. See daat.h for the cursor contract.
  struct VectorTermCursor {
    const Posting* postings;
    size_t size;
    const BlockMeta* block_meta;
    size_t num_blocks;
    double factor_;
    double max_contribution_;
    size_t ordinal_;
    size_t i = 0;
    int64_t scanned = 0;
    int64_t skipped_blocks = 0;

    double factor() const { return factor_; }
    double max_contribution() const { return max_contribution_; }
    size_t ordinal() const { return ordinal_; }
    bool valid() const { return i < size; }
    int64_t doc() const { return postings[i].doc_id; }
    double weight() const { return postings[i].weight; }
    void Advance() {
      ++i;
      if (i < size) ++scanned;
    }
    bool SeekBlock(int64_t d) {
      if (i >= size) return false;
      if (postings[i].doc_id >= d) return true;  // bound block = current
      size_t b = i / kSkipBlockSize;
      size_t target = b;
      while (target < num_blocks && block_meta[target].last_doc < d) ++target;
      if (target >= num_blocks) {
        i = size;
        return false;
      }
      if (target != b) {
        skipped_blocks += static_cast<int64_t>(target - b);
        i = target * kSkipBlockSize;
        ++scanned;  // landing posting will be examined
      }
      return true;
    }
    double block_bound() const { return block_meta[i / kSkipBlockSize].max_weight; }
    bool AdvanceTo(int64_t d) {
      if (!SeekBlock(d)) return false;
      while (i < size && postings[i].doc_id < d) {
        ++i;
        if (i < size) ++scanned;
      }
      return i < size;
    }
    int64_t postings_scanned() const { return scanned; }
    int64_t blocks_skipped() const { return skipped_blocks; }
  };

  std::vector<VectorTermCursor> cursors;
  cursors.reserve(query_terms.size());
  for (size_t t = 0; t < query_terms.size(); ++t) {
    const QueryTerm& qt = query_terms[t];
    VectorTermCursor cursor;
    cursor.postings = qt.info->postings.data();
    cursor.size = qt.info->postings.size();
    cursor.block_meta = qt.info->blocks.data();
    cursor.num_blocks = qt.info->blocks.size();
    cursor.factor_ = qt.qtf * qt.info->idf;
    cursor.max_contribution_ = qt.max_contribution;
    cursor.ordinal_ = t;
    cursor.scanned = cursor.size > 0 ? 1 : 0;  // first posting is examined
    cursors.push_back(cursor);
  }
  std::vector<SearchHit> hits =
      internal::DaatMaxScoreTopN(&cursors, n, &local, accept);
  if (stats) *stats = local;
  return hits;
}

Result<std::vector<SearchHit>> InvertedIndex::SearchTopNTaat(
    const std::string& query, size_t n, SearchStats* stats) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<std::string> terms, AnalyzeQuery(query));
  if (n == 0) return std::vector<SearchHit>{};
  SearchStats local;

  std::vector<QueryTerm> query_terms = CollectQueryTerms(terms);
  std::sort(query_terms.begin(), query_terms.end(),
            [](const QueryTerm& a, const QueryTerm& b) {
              return a.max_contribution > b.max_contribution;
            });
  // Suffix sums of max contributions, computed once: suffix[i] is the most
  // the terms after i can add to any document (the old code recomputed
  // this sum inside the loop, O(T^2) over the query terms).
  std::vector<double> remaining(query_terms.size() + 1, 0.0);
  for (size_t i = query_terms.size(); i-- > 0;) {
    remaining[i] = remaining[i + 1] + query_terms[i].max_contribution;
  }

  std::unordered_map<int64_t, double> acc;
  bool restricted = false;  // true once new docs can no longer reach top N
  for (size_t i = 0; i < query_terms.size(); ++i) {
    const QueryTerm& qt = query_terms[i];
    ++local.terms_evaluated;
    for (const Posting& p : qt.info->postings) {
      if (restricted) {
        auto it = acc.find(p.doc_id);
        if (it == acc.end()) continue;  // semijoin against candidate set
        it->second += qt.qtf * qt.info->idf * p.weight;
      } else {
        acc[p.doc_id] += qt.qtf * qt.info->idf * p.weight;
      }
      ++local.postings_scanned;
    }
    if (!restricted && acc.size() >= n) {
      // N-th best current partial score.
      std::vector<double> scores;
      scores.reserve(acc.size());
      for (const auto& [doc, score] : acc) scores.push_back(score);
      std::nth_element(scores.begin(), scores.begin() + (n - 1), scores.end(),
                       std::greater<double>());
      double nth = scores[n - 1];
      if (nth >= remaining[i + 1]) {
        // Candidates keep accumulating (their final scores must be exact),
        // but no new document can enter the top N anymore.
        restricted = true;
        local.early_terminated = true;
      }
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc_id, score] : acc) hits.push_back(SearchHit{doc_id, score});
  SortHits(&hits);
  if (hits.size() > n) hits.resize(n);
  if (stats) *stats = local;
  return hits;
}

}  // namespace cobra::text
