#include "text/corpus.h"

#include <algorithm>

#include "util/strings.h"

namespace cobra::text {

std::string VocabularyWord(size_t rank) {
  // Bijective base-k numeration over CV syllables: every rank maps to a
  // unique syllable string and no stemming collision can merge two ranks
  // (the stemmer only strips English suffixes; a trailing "zu" guard
  // syllable keeps generated words outside its patterns).
  static const char* kSyllables[] = {
      "ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu",
      "na", "pe", "qi", "ro", "su", "ta", "ve", "wi", "xo", "zu"};
  constexpr size_t kBase = 20;
  std::string word;
  size_t n = rank;
  while (n > 0) {
    size_t digit = (n - 1) % kBase;
    word = std::string(kSyllables[digit]) + word;
    n = (n - 1) / kBase;
  }
  return word + "zu";
}

Result<SyntheticCorpus> SyntheticCorpus::Generate(const CorpusConfig& config) {
  if (config.num_docs == 0 || config.vocabulary_size == 0) {
    return Status::InvalidArgument("corpus dimensions must be positive");
  }
  if (config.min_words > config.max_words || config.min_words == 0) {
    return Status::InvalidArgument("invalid document length range");
  }
  SyntheticCorpus corpus;
  corpus.config_ = config;
  Rng rng(config.seed);
  ZipfSampler zipf(config.vocabulary_size, config.zipf_s);
  corpus.documents_.reserve(config.num_docs);
  for (size_t d = 0; d < config.num_docs; ++d) {
    size_t len = static_cast<size_t>(rng.NextInt(
        static_cast<int64_t>(config.min_words),
        static_cast<int64_t>(config.max_words)));
    std::string doc;
    for (size_t w = 0; w < len; ++w) {
      if (w) doc += ' ';
      doc += VocabularyWord(zipf.Sample(&rng));
    }
    corpus.documents_.push_back(std::move(doc));
  }
  return corpus;
}

std::string SyntheticCorpus::MakeQuery(int num_terms, uint64_t salt) const {
  // Mid-frequency band: ranks in [vocab/50, vocab/5].
  const size_t lo = std::max<size_t>(1, config_.vocabulary_size / 50);
  const size_t hi = std::max<size_t>(lo + 1, config_.vocabulary_size / 5);
  std::string query;
  for (int t = 0; t < num_terms; ++t) {
    size_t rank = lo + MixHash(salt ^ static_cast<uint64_t>(t)) % (hi - lo);
    if (t) query += ' ';
    query += VocabularyWord(rank);
  }
  return query;
}

}  // namespace cobra::text
