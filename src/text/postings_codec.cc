#include "text/postings_codec.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace cobra::text {

namespace {

constexpr double kWeightScale = 1024.0;

void PutVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool GetVarint(const uint8_t* in, size_t size, size_t* pos, uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < size && shift <= 63) {
    uint8_t byte = in[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      *value = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

Result<CompressedPostings> CompressedPostings::Encode(
    const std::vector<DecodedPosting>& postings) {
  CompressedPostings out;
  int64_t last = -1;
  for (size_t i = 0; i < postings.size(); ++i) {
    const DecodedPosting& p = postings[i];
    if (p.doc_id <= last) {
      return Status::InvalidArgument(
          "postings must have strictly increasing doc ids");
    }
    if (p.weight < 0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
    if (i % kBlockSize == 0) {
      SkipBlock block;
      block.byte_offset = out.bytes_.size();
      block.prev_doc = last;
      out.blocks_.push_back(block);
    }
    uint64_t delta = static_cast<uint64_t>(p.doc_id - last);
    PutVarint(delta, &out.bytes_);
    uint64_t quantized =
        static_cast<uint64_t>(std::llround(p.weight * kWeightScale));
    PutVarint(quantized, &out.bytes_);
    // Block metadata tracks the *decoded* weight so cursor-side bounds are
    // exact for what the cursor will actually yield.
    double decoded = static_cast<double>(quantized) / kWeightScale;
    SkipBlock& block = out.blocks_.back();
    block.last_doc = p.doc_id;
    block.max_weight = std::max(block.max_weight, decoded);
    out.max_weight_ = std::max(out.max_weight_, decoded);
    last = p.doc_id;
  }
  out.count_ = postings.size();
  return out;
}

CompressedPostings CompressedPostings::FromRaw(std::vector<uint8_t> bytes,
                                               std::vector<SkipBlock> blocks,
                                               size_t count,
                                               double max_weight) {
  CompressedPostings out;
  out.bytes_ = std::move(bytes);
  out.blocks_ = std::move(blocks);
  out.count_ = count;
  out.max_weight_ = max_weight;
  return out;
}

CompressedPostings CompressedPostings::FromRawView(const uint8_t* data,
                                                   size_t size,
                                                   std::vector<SkipBlock> blocks,
                                                   size_t count,
                                                   double max_weight) {
  CompressedPostings out;
  out.view_data_ = data;
  out.view_size_ = size;
  out.blocks_ = std::move(blocks);
  out.count_ = count;
  out.max_weight_ = max_weight;
  return out;
}

std::vector<DecodedPosting> CompressedPostings::Decode() const {
  std::vector<DecodedPosting> out;
  out.reserve(count_);
  Cursor cursor(*this);
  DecodedPosting posting;
  while (cursor.Next(&posting)) out.push_back(posting);
  return out;
}

void CompressedPostings::Cursor::MarkCorrupt() {
  corrupt_ = true;
  index_ = postings_->count_;  // exhaust: every later call returns false
}

bool CompressedPostings::Cursor::Next(DecodedPosting* out) {
  // Mirrors the encoder's `last = -1` origin so doc id 0 round-trips.
  if (index_ >= postings_->count_) return false;
  uint64_t delta, weight;
  if (!GetVarint(postings_->data(), postings_->SizeBytes(), &pos_, &delta) ||
      !GetVarint(postings_->data(), postings_->SizeBytes(), &pos_, &weight)) {
    MarkCorrupt();
    return false;
  }
  // The encoder writes strictly increasing doc ids, so every delta is >= 1
  // (the first posting's delta is doc_id - (-1) >= 1). A zero delta, or
  // one that would push the doc id past int64 range, can only come from
  // mutated bytes.
  uint64_t max_delta =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max() -
                            (last_doc_ + 1)) +
      1;
  if (delta == 0 || delta > max_delta) {
    MarkCorrupt();
    return false;
  }
  last_doc_ += static_cast<int64_t>(delta);
  out->doc_id = last_doc_;
  out->weight = static_cast<double>(weight) / kWeightScale;
  ++index_;
  ++decoded_;
  return true;
}

bool CompressedPostings::Cursor::SeekBlock(int64_t doc_id) {
  if (corrupt_ || index_ >= postings_->count_) return false;
  size_t b = index_ / kBlockSize;
  const std::vector<SkipBlock>& blocks = postings_->blocks_;
  size_t target = b;
  while (target < blocks.size() && blocks[target].last_doc < doc_id) ++target;
  if (target >= blocks.size()) {
    index_ = postings_->count_;  // exhausted; bytes untouched, still ok()
    return false;
  }
  if (target != b) {
    blocks_skipped_ += static_cast<int64_t>(target - b);
    pos_ = blocks[target].byte_offset;
    last_doc_ = blocks[target].prev_doc;
    index_ = target * kBlockSize;
  }
  return true;
}

bool CompressedPostings::Cursor::SkipTo(int64_t doc_id, DecodedPosting* out) {
  if (!SeekBlock(doc_id)) return false;
  while (Next(out)) {
    if (out->doc_id >= doc_id) return true;
  }
  return false;
}

double CompressedPostings::Cursor::block_max() const {
  size_t b = index_ / kBlockSize;
  return b < postings_->blocks_.size() ? postings_->blocks_[b].max_weight : 0.0;
}

}  // namespace cobra::text
