#include "text/postings_codec.h"

#include <cmath>

#include "util/strings.h"

namespace cobra::text {

namespace {

constexpr double kWeightScale = 1024.0;

void PutVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    uint8_t byte = in[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      *value = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

Result<CompressedPostings> CompressedPostings::Encode(
    const std::vector<DecodedPosting>& postings) {
  CompressedPostings out;
  int64_t last = -1;
  for (const DecodedPosting& p : postings) {
    if (p.doc_id <= last) {
      return Status::InvalidArgument(
          "postings must have strictly increasing doc ids");
    }
    if (p.weight < 0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
    uint64_t delta = static_cast<uint64_t>(p.doc_id - last);
    PutVarint(delta, &out.bytes_);
    PutVarint(static_cast<uint64_t>(std::llround(p.weight * kWeightScale)),
              &out.bytes_);
    last = p.doc_id;
  }
  out.count_ = postings.size();
  return out;
}

std::vector<DecodedPosting> CompressedPostings::Decode() const {
  std::vector<DecodedPosting> out;
  out.reserve(count_);
  Cursor cursor(*this);
  DecodedPosting posting;
  while (cursor.Next(&posting)) out.push_back(posting);
  return out;
}

bool CompressedPostings::Cursor::Next(DecodedPosting* out) {
  // Mirrors the encoder's `last = -1` origin so doc id 0 round-trips.
  if (remaining_ == 0) return false;
  uint64_t delta, weight;
  if (!GetVarint(*bytes_, &pos_, &delta) || !GetVarint(*bytes_, &pos_, &weight)) {
    remaining_ = 0;
    return false;
  }
  last_doc_ += static_cast<int64_t>(delta);
  out->doc_id = last_doc_;
  out->weight = static_cast<double>(weight) / kWeightScale;
  --remaining_;
  return true;
}

}  // namespace cobra::text
