#pragma once

/// \file daat.h
/// Document-at-a-time maxscore/block-max top-N evaluation, shared between
/// the uncompressed (`InvertedIndex`) and compressed
/// (`CompressedInvertedIndex`) indexes. The evaluator is exact by
/// construction: a document is dropped only when a true upper bound on its
/// final score proves it cannot displace the current heap floor — ties
/// included, since the floor comparison resolves equal scores by doc id
/// exactly like the exhaustive evaluator's sort.
///
/// Term cursors supply the per-index mechanics. A `TermCursor` must
/// provide:
///   double factor()            query-tf * idf multiplier
///   double max_contribution()  factor() * max weight over the whole list
///   bool valid()               cursor points at a posting
///   int64_t doc()              current doc id (requires valid())
///   double weight()            current weight  (requires valid())
///   void Advance()             step to the next posting
///   bool SeekBlock(int64_t d)  position block-wise so block_bound() is an
///                              upper bound for this term's weight of any
///                              posting >= d; false if no posting >= d
///   double block_bound()       said bound (requires SeekBlock() == true)
///   bool AdvanceTo(int64_t d)  first posting with doc id >= d; false when
///                              exhausted
///   size_t ordinal()           term's position in the analyzed query (a
///                              deterministic sort tie-break)
///   int64_t postings_scanned() postings examined so far
///   int64_t blocks_skipped()   whole blocks jumped without examination

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "text/inverted_index.h"

namespace cobra::text::internal {

/// One fully-scored top-N candidate.
struct TopEntry {
  double score = 0.0;
  int64_t doc_id = 0;
};

/// The result order: higher score first, lower doc id on ties. `Better`
/// decides whether a candidate displaces a heap entry under that order.
inline bool Better(double score, int64_t doc_id, const TopEntry& entry) {
  if (score != entry.score) return score > entry.score;
  return doc_id < entry.doc_id;
}

/// Heap comparator putting the *worst* entry on top (std::push_heap keeps
/// the comparator-maximal element at the front; under "is better than",
/// the front is the entry nothing beats downward — the floor).
inline bool HeapWorstOnTop(const TopEntry& a, const TopEntry& b) {
  return Better(a.score, a.doc_id, b);
}

/// Runs maxscore/block-max DAAT over the given term cursors. `terms` is
/// reordered (descending max contribution). Fills `stats` counters
/// (postings_scanned, blocks_skipped, early_terminated) when non-null;
/// terms_evaluated is the caller's concern. Returns the exact top `n` of
/// the exhaustive union, ordered (score desc, doc id asc).
///
/// `accept`, when non-null, is a sorted ascending deduplicated doc-id list:
/// only those documents are scored, and the cursors jump over non-accepted
/// gaps block-wise (the cross-modal accept filter of DESIGN.md §4g — the
/// result is the exact top `n` of the accepted subset).
template <typename TermCursor>
std::vector<SearchHit> DaatMaxScoreTopN(std::vector<TermCursor>* terms_in,
                                        size_t n, SearchStats* stats,
                                        const std::vector<int64_t>* accept =
                                            nullptr) {
  std::vector<TermCursor>& terms = *terms_in;
  std::vector<SearchHit> hits;
  const auto finish = [&](bool pruned, int64_t block_max_skips,
                          std::vector<TopEntry>* heap) {
    if (stats) {
      for (const TermCursor& t : terms) {
        stats->postings_scanned += t.postings_scanned();
        stats->blocks_skipped += t.blocks_skipped();
      }
      stats->blocks_skipped += block_max_skips;
      stats->early_terminated = pruned;
    }
    if (!heap) return;
    std::sort(heap->begin(), heap->end(),
              [](const TopEntry& a, const TopEntry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc_id < b.doc_id;
              });
    hits.reserve(heap->size());
    for (const TopEntry& e : *heap) hits.push_back(SearchHit{e.doc_id, e.score});
  };
  if (n == 0 || terms.empty()) {
    finish(false, 0, nullptr);
    return hits;
  }

  // Descending by max contribution: the non-essential set is a suffix that
  // grows from the tail as the heap floor rises.
  std::sort(terms.begin(), terms.end(),
            [](const TermCursor& a, const TermCursor& b) {
              if (a.max_contribution() != b.max_contribution()) {
                return a.max_contribution() > b.max_contribution();
              }
              return a.ordinal() < b.ordinal();
            });
  const size_t num_terms = terms.size();
  // suffix_ub[j] = sum of max contributions of terms [j, T): the most the
  // tail starting at j can add to any document's score.
  std::vector<double> suffix_ub(num_terms + 1, 0.0);
  for (size_t j = num_terms; j-- > 0;) {
    suffix_ub[j] = suffix_ub[j + 1] + terms[j].max_contribution();
  }

  std::vector<TopEntry> heap;
  heap.reserve(n);
  const auto heap_full = [&] { return heap.size() >= n; };
  // True when a candidate with final-score upper bound `ub` provably
  // cannot displace the heap floor. Exact on ties: a bound equal to the
  // floor still enters iff the candidate's doc id is lower.
  const auto cannot_enter = [&](double ub, int64_t doc_id) {
    if (!heap_full()) return false;
    const TopEntry& floor = heap.front();
    if (ub != floor.score) return ub < floor.score;
    return doc_id > floor.doc_id;
  };

  size_t essential = num_terms;  // terms [0, essential) are essential
  int64_t block_max_skips = 0;
  bool pruned = false;
  size_t accept_pos = 0;  // cursor into `accept` (both advance monotonically)

  while (true) {
    // Terms [essential, T) become non-essential once even their combined
    // max contributions cannot displace the floor (strict: an exact tie
    // could still win the doc-id tie-break, so those terms stay).
    while (essential > 0 && heap_full() &&
           suffix_ub[essential - 1] < heap.front().score) {
      --essential;
      pruned = true;
    }
    if (essential == 0) break;

    // Candidate: minimum current doc across the essential cursors. Every
    // document that can still enter the heap appears in at least one
    // essential list, so this enumeration is complete.
    int64_t d = std::numeric_limits<int64_t>::max();
    for (size_t j = 0; j < essential; ++j) {
      if (terms[j].valid() && terms[j].doc() < d) d = terms[j].doc();
    }
    if (d == std::numeric_limits<int64_t>::max()) break;

    if (accept != nullptr) {
      while (accept_pos < accept->size() && (*accept)[accept_pos] < d) {
        ++accept_pos;
      }
      // No accepted doc at or past d: nothing further can be scored.
      if (accept_pos == accept->size()) break;
      const int64_t next_accepted = (*accept)[accept_pos];
      if (next_accepted > d) {
        // d is filtered out; jump every essential cursor over the
        // non-accepted gap [d, next_accepted) in one block-wise seek.
        for (size_t j = 0; j < essential; ++j) {
          if (terms[j].valid() && terms[j].doc() < next_accepted) {
            terms[j].AdvanceTo(next_accepted);
          }
        }
        continue;
      }
    }

    double score = 0.0;
    for (size_t j = 0; j < essential; ++j) {
      if (terms[j].valid() && terms[j].doc() == d) {
        score += terms[j].factor() * terms[j].weight();
        terms[j].Advance();
      }
    }

    // Non-essential terms, largest contribution first, with early abandon:
    // stop as soon as the remaining upper bound cannot reach the floor.
    bool abandoned = false;
    for (size_t j = essential; j < num_terms; ++j) {
      if (cannot_enter(score + suffix_ub[j], d)) {
        abandoned = true;
        pruned = true;
        break;
      }
      if (!terms[j].valid() || !terms[j].SeekBlock(d)) continue;
      // Block-max refinement: bound term j by the max weight of the block
      // that would contain doc d, before decoding inside it.
      if (cannot_enter(
              score + terms[j].factor() * terms[j].block_bound() +
                  suffix_ub[j + 1],
              d)) {
        abandoned = true;
        pruned = true;
        ++block_max_skips;
        break;
      }
      if (terms[j].AdvanceTo(d) && terms[j].doc() == d) {
        score += terms[j].factor() * terms[j].weight();
      }
    }
    if (abandoned) continue;

    if (!heap_full()) {
      heap.push_back(TopEntry{score, d});
      std::push_heap(heap.begin(), heap.end(), HeapWorstOnTop);
    } else if (Better(score, d, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), HeapWorstOnTop);
      heap.back() = TopEntry{score, d};
      std::push_heap(heap.begin(), heap.end(), HeapWorstOnTop);
    }
  }

  finish(pruned, block_max_skips, &heap);
  return hits;
}

}  // namespace cobra::text::internal
