#pragma once

/// \file compressed_index.h
/// An immutable, compressed snapshot of an InvertedIndex: postings are
/// delta+varbyte encoded and decoded on the fly during evaluation. Trades
/// a little CPU per posting for a several-fold smaller memory footprint —
/// the main-memory DBMS trade-off of ref [1] (experiment E10). Top-N
/// queries (`SearchTopN`) run document-at-a-time over streaming cursors
/// and use the codec's skip blocks to answer without decoding full lists.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "text/inverted_index.h"
#include "text/postings_codec.h"
#include "util/status.h"

namespace cobra::text {

class CompressedInvertedIndex {
 public:
  /// Builds the compressed snapshot from a finalized index.
  static Result<CompressedInvertedIndex> FromIndex(const InvertedIndex& index);

  /// One term of a restored index (see FromParts).
  struct TermPart {
    std::string term;
    double idf = 0.0;
    CompressedPostings postings;
  };

  /// Reassembles an index from persisted parts. A segment reader builds
  /// the postings with CompressedPostings::FromRawView, so evaluation
  /// streams straight out of the mapped file without copying the varbyte
  /// bytes. Terms must be unique.
  static Result<CompressedInvertedIndex> FromParts(std::vector<TermPart> parts);

  /// Per-term visitation in term order, for serialization:
  /// fn(const std::string& term, double idf, const CompressedPostings&).
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    for (const auto& [term, entry] : terms_) fn(term, entry.idf, entry.postings);
  }

  int64_t num_terms() const { return static_cast<int64_t>(terms_.size()); }

  /// Total compressed postings bytes.
  size_t PostingsBytes() const;
  /// What the same postings occupy uncompressed (doc id + weight per entry).
  size_t UncompressedBytes() const;

  /// Exhaustive tf-idf evaluation with streaming decompression. Weights are
  /// quantized to 1/1024 fixed point, so scores match the uncompressed
  /// index to ~1e-3 and rankings agree except for near-exact ties.
  Result<std::vector<SearchHit>> Search(const std::string& query, size_t n,
                                        SearchStats* stats = nullptr) const;

  /// Top-N evaluation: document-at-a-time maxscore/block-max over
  /// streaming `CompressedPostings::Cursor`s — whole skip blocks are
  /// jumped via `SkipTo` without decoding. Returns exactly what Search
  /// (the compressed exhaustive baseline) returns truncated to n.
  Result<std::vector<SearchHit>> SearchTopN(const std::string& query, size_t n,
                                            SearchStats* stats = nullptr) const;

 private:
  struct TermEntry {
    double idf = 0.0;
    CompressedPostings postings;
  };
  std::map<std::string, TermEntry> terms_;
  size_t total_postings_ = 0;
};

}  // namespace cobra::text
