#pragma once

/// \file postings_codec.h
/// Compressed postings lists: delta-encoded doc ids (varbyte) plus
/// fixed-point tf weights, augmented with fixed-size *skip blocks* — per
/// block of `kBlockSize` postings the encoder records the byte offset, the
/// last doc id and the maximum weight. A cursor can then jump whole blocks
/// without decoding (`SkipTo`), and a block-max evaluator can prove that a
/// block cannot contribute a competitive score before touching its bytes.
/// Ref [1] runs IR inside a main-memory DBMS where postings size directly
/// bounds the collections that fit; E10 measures the size/latency trade-off
/// against the uncompressed index.

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cobra::text {

/// One decoded posting.
struct DecodedPosting {
  int64_t doc_id = 0;
  double weight = 0.0;
};

/// Compressed, immutable postings list.
///
/// Layout: per posting, varbyte(doc id delta) then varbyte(weight scaled to
/// 1/1024 fixed point). Doc ids must be strictly increasing. Every
/// `kBlockSize` postings form a skip block described by a `SkipBlock`
/// entry; the entries live uncompressed beside the byte stream (a few
/// dozen bytes per ~64 postings).
class CompressedPostings {
 public:
  /// Postings per skip block. Small enough that an in-block linear decode
  /// is cheap, large enough that the skip table stays tiny.
  static constexpr size_t kBlockSize = 64;

  /// Skip-table entry for one block of up to kBlockSize postings.
  struct SkipBlock {
    size_t byte_offset = 0;   ///< where the block's first varbyte starts
    int64_t prev_doc = -1;    ///< delta origin: last doc id before the block
    int64_t last_doc = 0;     ///< last doc id inside the block
    double max_weight = 0.0;  ///< max decoded (quantized) weight in block
  };

  /// Encodes postings (must be sorted by strictly increasing doc_id,
  /// weights non-negative).
  static Result<CompressedPostings> Encode(
      const std::vector<DecodedPosting>& postings);

  /// Reassembles a list from raw parts, e.g. bytes read back from storage.
  /// The bytes are deliberately NOT validated here — cursors fail fast on
  /// truncated or corrupt input instead (see Cursor::ok()).
  static CompressedPostings FromRaw(std::vector<uint8_t> bytes,
                                    std::vector<SkipBlock> blocks,
                                    size_t count, double max_weight);

  /// Zero-copy variant of FromRaw: views `size` bytes at `data` without
  /// owning them, so a segment reader can point cursors straight into a
  /// memory-mapped file. The viewed bytes must outlive the list and every
  /// copy of it (copies share the view). Skip blocks are tiny (one entry
  /// per kBlockSize postings) and are owned as usual.
  static CompressedPostings FromRawView(const uint8_t* data, size_t size,
                                        std::vector<SkipBlock> blocks,
                                        size_t count, double max_weight);

  /// The raw varbyte stream, valid for owned and viewed lists alike
  /// (serialization surface, paired with blocks()).
  const uint8_t* data() const {
    return view_data_ != nullptr ? view_data_ : bytes_.data();
  }

  size_t SizeBytes() const {
    return view_data_ != nullptr ? view_size_ : bytes_.size();
  }
  size_t count() const { return count_; }
  size_t num_blocks() const { return blocks_.size(); }
  const std::vector<SkipBlock>& blocks() const { return blocks_; }

  /// Maximum decoded weight over the whole list (0 for an empty list).
  double max_weight() const { return max_weight_; }

  /// Decodes the full list.
  std::vector<DecodedPosting> Decode() const;

  /// Streaming cursor over the compressed bytes (no materialization).
  ///
  /// The cursor fails fast on truncated or corrupt bytes: `Next`/`SkipTo`
  /// return false and `ok()` turns false; it never reads past the byte
  /// buffer and never yields a non-increasing doc id.
  class Cursor {
   public:
    explicit Cursor(const CompressedPostings& postings)
        : postings_(&postings) {}

    bool Next(DecodedPosting* out);

    /// Positions the cursor at the first block whose last doc id is
    /// >= doc_id, without decoding any posting. Returns false (and
    /// exhausts the cursor) when no such block exists. Never moves
    /// backwards.
    bool SeekBlock(int64_t doc_id);

    /// Decodes forward to the first posting with doc id >= doc_id, jumping
    /// whole blocks via the skip table. Returns false when the list has no
    /// such posting (or on corrupt bytes; check ok()).
    bool SkipTo(int64_t doc_id, DecodedPosting* out);

    /// False once truncated or corrupt bytes were detected. A cursor that
    /// ran off a valid list stays ok().
    bool ok() const { return !corrupt_; }

    /// Index of the block the cursor currently points into (meaningful
    /// while not exhausted).
    size_t block() const { return index_ / kBlockSize; }

    /// Number of postings consumed so far (the posting returned by the
    /// last successful Next/SkipTo has index `index() - 1`).
    size_t index() const { return index_; }

    /// Max weight of the current block (0 when exhausted).
    double block_max() const;

    /// Blocks jumped over without decoding any of their postings.
    int64_t blocks_skipped() const { return blocks_skipped_; }

    /// Postings actually decoded (Next calls that returned true).
    int64_t postings_decoded() const { return decoded_; }

   private:
    const CompressedPostings* postings_;
    size_t pos_ = 0;          ///< next byte to decode
    size_t index_ = 0;        ///< postings consumed so far
    int64_t last_doc_ = -1;   ///< matches the encoder's delta origin
    int64_t blocks_skipped_ = 0;
    int64_t decoded_ = 0;
    bool corrupt_ = false;

    void MarkCorrupt();
  };

 private:
  std::vector<uint8_t> bytes_;
  /// Non-null for a FromRawView list: bytes_ stays empty and the stream
  /// lives in external (mapped) memory instead.
  const uint8_t* view_data_ = nullptr;
  size_t view_size_ = 0;
  std::vector<SkipBlock> blocks_;
  size_t count_ = 0;
  double max_weight_ = 0.0;
};

}  // namespace cobra::text
