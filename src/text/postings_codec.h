#pragma once

/// \file postings_codec.h
/// Compressed postings lists: delta-encoded doc ids (varbyte) plus
/// fixed-point tf weights. Ref [1] runs IR inside a main-memory DBMS where
/// postings size directly bounds the collections that fit; E10 measures the
/// size/latency trade-off against the uncompressed index.

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cobra::text {

/// One decoded posting.
struct DecodedPosting {
  int64_t doc_id = 0;
  double weight = 0.0;
};

/// Compressed, immutable postings list.
///
/// Layout: per posting, varbyte(doc id delta) then varbyte(weight scaled to
/// 1/1024 fixed point). Doc ids must be strictly increasing.
class CompressedPostings {
 public:
  /// Encodes postings (must be sorted by strictly increasing doc_id,
  /// weights non-negative).
  static Result<CompressedPostings> Encode(
      const std::vector<DecodedPosting>& postings);

  size_t SizeBytes() const { return bytes_.size(); }
  size_t count() const { return count_; }

  /// Decodes the full list.
  std::vector<DecodedPosting> Decode() const;

  /// Streaming cursor over the compressed bytes (no materialization).
  class Cursor {
   public:
    explicit Cursor(const CompressedPostings& postings)
        : bytes_(&postings.bytes_), remaining_(postings.count_) {}

    bool Next(DecodedPosting* out);

   private:
    const std::vector<uint8_t>* bytes_;
    size_t pos_ = 0;
    size_t remaining_;
    int64_t last_doc_ = -1;  ///< matches the encoder's delta origin
  };

 private:
  std::vector<uint8_t> bytes_;
  size_t count_ = 0;
};

}  // namespace cobra::text
