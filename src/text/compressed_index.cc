#include "text/compressed_index.h"

#include <algorithm>
#include <unordered_map>

#include "text/daat.h"
#include "text/tokenizer.h"

namespace cobra::text {

Result<CompressedInvertedIndex> CompressedInvertedIndex::FromIndex(
    const InvertedIndex& index) {
  COBRA_ASSIGN_OR_RETURN(auto snapshots, index.ExportTerms());
  CompressedInvertedIndex out;
  for (auto& snapshot : snapshots) {
    std::vector<DecodedPosting> postings;
    postings.reserve(snapshot.postings.size());
    for (const SearchHit& hit : snapshot.postings) {
      postings.push_back(DecodedPosting{hit.doc_id, hit.score});
    }
    COBRA_ASSIGN_OR_RETURN(CompressedPostings compressed,
                           CompressedPostings::Encode(postings));
    out.total_postings_ += postings.size();
    out.terms_.emplace(std::move(snapshot.term),
                       TermEntry{snapshot.idf, std::move(compressed)});
  }
  return out;
}

Result<CompressedInvertedIndex> CompressedInvertedIndex::FromParts(
    std::vector<TermPart> parts) {
  CompressedInvertedIndex out;
  for (TermPart& part : parts) {
    out.total_postings_ += part.postings.count();
    auto [it, inserted] = out.terms_.emplace(
        std::move(part.term), TermEntry{part.idf, std::move(part.postings)});
    if (!inserted) {
      return Status::InvalidArgument("duplicate term in restored index");
    }
  }
  return out;
}

size_t CompressedInvertedIndex::PostingsBytes() const {
  size_t total = 0;
  for (const auto& [term, entry] : terms_) total += entry.postings.SizeBytes();
  return total;
}

size_t CompressedInvertedIndex::UncompressedBytes() const {
  return total_postings_ * (sizeof(int64_t) + sizeof(double));
}

Result<std::vector<SearchHit>> CompressedInvertedIndex::Search(
    const std::string& query, size_t n, SearchStats* stats) const {
  std::vector<std::string> terms = Analyze(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no indexable terms");
  }
  SearchStats local;
  std::unordered_map<int64_t, double> acc;
  for (const std::string& term : terms) {
    auto it = terms_.find(term);
    if (it == terms_.end()) continue;
    ++local.terms_evaluated;
    CompressedPostings::Cursor cursor(it->second.postings);
    DecodedPosting posting;
    while (cursor.Next(&posting)) {
      acc[posting.doc_id] += it->second.idf * posting.weight;
      ++local.postings_scanned;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc_id, score] : acc) hits.push_back(SearchHit{doc_id, score});
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > n) hits.resize(n);
  if (stats) *stats = local;
  return hits;
}

Result<std::vector<SearchHit>> CompressedInvertedIndex::SearchTopN(
    const std::string& query, size_t n, SearchStats* stats) const {
  std::vector<std::string> terms = Analyze(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no indexable terms");
  }
  SearchStats local;

  /// DAAT cursor over a streaming CompressedPostings::Cursor (see daat.h
  /// for the contract). Holds the last decoded posting; the underlying
  /// cursor position is one past it.
  struct StreamTermCursor {
    const CompressedPostings* postings;
    CompressedPostings::Cursor cursor;
    DecodedPosting cur;
    bool has_cur = false;
    size_t cur_block = 0;    ///< block of `cur`
    size_t bound_block = 0;  ///< block backing block_bound()
    double factor_ = 0.0;
    double max_contribution_ = 0.0;
    size_t ordinal_ = 0;

    explicit StreamTermCursor(const CompressedPostings& p)
        : postings(&p), cursor(p) {
      has_cur = cursor.Next(&cur);
      if (has_cur) cur_block = (cursor.index() - 1) / CompressedPostings::kBlockSize;
    }

    double factor() const { return factor_; }
    double max_contribution() const { return max_contribution_; }
    size_t ordinal() const { return ordinal_; }
    bool valid() const { return has_cur; }
    int64_t doc() const { return cur.doc_id; }
    double weight() const { return cur.weight; }
    void Advance() {
      has_cur = cursor.Next(&cur);
      if (has_cur) cur_block = (cursor.index() - 1) / CompressedPostings::kBlockSize;
    }
    bool SeekBlock(int64_t d) {
      if (!has_cur) return false;
      if (cur.doc_id >= d) {
        // The first posting >= d is `cur` itself; bound by its block.
        bound_block = cur_block;
        return true;
      }
      if (!cursor.SeekBlock(d)) {
        has_cur = false;
        return false;
      }
      bound_block = cursor.block();
      return true;
    }
    double block_bound() const {
      return postings->blocks()[bound_block].max_weight;
    }
    bool AdvanceTo(int64_t d) {
      if (!has_cur) return false;
      if (cur.doc_id >= d) return true;
      has_cur = cursor.SkipTo(d, &cur);
      if (has_cur) cur_block = (cursor.index() - 1) / CompressedPostings::kBlockSize;
      return has_cur;
    }
    int64_t postings_scanned() const { return cursor.postings_decoded(); }
    int64_t blocks_skipped() const { return cursor.blocks_skipped(); }
  };

  // Deduplicate analyzed terms into cursors (query tf folded into the
  // factor), ordered by first occurrence for a deterministic tie-break.
  std::vector<StreamTermCursor> cursors;
  std::unordered_map<const TermEntry*, size_t> seen;
  for (const std::string& term : terms) {
    auto it = terms_.find(term);
    if (it == terms_.end()) continue;
    const TermEntry* entry = &it->second;
    auto [slot, inserted] = seen.emplace(entry, cursors.size());
    if (inserted) {
      StreamTermCursor cursor(entry->postings);
      cursor.factor_ = entry->idf;
      cursor.ordinal_ = cursors.size();
      cursors.push_back(std::move(cursor));
    } else {
      cursors[slot->second].factor_ += entry->idf;  // qtf * idf
    }
  }
  for (StreamTermCursor& cursor : cursors) {
    cursor.max_contribution_ = cursor.factor_ * cursor.postings->max_weight();
  }
  local.terms_evaluated = static_cast<int64_t>(cursors.size());

  std::vector<SearchHit> hits = internal::DaatMaxScoreTopN(&cursors, n, &local);
  if (stats) *stats = local;
  return hits;
}

}  // namespace cobra::text
