#include "text/compressed_index.h"

#include <algorithm>
#include <unordered_map>

#include "text/tokenizer.h"

namespace cobra::text {

Result<CompressedInvertedIndex> CompressedInvertedIndex::FromIndex(
    const InvertedIndex& index) {
  COBRA_ASSIGN_OR_RETURN(auto snapshots, index.ExportTerms());
  CompressedInvertedIndex out;
  for (auto& snapshot : snapshots) {
    std::vector<DecodedPosting> postings;
    postings.reserve(snapshot.postings.size());
    for (const SearchHit& hit : snapshot.postings) {
      postings.push_back(DecodedPosting{hit.doc_id, hit.score});
    }
    COBRA_ASSIGN_OR_RETURN(CompressedPostings compressed,
                           CompressedPostings::Encode(postings));
    out.total_postings_ += postings.size();
    out.terms_.emplace(std::move(snapshot.term),
                       TermEntry{snapshot.idf, std::move(compressed)});
  }
  return out;
}

size_t CompressedInvertedIndex::PostingsBytes() const {
  size_t total = 0;
  for (const auto& [term, entry] : terms_) total += entry.postings.SizeBytes();
  return total;
}

size_t CompressedInvertedIndex::UncompressedBytes() const {
  return total_postings_ * (sizeof(int64_t) + sizeof(double));
}

Result<std::vector<SearchHit>> CompressedInvertedIndex::Search(
    const std::string& query, size_t n, SearchStats* stats) const {
  std::vector<std::string> terms = Analyze(query);
  if (terms.empty()) {
    return Status::InvalidArgument("query has no indexable terms");
  }
  SearchStats local;
  std::unordered_map<int64_t, double> acc;
  for (const std::string& term : terms) {
    auto it = terms_.find(term);
    if (it == terms_.end()) continue;
    ++local.terms_evaluated;
    CompressedPostings::Cursor cursor(it->second.postings);
    DecodedPosting posting;
    while (cursor.Next(&posting)) {
      acc[posting.doc_id] += it->second.idf * posting.weight;
      ++local.postings_scanned;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(acc.size());
  for (const auto& [doc_id, score] : acc) hits.push_back(SearchHit{doc_id, score});
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > n) hits.resize(n);
  if (stats) *stats = local;
  return hits;
}

}  // namespace cobra::text
