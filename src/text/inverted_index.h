#pragma once

/// \file inverted_index.h
/// In-memory inverted index with tf-idf ranking and the top-N query
/// optimization of ref [1] (Blok et al., "IR top-N optimization in a main
/// memory DBMS"). Two optimized evaluators exist:
///   * `SearchTopN` — document-at-a-time maxscore/block-max evaluation:
///     a min-heap holds the current top N, terms are partitioned into
///     essential/non-essential by suffix sums of their max contributions,
///     and per-term skip blocks (last doc id + max weight per block of
///     `kSkipBlockSize` postings) let the evaluator prove whole blocks
///     uncompetitive without touching them. Exact: identical results to
///     `SearchExhaustive`, ties included.
///   * `SearchTopNTaat` — the original term-at-a-time evaluator with the
///     candidate-set restriction, kept as the reference implementation the
///     DAAT path is validated (and benchmarked) against.
/// The exhaustive evaluator remains the baseline the paper compares
/// against.

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/span.h"
#include "util/status.h"

namespace cobra::text {

/// One ranked search result.
struct SearchHit {
  int64_t doc_id = 0;
  double score = 0.0;
};

/// Work counters used by the E6/E10 benchmarks to show *why* top-N wins.
struct SearchStats {
  int64_t terms_evaluated = 0;
  int64_t postings_scanned = 0;
  /// Skip blocks jumped without examining any posting (block-jump skips
  /// plus block-max proofs). Zero for evaluators without skip data.
  int64_t blocks_skipped = 0;
  bool early_terminated = false;
};

/// Document-frequency postings index over analyzed token streams.
///
/// Usage: AddDocument() repeatedly, Finalize() once, then Search*().
class InvertedIndex {
 public:
  InvertedIndex() = default;
  /// Copies re-point spans that referenced the source's owned storage;
  /// spans into external (mapped) memory are shared — see TermInfo.
  InvertedIndex(const InvertedIndex& other);
  InvertedIndex& operator=(const InvertedIndex& other);
  /// Moves keep spans valid: vector buffers are stable across moves.
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Postings per skip block in the finalized per-term block metadata.
  static constexpr size_t kSkipBlockSize = 64;

  /// One posting of a term. Trivially copyable with a fixed 16-byte layout:
  /// the segment storage persists postings as raw arrays of this struct and
  /// maps them back zero-copy (DESIGN.md §4h).
  struct Posting {
    int64_t doc_id;
    double weight;  ///< normalized tf weight; final score adds idf * weight
  };
  /// Skip metadata for one block of up to kSkipBlockSize postings. Same
  /// fixed-layout contract as Posting.
  struct BlockMeta {
    int64_t last_doc = 0;
    double max_weight = 0.0;
  };
  static_assert(std::is_trivially_copyable_v<Posting> &&
                    sizeof(Posting) == 16,
                "Posting is persisted as raw bytes");
  static_assert(std::is_trivially_copyable_v<BlockMeta> &&
                    sizeof(BlockMeta) == 16,
                "BlockMeta is persisted as raw bytes");

  /// Adds a document's analyzed tokens. Doc ids must be unique and
  /// non-negative. Fails after Finalize().
  Status AddDocument(int64_t doc_id, const std::vector<std::string>& tokens);

  /// Convenience: analyzes raw text (tokenize + stop + stem) and adds it.
  Status AddText(int64_t doc_id, const std::string& text);

  /// Freezes the index: computes idf weights, document norms, the per-term
  /// maximum score contribution used for pruning, and the per-term skip
  /// blocks (last doc id + max weight per kSkipBlockSize postings).
  Status Finalize();

  bool finalized() const { return finalized_; }
  int64_t num_documents() const { return static_cast<int64_t>(doc_norm_.size()); }
  int64_t num_terms() const { return static_cast<int64_t>(postings_.size()); }
  int64_t TotalPostings() const;

  /// Documents containing `term` (post-analysis form), for diagnostics.
  int64_t DocumentFrequency(const std::string& term) const;

  /// Baseline: scores every document containing any query term, then sorts.
  /// Query text is analyzed with the same chain as documents.
  Result<std::vector<SearchHit>> SearchExhaustive(const std::string& query,
                                                  size_t n,
                                                  SearchStats* stats = nullptr) const;

  /// Snapshot of one term's postings for export (doc ids ascending;
  /// SearchHit.score carries the normalized tf weight, idf excluded).
  struct TermSnapshot {
    std::string term;
    double idf = 0.0;
    std::vector<SearchHit> postings;
  };

  /// Exports every term (requires a finalized index). Used by the
  /// compressed index builder and by diagnostics.
  Result<std::vector<TermSnapshot>> ExportTerms() const;

  /// Zero-copy view of one finalized term: idf, the per-list maximum
  /// weight, and spans over the postings and skip-block arrays. The spans
  /// point at this index's storage (or at the mapped segment bytes it was
  /// restored from) — they are invalidated by destroying the index.
  struct TermRange {
    const std::string* term = nullptr;
    double idf = 0.0;
    double max_weight = 0.0;
    util::ConstSpan<Posting> postings;
    util::ConstSpan<BlockMeta> blocks;
  };

  /// Every term's view, in term order (requires a finalized index). The
  /// segment writer serializes these spans verbatim.
  Result<std::vector<TermRange>> TermRanges() const;

  /// Document norms (doc id -> 1/sqrt(len)), persisted so a restored index
  /// reports the same num_documents() and survives re-export.
  const std::map<int64_t, double>& doc_norms() const { return doc_norm_; }

  /// One term of a restored index: when `copy` is false the spans must
  /// outlive the index (they typically point into a memory-mapped
  /// segment); when `copy` is true FromTerms materializes owned copies.
  struct RestoredTerm {
    std::string term;
    double idf = 0.0;
    double max_weight = 0.0;
    util::ConstSpan<Posting> postings;
    util::ConstSpan<BlockMeta> blocks;
  };

  /// Reassembles a *finalized* index from persisted parts — the inverse of
  /// TermRanges()/doc_norms(). Performs only structural validation (term
  /// uniqueness, block count consistency); byte integrity is the segment
  /// checksums' job. With copy=false the restored index reads postings
  /// zero-copy through the given spans.
  static Result<InvertedIndex> FromTerms(
      std::vector<RestoredTerm> terms,
      std::vector<std::pair<int64_t, double>> doc_norms, bool copy);

  /// Top-N optimized evaluation: document-at-a-time maxscore with
  /// block-max skipping (see file comment). Returns exactly the same hits
  /// as SearchExhaustive truncated to n.
  Result<std::vector<SearchHit>> SearchTopN(const std::string& query, size_t n,
                                            SearchStats* stats = nullptr) const;

  /// Cross-modal accept filter (DESIGN.md §4g): the exact top `n` among
  /// the documents in `accept_docs` (sorted ascending, deduplicated) —
  /// SearchTopN restricted to that subset *before* ranking. The cursors
  /// jump over non-accepted gaps block-wise, so cost scales with the
  /// accepted postings rather than the full lists. Note this equals
  /// "SearchTopN, then drop non-accepted hits" only when no truncation can
  /// occur (n at least the number of scoring documents); the planner checks
  /// that bound before choosing this path.
  Result<std::vector<SearchHit>> SearchTopNFiltered(
      const std::string& query, size_t n,
      const std::vector<int64_t>& accept_docs,
      SearchStats* stats = nullptr) const;

  /// Reference implementation: term-at-a-time evaluation in decreasing
  /// max-contribution order; stops admitting new candidates when the
  /// remaining terms (precomputed suffix sums) cannot lift any unseen
  /// document into the top N. Superseded by SearchTopN but kept as the
  /// baseline optimized path for E6.
  Result<std::vector<SearchHit>> SearchTopNTaat(const std::string& query,
                                                size_t n,
                                                SearchStats* stats = nullptr) const;

 private:
  /// Per-term state. Before Finalize() the postings accumulate in
  /// `postings_store`; Finalize() (or FromTerms) freezes them and points
  /// the `postings`/`blocks` spans either at the owned stores or — for an
  /// index restored zero-copy from a segment — at external mapped memory.
  /// Copying an InvertedIndex therefore re-points owned spans but shares
  /// view spans (the mapped bytes must outlive every copy).
  struct TermInfo {
    std::vector<Posting> postings_store;
    std::vector<BlockMeta> blocks_store;  ///< built by Finalize()
    util::ConstSpan<Posting> postings;    ///< valid once finalized
    util::ConstSpan<BlockMeta> blocks;    ///< valid once finalized
    double idf = 0.0;
    double max_weight = 0.0;  ///< max normalized tf among postings
  };

  Result<std::vector<std::string>> AnalyzeQuery(const std::string& query) const;

  /// Shared DAAT evaluation behind SearchTopN (accept == nullptr) and
  /// SearchTopNFiltered.
  Result<std::vector<SearchHit>> SearchTopNImpl(
      const std::string& query, size_t n, const std::vector<int64_t>* accept,
      SearchStats* stats) const;

  /// Deduplicates analyzed query terms into (term info, query tf) pairs,
  /// ordered by first occurrence in the analyzed query.
  struct QueryTerm {
    const TermInfo* info;
    double qtf;
    double max_contribution;
  };
  std::vector<QueryTerm> CollectQueryTerms(
      const std::vector<std::string>& terms) const;

  std::map<std::string, TermInfo> postings_;
  std::map<int64_t, double> doc_norm_;  ///< doc id -> 1/sqrt(len)
  bool finalized_ = false;
};

}  // namespace cobra::text
