#pragma once

/// \file inverted_index.h
/// In-memory inverted index with tf-idf ranking and the top-N query
/// optimization of ref [1] (Blok et al., "IR top-N optimization in a main
/// memory DBMS"): terms are evaluated in decreasing-impact order and
/// evaluation stops as soon as the remaining terms cannot lift any document
/// into the top N. The exhaustive evaluator is kept as the baseline the
/// paper compares against.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace cobra::text {

/// One ranked search result.
struct SearchHit {
  int64_t doc_id = 0;
  double score = 0.0;
};

/// Work counters used by the E6 benchmark to show *why* top-N wins.
struct SearchStats {
  int64_t terms_evaluated = 0;
  int64_t postings_scanned = 0;
  bool early_terminated = false;
};

/// Document-frequency postings index over analyzed token streams.
///
/// Usage: AddDocument() repeatedly, Finalize() once, then Search*().
class InvertedIndex {
 public:
  /// Adds a document's analyzed tokens. Doc ids must be unique and
  /// non-negative. Fails after Finalize().
  Status AddDocument(int64_t doc_id, const std::vector<std::string>& tokens);

  /// Convenience: analyzes raw text (tokenize + stop + stem) and adds it.
  Status AddText(int64_t doc_id, const std::string& text);

  /// Freezes the index: computes idf weights, document norms, and the
  /// per-term maximum score contribution used for pruning.
  Status Finalize();

  bool finalized() const { return finalized_; }
  int64_t num_documents() const { return static_cast<int64_t>(doc_norm_.size()); }
  int64_t num_terms() const { return static_cast<int64_t>(postings_.size()); }
  int64_t TotalPostings() const;

  /// Documents containing `term` (post-analysis form), for diagnostics.
  int64_t DocumentFrequency(const std::string& term) const;

  /// Baseline: scores every document containing any query term, then sorts.
  /// Query text is analyzed with the same chain as documents.
  Result<std::vector<SearchHit>> SearchExhaustive(const std::string& query,
                                                  size_t n,
                                                  SearchStats* stats = nullptr) const;

  /// Snapshot of one term's postings for export (doc ids ascending;
  /// SearchHit.score carries the normalized tf weight, idf excluded).
  struct TermSnapshot {
    std::string term;
    double idf = 0.0;
    std::vector<SearchHit> postings;
  };

  /// Exports every term (requires a finalized index). Used by the
  /// compressed index builder and by diagnostics.
  Result<std::vector<TermSnapshot>> ExportTerms() const;

  /// Top-N optimized evaluation: terms in decreasing max-contribution
  /// order; stops when the best still-unseen contribution cannot beat the
  /// current N-th score. Returns the same ranking as SearchExhaustive for
  /// the returned prefix.
  Result<std::vector<SearchHit>> SearchTopN(const std::string& query, size_t n,
                                            SearchStats* stats = nullptr) const;

 private:
  struct Posting {
    int64_t doc_id;
    double weight;  ///< normalized tf weight; final score adds idf * weight
  };
  struct TermInfo {
    std::vector<Posting> postings;
    double idf = 0.0;
    double max_weight = 0.0;  ///< max normalized tf among postings
  };

  Result<std::vector<std::string>> AnalyzeQuery(const std::string& query) const;

  std::map<std::string, TermInfo> postings_;
  std::map<int64_t, double> doc_norm_;  ///< doc id -> 1/sqrt(len)
  bool finalized_ = false;
};

}  // namespace cobra::text
