#pragma once

/// \file tokenizer.h
/// Text analysis for the full-text component (ref [1]): tokenization,
/// stop-word removal and a light suffix stemmer.

#include <string>
#include <string_view>
#include <vector>

namespace cobra::text {

/// Splits `text` into lowercase alphanumeric tokens. Punctuation and other
/// separators are dropped; tokens shorter than 2 characters are dropped.
std::vector<std::string> Tokenize(std::string_view text);

/// True for the ~40 highest-frequency English function words.
bool IsStopWord(std::string_view token);

/// Light suffix stemmer (Porter step-1 flavor): strips plural and common
/// verbal suffixes. Idempotent on its own output for the suffixes handled.
std::string Stem(std::string_view token);

/// Full analysis chain: tokenize, drop stop words, stem.
std::vector<std::string> Analyze(std::string_view text);

}  // namespace cobra::text
