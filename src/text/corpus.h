#pragma once

/// \file corpus.h
/// Synthetic text corpus with Zipf-distributed vocabulary — the document
/// collection for the full-text scalability experiments (E6) and the raw
/// material for the generated tournament web site (interviews, match
/// reports).

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace cobra::text {

struct CorpusConfig {
  size_t num_docs = 1000;
  size_t vocabulary_size = 5000;
  double zipf_s = 1.1;       ///< term-frequency skew
  size_t min_words = 40;
  size_t max_words = 160;
  uint64_t seed = 1234;
};

/// Deterministic pronounceable word for a vocabulary rank (1-based):
/// bijective CV-syllable encoding, so distinct ranks give distinct words.
std::string VocabularyWord(size_t rank);

/// A generated collection of documents.
class SyntheticCorpus {
 public:
  /// Generates `config.num_docs` documents of Zipf-sampled words.
  static Result<SyntheticCorpus> Generate(const CorpusConfig& config);

  size_t size() const { return documents_.size(); }
  const std::string& document(size_t i) const { return documents_[i]; }
  const std::vector<std::string>& documents() const { return documents_; }

  /// A deterministic query of `num_terms` mid-frequency vocabulary words
  /// (frequent enough to have long postings, rare enough to discriminate).
  std::string MakeQuery(int num_terms, uint64_t salt) const;

  const CorpusConfig& config() const { return config_; }

 private:
  CorpusConfig config_;
  std::vector<std::string> documents_;
};

}  // namespace cobra::text
