#include "text/tokenizer.h"

#include <cctype>
#include <set>

namespace cobra::text {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      if (current.size() >= 2) out.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= 2) out.push_back(current);
  return out;
}

bool IsStopWord(std::string_view token) {
  static const std::set<std::string, std::less<>> kStopWords = {
      "the", "of",   "and",  "to",   "in",   "is",   "it",  "that", "was",
      "for", "on",   "are",  "as",   "with", "at",   "be",  "by",   "this",
      "had", "not",  "but",  "from", "or",   "have", "an",  "they", "which",
      "she", "he",   "we",   "his",  "her",  "you",  "were", "been", "has",
      "their", "its", "will", "would", "there", "what", "all", "when"};
  return kStopWords.count(token) > 0;
}

std::string Stem(std::string_view token) {
  std::string t(token);
  auto ends = [&](std::string_view suffix) {
    return t.size() > suffix.size() + 2 &&
           t.compare(t.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  if (ends("sses")) {
    t.resize(t.size() - 2);  // sses -> ss
  } else if (ends("ies")) {
    t.resize(t.size() - 3);
    t += 'y';  // ies -> y
  } else if (ends("ing")) {
    t.resize(t.size() - 3);
  } else if (ends("edly")) {
    t.resize(t.size() - 4);
  } else if (ends("ed")) {
    t.resize(t.size() - 2);
  } else if (ends("ly")) {
    t.resize(t.size() - 2);
  } else if (ends("es")) {
    t.resize(t.size() - 2);
  } else if (t.size() > 3 && t.back() == 's' && t[t.size() - 2] != 's') {
    t.pop_back();
  }
  return t;
}

std::vector<std::string> Analyze(std::string_view text) {
  std::vector<std::string> out;
  for (std::string& token : Tokenize(text)) {
    if (IsStopWord(token)) continue;
    out.push_back(Stem(token));
  }
  return out;
}

}  // namespace cobra::text
