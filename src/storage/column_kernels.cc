#include "storage/column_kernels.h"

#include <bit>

// SIMD tiers exist only on x86-64 GCC/Clang builds with the COBRA_SIMD CMake
// option ON; everywhere else only the scalar tier is compiled and dispatch
// degenerates to it.
#if defined(COBRA_SIMD) && COBRA_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define COBRA_SIMD_X86 1
#include <immintrin.h>
#else
#define COBRA_SIMD_X86 0
#endif

namespace cobra::storage::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier.
//
// The per-element predicate is EvalCompare(CompareScalar(v, lit), op) — the
// exact form the row-at-a-time operators used — so the vector tiers only
// have to reproduce this truth table to be bit-identical.
// ---------------------------------------------------------------------------

namespace scalar {

template <typename T>
void SelectTyped(const T* data, size_t n, T lit, CompareOp op, int64_t base,
                 std::vector<int64_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (EvalCompare(CompareScalar(data[i], lit), op)) {
      out->push_back(base + static_cast<int64_t>(i));
    }
  }
}

void SelectI64(const int64_t* data, size_t n, int64_t lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  SelectTyped(data, n, lit, op, base, out);
}

void SelectF64(const double* data, size_t n, double lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  SelectTyped(data, n, lit, op, base, out);
}

void SelectI32(const int32_t* codes, size_t n, int32_t lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  SelectTyped(codes, n, lit, op, base, out);
}

void SelectLut(const int32_t* codes, size_t n, const uint8_t* lut,
               int64_t base, std::vector<int64_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (lut[codes[i]] != 0) out->push_back(base + static_cast<int64_t>(i));
  }
}

}  // namespace scalar

constexpr SelectOps kScalarOps = {
    scalar::SelectI64,
    scalar::SelectF64,
    scalar::SelectI32,
    scalar::SelectLut,
};

#if COBRA_SIMD_X86

// Appends base + bit-index for every set bit of `mask`, ascending — the
// vector-to-selection-vector step. Bit order equals element order, so the
// output matches the scalar loop exactly.
inline void EmitMask(unsigned mask, int64_t base, std::vector<int64_t>* out) {
  while (mask != 0) {
    out->push_back(base + std::countr_zero(mask));
    mask &= mask - 1;
  }
}

// ---------------------------------------------------------------------------
// SSE4.1 tier: 2 int64 / 2 double / 4 int32 lanes per iteration.
//
// int64 ordered compares need pcmpgtq (SSE4.2), so only kEq/kNe vectorize
// in this tier; the ordered int64 ops run the scalar loop (still
// bit-identical — the dispatch contract is exactness, not uniform speed).
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("sse4.1")

namespace sse41 {

template <CompareOp Op>
void SelectI64Loop(const int64_t* data, size_t n, int64_t lit, int64_t base,
                   std::vector<int64_t>* out) {
  static_assert(Op == CompareOp::kEq || Op == CompareOp::kNe);
  const __m128i vlit = _mm_set1_epi64x(lit);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    unsigned eq = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, vlit))));
    const unsigned mask = Op == CompareOp::kEq ? eq : (~eq & 0x3u);
    EmitMask(mask, base + static_cast<int64_t>(i), out);
  }
  scalar::SelectTyped(data + i, n - i, lit, Op, base + static_cast<int64_t>(i),
                      out);
}

void SelectI64(const int64_t* data, size_t n, int64_t lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectI64Loop<CompareOp::kEq>(data, n, lit, base, out);
    case CompareOp::kNe:
      return SelectI64Loop<CompareOp::kNe>(data, n, lit, base, out);
    default:
      return scalar::SelectI64(data, n, lit, op, base, out);
  }
}

template <CompareOp Op>
void SelectF64Loop(const double* data, size_t n, double lit, int64_t base,
                   std::vector<int64_t>* out) {
  const __m128d vlit = _mm_set1_pd(lit);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(data + i);
    // lt/gt are ordered compares: false whenever an operand is NaN, which
    // makes NaN "tie" exactly like the scalar CompareScalar form.
    const unsigned lt = static_cast<unsigned>(
        _mm_movemask_pd(_mm_cmplt_pd(v, vlit)));
    const unsigned gt = static_cast<unsigned>(
        _mm_movemask_pd(_mm_cmpgt_pd(v, vlit)));
    unsigned mask = 0;
    if constexpr (Op == CompareOp::kEq) {
      mask = ~(lt | gt) & 0x3u;
    } else if constexpr (Op == CompareOp::kNe) {
      mask = lt | gt;
    } else if constexpr (Op == CompareOp::kLt) {
      mask = lt;
    } else if constexpr (Op == CompareOp::kLe) {
      mask = ~gt & 0x3u;
    } else if constexpr (Op == CompareOp::kGt) {
      mask = gt;
    } else {  // kGe
      mask = ~lt & 0x3u;
    }
    EmitMask(mask, base + static_cast<int64_t>(i), out);
  }
  scalar::SelectTyped(data + i, n - i, lit, Op, base + static_cast<int64_t>(i),
                      out);
}

void SelectF64(const double* data, size_t n, double lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectF64Loop<CompareOp::kEq>(data, n, lit, base, out);
    case CompareOp::kNe:
      return SelectF64Loop<CompareOp::kNe>(data, n, lit, base, out);
    case CompareOp::kLt:
      return SelectF64Loop<CompareOp::kLt>(data, n, lit, base, out);
    case CompareOp::kLe:
      return SelectF64Loop<CompareOp::kLe>(data, n, lit, base, out);
    case CompareOp::kGt:
      return SelectF64Loop<CompareOp::kGt>(data, n, lit, base, out);
    case CompareOp::kGe:
      return SelectF64Loop<CompareOp::kGe>(data, n, lit, base, out);
    default:
      return scalar::SelectF64(data, n, lit, op, base, out);
  }
}

template <CompareOp Op>
void SelectI32Loop(const int32_t* codes, size_t n, int32_t lit, int64_t base,
                   std::vector<int64_t>* out) {
  const __m128i vlit = _mm_set1_epi32(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const unsigned eq = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, vlit))));
    const unsigned gt = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v, vlit))));
    unsigned mask = 0;
    if constexpr (Op == CompareOp::kEq) {
      mask = eq;
    } else if constexpr (Op == CompareOp::kNe) {
      mask = ~eq & 0xFu;
    } else if constexpr (Op == CompareOp::kLt) {
      mask = ~(eq | gt) & 0xFu;
    } else if constexpr (Op == CompareOp::kLe) {
      mask = ~gt & 0xFu;
    } else if constexpr (Op == CompareOp::kGt) {
      mask = gt;
    } else {  // kGe
      mask = eq | gt;
    }
    EmitMask(mask, base + static_cast<int64_t>(i), out);
  }
  scalar::SelectTyped(codes + i, n - i, lit, Op, base + static_cast<int64_t>(i),
                      out);
}

void SelectI32(const int32_t* codes, size_t n, int32_t lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectI32Loop<CompareOp::kEq>(codes, n, lit, base, out);
    case CompareOp::kNe:
      return SelectI32Loop<CompareOp::kNe>(codes, n, lit, base, out);
    case CompareOp::kLt:
      return SelectI32Loop<CompareOp::kLt>(codes, n, lit, base, out);
    case CompareOp::kLe:
      return SelectI32Loop<CompareOp::kLe>(codes, n, lit, base, out);
    case CompareOp::kGt:
      return SelectI32Loop<CompareOp::kGt>(codes, n, lit, base, out);
    case CompareOp::kGe:
      return SelectI32Loop<CompareOp::kGe>(codes, n, lit, base, out);
    default:
      return scalar::SelectI32(codes, n, lit, op, base, out);
  }
}

}  // namespace sse41

#pragma GCC pop_options

// ---------------------------------------------------------------------------
// AVX2 tier: 4 int64 / 4 double / 8 int32 lanes per iteration. AVX2 has
// vpcmpgtq, so all int64 operators vectorize here.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

namespace avx2 {

template <CompareOp Op>
void SelectI64Loop(const int64_t* data, size_t n, int64_t lit, int64_t base,
                   std::vector<int64_t>* out) {
  const __m256i vlit = _mm256_set1_epi64x(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    unsigned mask = 0;
    if constexpr (Op == CompareOp::kEq) {
      mask = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vlit))));
    } else if constexpr (Op == CompareOp::kNe) {
      mask = ~static_cast<unsigned>(_mm256_movemask_pd(
                 _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vlit)))) &
             0xFu;
    } else if constexpr (Op == CompareOp::kLt) {
      mask = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(vlit, v))));
    } else if constexpr (Op == CompareOp::kLe) {
      mask = ~static_cast<unsigned>(_mm256_movemask_pd(
                 _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vlit)))) &
             0xFu;
    } else if constexpr (Op == CompareOp::kGt) {
      mask = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vlit))));
    } else {  // kGe
      mask = ~static_cast<unsigned>(_mm256_movemask_pd(
                 _mm256_castsi256_pd(_mm256_cmpgt_epi64(vlit, v)))) &
             0xFu;
    }
    EmitMask(mask, base + static_cast<int64_t>(i), out);
  }
  scalar::SelectTyped(data + i, n - i, lit, Op, base + static_cast<int64_t>(i),
                      out);
}

void SelectI64(const int64_t* data, size_t n, int64_t lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectI64Loop<CompareOp::kEq>(data, n, lit, base, out);
    case CompareOp::kNe:
      return SelectI64Loop<CompareOp::kNe>(data, n, lit, base, out);
    case CompareOp::kLt:
      return SelectI64Loop<CompareOp::kLt>(data, n, lit, base, out);
    case CompareOp::kLe:
      return SelectI64Loop<CompareOp::kLe>(data, n, lit, base, out);
    case CompareOp::kGt:
      return SelectI64Loop<CompareOp::kGt>(data, n, lit, base, out);
    case CompareOp::kGe:
      return SelectI64Loop<CompareOp::kGe>(data, n, lit, base, out);
    default:
      return scalar::SelectI64(data, n, lit, op, base, out);
  }
}

template <CompareOp Op>
void SelectF64Loop(const double* data, size_t n, double lit, int64_t base,
                   std::vector<int64_t>* out) {
  const __m256d vlit = _mm256_set1_pd(lit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(data + i);
    const unsigned lt = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, vlit, _CMP_LT_OQ)));
    const unsigned gt = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, vlit, _CMP_GT_OQ)));
    unsigned mask = 0;
    if constexpr (Op == CompareOp::kEq) {
      mask = ~(lt | gt) & 0xFu;
    } else if constexpr (Op == CompareOp::kNe) {
      mask = lt | gt;
    } else if constexpr (Op == CompareOp::kLt) {
      mask = lt;
    } else if constexpr (Op == CompareOp::kLe) {
      mask = ~gt & 0xFu;
    } else if constexpr (Op == CompareOp::kGt) {
      mask = gt;
    } else {  // kGe
      mask = ~lt & 0xFu;
    }
    EmitMask(mask, base + static_cast<int64_t>(i), out);
  }
  scalar::SelectTyped(data + i, n - i, lit, Op, base + static_cast<int64_t>(i),
                      out);
}

void SelectF64(const double* data, size_t n, double lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectF64Loop<CompareOp::kEq>(data, n, lit, base, out);
    case CompareOp::kNe:
      return SelectF64Loop<CompareOp::kNe>(data, n, lit, base, out);
    case CompareOp::kLt:
      return SelectF64Loop<CompareOp::kLt>(data, n, lit, base, out);
    case CompareOp::kLe:
      return SelectF64Loop<CompareOp::kLe>(data, n, lit, base, out);
    case CompareOp::kGt:
      return SelectF64Loop<CompareOp::kGt>(data, n, lit, base, out);
    case CompareOp::kGe:
      return SelectF64Loop<CompareOp::kGe>(data, n, lit, base, out);
    default:
      return scalar::SelectF64(data, n, lit, op, base, out);
  }
}

template <CompareOp Op>
void SelectI32Loop(const int32_t* codes, size_t n, int32_t lit, int64_t base,
                   std::vector<int64_t>* out) {
  const __m256i vlit = _mm256_set1_epi32(lit);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const unsigned eq = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vlit))));
    const unsigned gt = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(v, vlit))));
    unsigned mask = 0;
    if constexpr (Op == CompareOp::kEq) {
      mask = eq;
    } else if constexpr (Op == CompareOp::kNe) {
      mask = ~eq & 0xFFu;
    } else if constexpr (Op == CompareOp::kLt) {
      mask = ~(eq | gt) & 0xFFu;
    } else if constexpr (Op == CompareOp::kLe) {
      mask = ~gt & 0xFFu;
    } else if constexpr (Op == CompareOp::kGt) {
      mask = gt;
    } else {  // kGe
      mask = eq | gt;
    }
    EmitMask(mask, base + static_cast<int64_t>(i), out);
  }
  scalar::SelectTyped(codes + i, n - i, lit, Op, base + static_cast<int64_t>(i),
                      out);
}

void SelectI32(const int32_t* codes, size_t n, int32_t lit, CompareOp op,
               int64_t base, std::vector<int64_t>* out) {
  switch (op) {
    case CompareOp::kEq:
      return SelectI32Loop<CompareOp::kEq>(codes, n, lit, base, out);
    case CompareOp::kNe:
      return SelectI32Loop<CompareOp::kNe>(codes, n, lit, base, out);
    case CompareOp::kLt:
      return SelectI32Loop<CompareOp::kLt>(codes, n, lit, base, out);
    case CompareOp::kLe:
      return SelectI32Loop<CompareOp::kLe>(codes, n, lit, base, out);
    case CompareOp::kGt:
      return SelectI32Loop<CompareOp::kGt>(codes, n, lit, base, out);
    case CompareOp::kGe:
      return SelectI32Loop<CompareOp::kGe>(codes, n, lit, base, out);
    default:
      return scalar::SelectI32(codes, n, lit, op, base, out);
  }
}

}  // namespace avx2

#pragma GCC pop_options

constexpr SelectOps kSse41Ops = {
    sse41::SelectI64,
    sse41::SelectF64,
    sse41::SelectI32,
    scalar::SelectLut,
};

constexpr SelectOps kAvx2Ops = {
    avx2::SelectI64,
    avx2::SelectF64,
    avx2::SelectI32,
    scalar::SelectLut,
};

#endif  // COBRA_SIMD_X86

}  // namespace

const SelectOps& ScalarOps() { return kScalarOps; }

SimdLevel BestSupportedLevel() {
#if COBRA_SIMD_X86
  return util::simd::CpuBestLevel();
#else
  return SimdLevel::kScalar;
#endif
}

const SelectOps* OpsFor(SimdLevel level) {
  if (level == SimdLevel::kScalar) return &kScalarOps;
#if COBRA_SIMD_X86
  if (static_cast<int>(level) > static_cast<int>(BestSupportedLevel())) {
    return nullptr;
  }
  if (level == SimdLevel::kSse41) return &kSse41Ops;
  if (level == SimdLevel::kAvx2) return &kAvx2Ops;
#endif
  return nullptr;
}

SimdLevel ActiveLevel() {
  const int forced = util::simd::ForcedLevel();
  if (forced < 0) return BestSupportedLevel();
  // The shared cap may name a tier this library did not compile; clamp down.
  int clamped = forced;
  while (clamped > 0 && OpsFor(static_cast<SimdLevel>(clamped)) == nullptr) {
    --clamped;
  }
  return static_cast<SimdLevel>(clamped);
}

const SelectOps& Ops() { return *OpsFor(ActiveLevel()); }

}  // namespace cobra::storage::kernels
