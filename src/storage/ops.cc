#include "storage/ops.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/strings.h"

namespace cobra::storage {

namespace {

bool EvalCompare(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kContains:
      return false;  // handled separately
  }
  return false;
}

Status CheckPredicate(const Table& table, const Predicate& pred, size_t* col) {
  COBRA_ASSIGN_OR_RETURN(*col, table.ColumnIndex(pred.column));
  DataType col_type = table.schema()[*col].type;
  if (pred.op == CompareOp::kContains) {
    if (col_type != DataType::kString ||
        TypeOf(pred.literal) != DataType::kString) {
      return Status::InvalidArgument("kContains requires string column/literal");
    }
    return Status::OK();
  }
  if (TypeOf(pred.literal) != col_type) {
    return Status::InvalidArgument(StringFormat(
        "predicate literal type mismatch on column '%s'", pred.column.c_str()));
  }
  return Status::OK();
}

/// Applies `pred` to row `row` of a pre-resolved column.
template <typename Getter>
bool RowMatches(const Predicate& pred, const Getter& get, int64_t row) {
  return EvalCompare(CompareValues(get(row), pred.literal), pred.op);
}

}  // namespace

Result<std::vector<int64_t>> Select(const Table& table, const Predicate& pred) {
  size_t col;
  COBRA_RETURN_NOT_OK(CheckPredicate(table, pred, &col));
  std::vector<int64_t> out;
  const int64_t n = table.num_rows();
  const DataType type = table.schema()[col].type;

  if (pred.op == CompareOp::kContains) {
    const auto& data = table.StringColumn(col);
    const std::string& needle = std::get<std::string>(pred.literal);
    for (int64_t r = 0; r < n; ++r) {
      if (data[static_cast<size_t>(r)].find(needle) != std::string::npos) {
        out.push_back(r);
      }
    }
    return out;
  }
  switch (type) {
    case DataType::kInt64: {
      const auto& data = table.IntColumn(col);
      int64_t lit = std::get<int64_t>(pred.literal);
      for (int64_t r = 0; r < n; ++r) {
        int64_t v = data[static_cast<size_t>(r)];
        int cmp = v < lit ? -1 : (v > lit ? 1 : 0);
        if (EvalCompare(cmp, pred.op)) out.push_back(r);
      }
      break;
    }
    case DataType::kDouble: {
      const auto& data = table.DoubleColumn(col);
      double lit = std::get<double>(pred.literal);
      for (int64_t r = 0; r < n; ++r) {
        double v = data[static_cast<size_t>(r)];
        int cmp = v < lit ? -1 : (v > lit ? 1 : 0);
        if (EvalCompare(cmp, pred.op)) out.push_back(r);
      }
      break;
    }
    case DataType::kString: {
      const auto& data = table.StringColumn(col);
      const std::string& lit = std::get<std::string>(pred.literal);
      for (int64_t r = 0; r < n; ++r) {
        int cmp = data[static_cast<size_t>(r)].compare(lit);
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
        if (EvalCompare(cmp, pred.op)) out.push_back(r);
      }
      break;
    }
  }
  return out;
}

Result<std::vector<int64_t>> Refine(const Table& table, const Predicate& pred,
                                    const std::vector<int64_t>& candidates) {
  size_t col;
  COBRA_RETURN_NOT_OK(CheckPredicate(table, pred, &col));
  std::vector<int64_t> out;
  for (int64_t r : candidates) {
    if (r < 0 || r >= table.num_rows()) {
      return Status::OutOfRange("candidate row out of range");
    }
    bool keep;
    if (pred.op == CompareOp::kContains) {
      keep = table.StringColumn(col)[static_cast<size_t>(r)].find(
                 std::get<std::string>(pred.literal)) != std::string::npos;
    } else {
      COBRA_ASSIGN_OR_RETURN(Value v, table.GetValue(r, col));
      keep = EvalCompare(CompareValues(v, pred.literal), pred.op);
    }
    if (keep) out.push_back(r);
  }
  return out;
}

Result<std::vector<int64_t>> SelectAll(const Table& table,
                                       const std::vector<Predicate>& preds) {
  if (preds.empty()) {
    std::vector<int64_t> all(static_cast<size_t>(table.num_rows()));
    for (int64_t r = 0; r < table.num_rows(); ++r) all[static_cast<size_t>(r)] = r;
    return all;
  }
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> rows, Select(table, preds[0]));
  for (size_t i = 1; i < preds.size() && !rows.empty(); ++i) {
    COBRA_ASSIGN_OR_RETURN(rows, Refine(table, preds[i], rows));
  }
  return rows;
}

Result<Table> Materialize(const Table& table, const std::vector<int64_t>& rows,
                          const std::vector<std::string>& columns) {
  std::vector<size_t> col_ids;
  std::vector<ColumnDef> schema;
  if (columns.empty()) {
    for (size_t i = 0; i < table.num_columns(); ++i) {
      col_ids.push_back(i);
      schema.push_back(table.schema()[i]);
    }
  } else {
    for (const std::string& name : columns) {
      COBRA_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
      col_ids.push_back(idx);
      schema.push_back(table.schema()[idx]);
    }
  }
  COBRA_ASSIGN_OR_RETURN(Table out, Table::Create(std::move(schema)));
  for (int64_t r : rows) {
    std::vector<Value> row;
    row.reserve(col_ids.size());
    for (size_t c : col_ids) {
      COBRA_ASSIGN_OR_RETURN(Value v, table.GetValue(r, c));
      row.push_back(std::move(v));
    }
    COBRA_RETURN_NOT_OK(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col) {
  COBRA_ASSIGN_OR_RETURN(size_t lcol, left.ColumnIndex(left_col));
  COBRA_ASSIGN_OR_RETURN(size_t rcol, right.ColumnIndex(right_col));
  if (left.schema()[lcol].type != right.schema()[rcol].type) {
    return Status::InvalidArgument("join key types differ");
  }

  // Output schema: left then right, prefixing collisions.
  std::vector<ColumnDef> schema = left.schema();
  for (const ColumnDef& def : right.schema()) {
    ColumnDef out_def = def;
    for (const ColumnDef& l : left.schema()) {
      if (l.name == def.name) {
        out_def.name = "right_" + def.name;
        break;
      }
    }
    schema.push_back(out_def);
  }
  COBRA_ASSIGN_OR_RETURN(Table out, Table::Create(std::move(schema)));

  // Build on the right side, probe with the left (keeps left order).
  std::unordered_map<std::string, std::vector<int64_t>> build;
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    COBRA_ASSIGN_OR_RETURN(Value v, right.GetValue(r, rcol));
    build[ValueToString(v)].push_back(r);
  }
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    COBRA_ASSIGN_OR_RETURN(Value v, left.GetValue(l, lcol));
    auto it = build.find(ValueToString(v));
    if (it == build.end()) continue;
    for (int64_t r : it->second) {
      std::vector<Value> row;
      row.reserve(out.num_columns());
      for (size_t c = 0; c < left.num_columns(); ++c) {
        COBRA_ASSIGN_OR_RETURN(Value lv, left.GetValue(l, c));
        row.push_back(std::move(lv));
      }
      for (size_t c = 0; c < right.num_columns(); ++c) {
        COBRA_ASSIGN_OR_RETURN(Value rv, right.GetValue(r, c));
        row.push_back(std::move(rv));
      }
      COBRA_RETURN_NOT_OK(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<std::vector<int64_t>> OrderBy(const Table& table,
                                     const std::string& column, bool desc,
                                     size_t limit) {
  COBRA_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  std::vector<int64_t> rows(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) rows[static_cast<size_t>(r)] = r;
  std::vector<Value> keys;
  keys.reserve(rows.size());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    COBRA_ASSIGN_OR_RETURN(Value v, table.GetValue(r, col));
    keys.push_back(std::move(v));
  }
  std::stable_sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    int cmp = CompareValues(keys[static_cast<size_t>(a)],
                            keys[static_cast<size_t>(b)]);
    if (cmp == 0) return a < b;
    return desc ? cmp > 0 : cmp < 0;
  });
  if (limit > 0 && rows.size() > limit) rows.resize(limit);
  return rows;
}

Result<std::vector<GroupRow>> GroupBy(const Table& table,
                                      const std::string& key_column,
                                      AggregateOp op,
                                      const std::string& value_column) {
  COBRA_ASSIGN_OR_RETURN(size_t key_col, table.ColumnIndex(key_column));
  size_t value_col = 0;
  bool need_value = op != AggregateOp::kCount;
  if (need_value) {
    COBRA_ASSIGN_OR_RETURN(value_col, table.ColumnIndex(value_column));
    DataType t = table.schema()[value_col].type;
    if (t != DataType::kInt64 && t != DataType::kDouble) {
      return Status::InvalidArgument("aggregate value column must be numeric");
    }
  }

  struct Accumulator {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, std::pair<Value, Accumulator>> groups;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    COBRA_ASSIGN_OR_RETURN(Value key, table.GetValue(r, key_col));
    double v = 0.0;
    if (need_value) {
      COBRA_ASSIGN_OR_RETURN(Value raw, table.GetValue(r, value_col));
      v = std::holds_alternative<int64_t>(raw)
              ? static_cast<double>(std::get<int64_t>(raw))
              : std::get<double>(raw);
    }
    auto [it, inserted] =
        groups.try_emplace(ValueToString(key), key, Accumulator{});
    Accumulator& acc = it->second.second;
    if (acc.count == 0) {
      acc.min = acc.max = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
    acc.sum += v;
    acc.count++;
  }

  std::vector<GroupRow> out;
  out.reserve(groups.size());
  for (auto& [text_key, entry] : groups) {
    GroupRow row;
    row.key = std::move(entry.first);
    row.count = entry.second.count;
    switch (op) {
      case AggregateOp::kCount:
        row.aggregate = static_cast<double>(entry.second.count);
        break;
      case AggregateOp::kSum:
        row.aggregate = entry.second.sum;
        break;
      case AggregateOp::kMin:
        row.aggregate = entry.second.min;
        break;
      case AggregateOp::kMax:
        row.aggregate = entry.second.max;
        break;
      case AggregateOp::kAvg:
        row.aggregate = entry.second.count
                            ? entry.second.sum / entry.second.count
                            : 0.0;
        break;
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const GroupRow& a, const GroupRow& b) {
    return CompareValues(a.key, b.key) < 0;
  });
  return out;
}

}  // namespace cobra::storage
