#include "storage/ops.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "util/strings.h"
#include "util/thread_pool.h"

namespace cobra::storage {

namespace {

Status CheckPredicate(const Table& table, const Predicate& pred, size_t* col) {
  COBRA_ASSIGN_OR_RETURN(*col, table.ColumnIndex(pred.column));
  DataType col_type = table.schema()[*col].type;
  if (pred.op == CompareOp::kContains) {
    if (col_type != DataType::kString ||
        TypeOf(pred.literal) != DataType::kString) {
      return Status::InvalidArgument("kContains requires string column/literal");
    }
    return Status::OK();
  }
  if (TypeOf(pred.literal) != col_type) {
    return Status::InvalidArgument(StringFormat(
        "predicate literal type mismatch on column '%s'", pred.column.c_str()));
  }
  return Status::OK();
}

int NormalizeCmp(int cmp) { return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0); }

/// Can any int64 value (or dictionary code) in [z.imin, z.imax] satisfy
/// `op lit`? Conservative: true means "scan the block".
bool ZoneCanMatchI64(const ZoneEntry& z, int64_t lit, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return lit >= z.imin && lit <= z.imax;
    case CompareOp::kNe:
      return !(z.imin == z.imax && z.imin == lit);
    case CompareOp::kLt:
      return z.imin < lit;
    case CompareOp::kLe:
      return z.imin <= lit;
    case CompareOp::kGt:
      return z.imax > lit;
    case CompareOp::kGe:
      return z.imax >= lit;
    case CompareOp::kContains:
      return true;
  }
  return true;
}

/// Double variant. NaN ties under CompareValues (cmp == 0), so a NaN row
/// matches kEq/kLe/kGe against any literal, and a NaN literal matches every
/// row under those same ops; dmin/dmax ignore NaN, has_nan records it.
bool ZoneCanMatchF64(const ZoneEntry& z, double lit, CompareOp op) {
  const bool nan_matches = op == CompareOp::kEq || op == CompareOp::kLe ||
                           op == CompareOp::kGe;
  if (std::isnan(lit)) return nan_matches;
  if (z.has_nan && nan_matches) return true;
  switch (op) {
    case CompareOp::kEq:
      return lit >= z.dmin && lit <= z.dmax;
    case CompareOp::kNe:
      // dmin > dmax means the block is all NaN: no row orders against the
      // literal, so nothing satisfies kNe.
      return z.dmin <= z.dmax && !(z.dmin == z.dmax && z.dmin == lit);
    case CompareOp::kLt:
      return z.dmin < lit;
    case CompareOp::kLe:
      return z.dmin <= lit;
    case CompareOp::kGt:
      return z.dmax > lit;
    case CompareOp::kGe:
      return z.dmax >= lit;
    case CompareOp::kContains:
      return true;
  }
  return true;
}

std::vector<int64_t> AllRows(int64_t n) {
  std::vector<int64_t> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), int64_t{0});
  return rows;
}

/// Per-unique-string predicate evaluation: lut[code] = 1 when the
/// dictionary entry satisfies the predicate. O(dict) string work once, then
/// O(1) per row through the select_lut kernel.
std::vector<uint8_t> BuildStringLut(const std::vector<std::string>& dict,
                                    const Predicate& pred) {
  std::vector<uint8_t> lut(dict.size());
  const std::string& lit = std::get<std::string>(pred.literal);
  for (size_t c = 0; c < dict.size(); ++c) {
    if (pred.op == CompareOp::kContains) {
      lut[c] = dict[c].find(lit) != std::string::npos ? 1 : 0;
    } else {
      lut[c] = EvalCompare(NormalizeCmp(dict[c].compare(lit)), pred.op) ? 1 : 0;
    }
  }
  return lut;
}

}  // namespace

Status ValidatePredicate(const Table& table, const Predicate& pred) {
  size_t col;
  return CheckPredicate(table, pred, &col);
}

Result<std::vector<int64_t>> Select(const Table& table, const Predicate& pred) {
  size_t col;
  COBRA_RETURN_NOT_OK(CheckPredicate(table, pred, &col));
  std::vector<int64_t> out;
  const int64_t n = table.num_rows();
  if (n == 0) return out;
  const DataType type = table.schema()[col].type;
  const kernels::SelectOps& ops = kernels::Ops();
  const auto& zones = table.Zones(col);

  switch (type) {
    case DataType::kInt64: {
      const int64_t* data = table.IntColumn(col).data();
      const int64_t lit = std::get<int64_t>(pred.literal);
      for (size_t b = 0; b < zones.size(); ++b) {
        if (!ZoneCanMatchI64(zones[b], lit, pred.op)) continue;
        const int64_t begin = static_cast<int64_t>(b) * Table::kBlockRows;
        const int64_t end = std::min(begin + Table::kBlockRows, n);
        ops.select_i64(data + begin, static_cast<size_t>(end - begin), lit,
                       pred.op, begin, &out);
      }
      break;
    }
    case DataType::kDouble: {
      const double* data = table.DoubleColumn(col).data();
      const double lit = std::get<double>(pred.literal);
      for (size_t b = 0; b < zones.size(); ++b) {
        if (!ZoneCanMatchF64(zones[b], lit, pred.op)) continue;
        const int64_t begin = static_cast<int64_t>(b) * Table::kBlockRows;
        const int64_t end = std::min(begin + Table::kBlockRows, n);
        ops.select_f64(data + begin, static_cast<size_t>(end - begin), lit,
                       pred.op, begin, &out);
      }
      break;
    }
    case DataType::kString: {
      const int32_t* codes = table.StringCodes(col).data();
      if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) {
        // Equality runs over dictionary codes: one string hash for the
        // literal, then pure int32 compares.
        const int32_t lit_code =
            table.DictCode(col, std::get<std::string>(pred.literal));
        if (lit_code < 0) {
          // Literal never appears: kEq matches nothing, kNe everything.
          if (pred.op == CompareOp::kEq) return out;
          return AllRows(n);
        }
        for (size_t b = 0; b < zones.size(); ++b) {
          if (!ZoneCanMatchI64(zones[b], lit_code, pred.op)) continue;
          const int64_t begin = static_cast<int64_t>(b) * Table::kBlockRows;
          const int64_t end = std::min(begin + Table::kBlockRows, n);
          ops.select_i32(codes + begin, static_cast<size_t>(end - begin),
                         lit_code, pred.op, begin, &out);
        }
        break;
      }
      // Ordering and kContains: evaluate once per unique string into a LUT,
      // skip blocks whose code range holds no qualifying entry (prefix sums
      // over the LUT make that check O(1) per block).
      const std::vector<uint8_t> lut = BuildStringLut(table.Dictionary(col), pred);
      std::vector<int64_t> prefix(lut.size() + 1, 0);
      for (size_t c = 0; c < lut.size(); ++c) prefix[c + 1] = prefix[c] + lut[c];
      for (size_t b = 0; b < zones.size(); ++b) {
        const ZoneEntry& z = zones[b];
        if (prefix[static_cast<size_t>(z.imax) + 1] -
                prefix[static_cast<size_t>(z.imin)] ==
            0) {
          continue;
        }
        const int64_t begin = static_cast<int64_t>(b) * Table::kBlockRows;
        const int64_t end = std::min(begin + Table::kBlockRows, n);
        ops.select_lut(codes + begin, static_cast<size_t>(end - begin),
                       lut.data(), begin, &out);
      }
      break;
    }
  }
  return out;
}

Result<std::vector<int64_t>> Refine(const Table& table, const Predicate& pred,
                                    const std::vector<int64_t>& candidates) {
  size_t col;
  COBRA_RETURN_NOT_OK(CheckPredicate(table, pred, &col));
  const int64_t n = table.num_rows();
  for (int64_t r : candidates) {
    if (r < 0 || r >= n) {
      return Status::OutOfRange("candidate row out of range");
    }
  }
  std::vector<int64_t> out;
  const DataType type = table.schema()[col].type;
  switch (type) {
    case DataType::kInt64: {
      const auto& data = table.IntColumn(col);
      const int64_t lit = std::get<int64_t>(pred.literal);
      for (int64_t r : candidates) {
        if (EvalCompare(CompareScalar(data[static_cast<size_t>(r)], lit),
                        pred.op)) {
          out.push_back(r);
        }
      }
      break;
    }
    case DataType::kDouble: {
      const auto& data = table.DoubleColumn(col);
      const double lit = std::get<double>(pred.literal);
      for (int64_t r : candidates) {
        if (EvalCompare(CompareScalar(data[static_cast<size_t>(r)], lit),
                        pred.op)) {
          out.push_back(r);
        }
      }
      break;
    }
    case DataType::kString: {
      const auto& codes = table.StringCodes(col);
      if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) {
        const int32_t lit_code =
            table.DictCode(col, std::get<std::string>(pred.literal));
        const bool keep_on_match = pred.op == CompareOp::kEq;
        for (int64_t r : candidates) {
          if ((codes[static_cast<size_t>(r)] == lit_code) == keep_on_match) {
            out.push_back(r);
          }
        }
        break;
      }
      // Ordering / kContains: memoize the per-unique-string outcome so the
      // string work is O(distinct codes seen), not O(candidates).
      const auto& dict = table.Dictionary(col);
      const std::string& lit = std::get<std::string>(pred.literal);
      std::vector<int8_t> memo(dict.size(), -1);
      for (int64_t r : candidates) {
        const int32_t c = codes[static_cast<size_t>(r)];
        int8_t& m = memo[static_cast<size_t>(c)];
        if (m < 0) {
          const bool hit =
              pred.op == CompareOp::kContains
                  ? dict[static_cast<size_t>(c)].find(lit) != std::string::npos
                  : EvalCompare(
                        NormalizeCmp(dict[static_cast<size_t>(c)].compare(lit)),
                        pred.op);
          m = hit ? 1 : 0;
        }
        if (m) out.push_back(r);
      }
      break;
    }
  }
  return out;
}

Result<std::vector<int64_t>> SelectAll(const Table& table,
                                       const std::vector<Predicate>& preds) {
  if (preds.empty()) return AllRows(table.num_rows());
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> rows, Select(table, preds[0]));
  for (size_t i = 1; i < preds.size() && !rows.empty(); ++i) {
    COBRA_ASSIGN_OR_RETURN(rows, Refine(table, preds[i], rows));
  }
  return rows;
}

Result<Table> Materialize(const Table& table, const std::vector<int64_t>& rows,
                          const std::vector<std::string>& columns) {
  for (int64_t r : rows) {
    if (r < 0 || r >= table.num_rows()) {
      return Status::OutOfRange(
          StringFormat("row %lld out of range", static_cast<long long>(r)));
    }
  }
  std::vector<size_t> col_ids;
  std::vector<ColumnDef> schema;
  if (columns.empty()) {
    for (size_t i = 0; i < table.num_columns(); ++i) {
      col_ids.push_back(i);
      schema.push_back(table.schema()[i]);
    }
  } else {
    for (const std::string& name : columns) {
      COBRA_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
      col_ids.push_back(idx);
      schema.push_back(table.schema()[idx]);
    }
  }
  COBRA_ASSIGN_OR_RETURN(Table out, Table::Create(std::move(schema)));
  for (size_t i = 0; i < col_ids.size(); ++i) {
    out.GatherColumn(table, col_ids[i], i, rows);
  }
  out.FinishGather(static_cast<int64_t>(rows.size()));
  return out;
}

namespace {

/// Chunked, deterministic probe: `probe(l)` appends this row's matches as
/// (left row, right row) pairs. Chunks run in parallel but results are
/// concatenated in chunk order, so output order never depends on
/// scheduling.
template <typename ProbeFn>
void ProbeChunked(int64_t left_rows, int num_threads, const ProbeFn& probe,
                  std::vector<int64_t>* out_left,
                  std::vector<int64_t>* out_right) {
  constexpr int64_t kProbeChunk = 8192;
  const int threads = std::max(1, num_threads);
  if (threads <= 1 || left_rows <= kProbeChunk) {
    for (int64_t l = 0; l < left_rows; ++l) probe(l, out_left, out_right);
    return;
  }
  const int64_t num_chunks = (left_rows + kProbeChunk - 1) / kProbeChunk;
  std::vector<std::vector<int64_t>> lefts(static_cast<size_t>(num_chunks));
  std::vector<std::vector<int64_t>> rights(static_cast<size_t>(num_chunks));
  util::ThreadPool pool(threads);
  pool.ParallelFor(0, num_chunks, 1, [&](int64_t c) {
    const int64_t begin = c * kProbeChunk;
    const int64_t end = std::min(begin + kProbeChunk, left_rows);
    auto& lv = lefts[static_cast<size_t>(c)];
    auto& rv = rights[static_cast<size_t>(c)];
    for (int64_t l = begin; l < end; ++l) probe(l, &lv, &rv);
  });
  size_t total = 0;
  for (const auto& lv : lefts) total += lv.size();
  out_left->reserve(out_left->size() + total);
  out_right->reserve(out_right->size() + total);
  for (int64_t c = 0; c < num_chunks; ++c) {
    const auto& lv = lefts[static_cast<size_t>(c)];
    const auto& rv = rights[static_cast<size_t>(c)];
    out_left->insert(out_left->end(), lv.begin(), lv.end());
    out_right->insert(out_right->end(), rv.begin(), rv.end());
  }
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col,
                       const JoinOptions& options) {
  COBRA_ASSIGN_OR_RETURN(size_t lcol, left.ColumnIndex(left_col));
  COBRA_ASSIGN_OR_RETURN(size_t rcol, right.ColumnIndex(right_col));
  if (left.schema()[lcol].type != right.schema()[rcol].type) {
    return Status::InvalidArgument("join key types differ");
  }
  const DataType key_type = left.schema()[lcol].type;
  // Double keys go through the reference path: its textual ("%.6g") key
  // equality is part of the observable contract and has no integer-key
  // equivalent. No query plan joins on doubles.
  if (key_type == DataType::kDouble) {
    return reference::HashJoin(left, right, left_col, right_col);
  }

  // Output schema: left then right, prefixing collisions.
  std::vector<ColumnDef> schema = left.schema();
  for (const ColumnDef& def : right.schema()) {
    ColumnDef out_def = def;
    for (const ColumnDef& l : left.schema()) {
      if (l.name == def.name) {
        out_def.name = "right_" + def.name;
        break;
      }
    }
    schema.push_back(out_def);
  }
  COBRA_ASSIGN_OR_RETURN(Table out, Table::Create(std::move(schema)));

  // The contract fixes the *output* order, not the build side: rows follow
  // left row order, equal-key right matches follow right row order. The
  // right-build probe emits pairs in exactly that order; the left-build
  // path re-sorts its pairs into it. kAuto builds on the smaller side
  // (hash-table construction costs a few probes' worth per row) unless the
  // left-build re-sort — sized by the estimated match count from the key
  // columns' exact NDV — would eat the gain.
  bool build_on_left = options.build_side == JoinBuildSide::kLeft;
  if (options.build_side == JoinBuildSide::kAuto) {
    COBRA_ASSIGN_OR_RETURN(int64_t lndv, left.Ndv(lcol));
    COBRA_ASSIGN_OR_RETURN(int64_t rndv, right.Ndv(rcol));
    const double lrows = static_cast<double>(left.num_rows());
    const double rrows = static_cast<double>(right.num_rows());
    const double ndv = static_cast<double>(std::max<int64_t>({1, lndv, rndv}));
    const double est_matches = lrows * rrows / ndv;
    constexpr double kBuildCostPerRow = 4.0;  // vs 1.0 per probed row
    const double cost_build_right = kBuildCostPerRow * rrows + lrows;
    const double cost_build_left = kBuildCostPerRow * lrows + rrows +
                                   est_matches * std::log2(est_matches + 2.0);
    build_on_left = cost_build_left < cost_build_right;
  }

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  if (build_on_left) {
    if (key_type == DataType::kInt64) {
      const auto& lkeys = left.IntColumn(lcol);
      std::unordered_map<int64_t, std::vector<int64_t>> build;
      build.reserve(lkeys.size());
      for (int64_t l = 0; l < left.num_rows(); ++l) {
        build[lkeys[static_cast<size_t>(l)]].push_back(l);
      }
      const auto& rkeys = right.IntColumn(rcol);
      ProbeChunked(
          right.num_rows(), options.num_threads,
          [&](int64_t r, std::vector<int64_t>* lv, std::vector<int64_t>* rv) {
            auto it = build.find(rkeys[static_cast<size_t>(r)]);
            if (it == build.end()) return;
            for (int64_t l : it->second) {
              lv->push_back(l);
              rv->push_back(r);
            }
          },
          &left_rows, &right_rows);
    } else {
      // Mirror of the right-build string path: translate each unique right
      // string into the left column's code space once.
      const auto& lkeys = left.StringCodes(lcol);
      std::unordered_map<int32_t, std::vector<int64_t>> build;
      build.reserve(left.Dictionary(lcol).size());
      for (int64_t l = 0; l < left.num_rows(); ++l) {
        build[lkeys[static_cast<size_t>(l)]].push_back(l);
      }
      const auto& rdict = right.Dictionary(rcol);
      std::vector<int32_t> translate(rdict.size());
      for (size_t c = 0; c < rdict.size(); ++c) {
        translate[c] = left.DictCode(lcol, rdict[c]);
      }
      const auto& rkeys = right.StringCodes(rcol);
      ProbeChunked(
          right.num_rows(), options.num_threads,
          [&](int64_t r, std::vector<int64_t>* lv, std::vector<int64_t>* rv) {
            const int32_t t =
                translate[static_cast<size_t>(rkeys[static_cast<size_t>(r)])];
            if (t < 0) return;
            auto it = build.find(t);
            if (it == build.end()) return;
            for (int64_t l : it->second) {
              lv->push_back(l);
              rv->push_back(r);
            }
          },
          &left_rows, &right_rows);
    }
    // Right-major pairs → the contract's (left row, right row) order. Each
    // pair is unique, so the sort is total and deterministic.
    std::vector<size_t> order(left_rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (left_rows[a] != left_rows[b]) return left_rows[a] < left_rows[b];
      return right_rows[a] < right_rows[b];
    });
    std::vector<int64_t> sorted_left(order.size());
    std::vector<int64_t> sorted_right(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted_left[i] = left_rows[order[i]];
      sorted_right[i] = right_rows[order[i]];
    }
    left_rows = std::move(sorted_left);
    right_rows = std::move(sorted_right);
  } else if (key_type == DataType::kInt64) {
    const auto& rkeys = right.IntColumn(rcol);
    std::unordered_map<int64_t, std::vector<int64_t>> build;
    build.reserve(rkeys.size());
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      build[rkeys[static_cast<size_t>(r)]].push_back(r);
    }
    const auto& lkeys = left.IntColumn(lcol);
    ProbeChunked(
        left.num_rows(), options.num_threads,
        [&](int64_t l, std::vector<int64_t>* lv, std::vector<int64_t>* rv) {
          auto it = build.find(lkeys[static_cast<size_t>(l)]);
          if (it == build.end()) return;
          for (int64_t r : it->second) {
            lv->push_back(l);
            rv->push_back(r);
          }
        },
        &left_rows, &right_rows);
  } else {
    // String keys join on dictionary codes: hash each *unique* left string
    // once to translate it into the right column's code space, then the
    // probe is pure int work.
    const auto& rkeys = right.StringCodes(rcol);
    std::unordered_map<int32_t, std::vector<int64_t>> build;
    build.reserve(right.Dictionary(rcol).size());
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      build[rkeys[static_cast<size_t>(r)]].push_back(r);
    }
    const auto& ldict = left.Dictionary(lcol);
    std::vector<int32_t> translate(ldict.size());
    for (size_t c = 0; c < ldict.size(); ++c) {
      translate[c] = right.DictCode(rcol, ldict[c]);
    }
    const auto& lkeys = left.StringCodes(lcol);
    ProbeChunked(
        left.num_rows(), options.num_threads,
        [&](int64_t l, std::vector<int64_t>* lv, std::vector<int64_t>* rv) {
          const int32_t t =
              translate[static_cast<size_t>(lkeys[static_cast<size_t>(l)])];
          if (t < 0) return;
          auto it = build.find(t);
          if (it == build.end()) return;
          for (int64_t r : it->second) {
            lv->push_back(l);
            rv->push_back(r);
          }
        },
        &left_rows, &right_rows);
  }

  for (size_t c = 0; c < left.num_columns(); ++c) {
    out.GatherColumn(left, c, c, left_rows);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    out.GatherColumn(right, c, left.num_columns() + c, right_rows);
  }
  out.FinishGather(static_cast<int64_t>(left_rows.size()));
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col) {
  return HashJoin(left, right, left_col, right_col, JoinOptions{});
}

Result<std::vector<int64_t>> OrderBy(const Table& table,
                                     const std::string& column, bool desc,
                                     size_t limit) {
  COBRA_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  std::vector<int64_t> rows = AllRows(table.num_rows());
  // Typed comparators over the raw column; ties break by row id, which
  // makes the order total and deterministic, so partial_sort/sort match
  // the reference stable_sort exactly.
  auto sort_rows = [&](auto cmp3) {
    auto less = [&](int64_t a, int64_t b) {
      const int cmp = cmp3(a, b);
      if (cmp == 0) return a < b;
      return desc ? cmp > 0 : cmp < 0;
    };
    if (limit > 0 && limit < rows.size()) {
      std::partial_sort(rows.begin(),
                        rows.begin() + static_cast<int64_t>(limit), rows.end(),
                        less);
      rows.resize(limit);
    } else {
      std::sort(rows.begin(), rows.end(), less);
    }
  };
  switch (table.schema()[col].type) {
    case DataType::kInt64: {
      const auto& data = table.IntColumn(col);
      sort_rows([&](int64_t a, int64_t b) {
        return CompareScalar(data[static_cast<size_t>(a)],
                             data[static_cast<size_t>(b)]);
      });
      break;
    }
    case DataType::kDouble: {
      const auto& data = table.DoubleColumn(col);
      sort_rows([&](int64_t a, int64_t b) {
        return CompareScalar(data[static_cast<size_t>(a)],
                             data[static_cast<size_t>(b)]);
      });
      break;
    }
    case DataType::kString: {
      const auto& data = table.StringColumn(col);
      sort_rows([&](int64_t a, int64_t b) {
        return NormalizeCmp(data[static_cast<size_t>(a)].compare(
            data[static_cast<size_t>(b)]));
      });
      break;
    }
  }
  return rows;
}

Result<std::vector<GroupRow>> GroupBy(const Table& table,
                                      const std::string& key_column,
                                      AggregateOp op,
                                      const std::string& value_column) {
  COBRA_ASSIGN_OR_RETURN(size_t key_col, table.ColumnIndex(key_column));
  size_t value_col = 0;
  bool need_value = op != AggregateOp::kCount;
  if (need_value) {
    COBRA_ASSIGN_OR_RETURN(value_col, table.ColumnIndex(value_column));
    DataType t = table.schema()[value_col].type;
    if (t != DataType::kInt64 && t != DataType::kDouble) {
      return Status::InvalidArgument("aggregate value column must be numeric");
    }
  }

  struct Accumulator {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t count = 0;
  };
  std::map<std::string, std::pair<Value, Accumulator>> groups;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    COBRA_ASSIGN_OR_RETURN(Value key, table.GetValue(r, key_col));
    double v = 0.0;
    if (need_value) {
      COBRA_ASSIGN_OR_RETURN(Value raw, table.GetValue(r, value_col));
      v = std::holds_alternative<int64_t>(raw)
              ? static_cast<double>(std::get<int64_t>(raw))
              : std::get<double>(raw);
    }
    auto [it, inserted] =
        groups.try_emplace(ValueToString(key), key, Accumulator{});
    Accumulator& acc = it->second.second;
    if (acc.count == 0) {
      acc.min = acc.max = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
    acc.sum += v;
    acc.count++;
  }

  std::vector<GroupRow> out;
  out.reserve(groups.size());
  for (auto& [text_key, entry] : groups) {
    GroupRow row;
    row.key = std::move(entry.first);
    row.count = entry.second.count;
    switch (op) {
      case AggregateOp::kCount:
        row.aggregate = static_cast<double>(entry.second.count);
        break;
      case AggregateOp::kSum:
        row.aggregate = entry.second.sum;
        break;
      case AggregateOp::kMin:
        row.aggregate = entry.second.min;
        break;
      case AggregateOp::kMax:
        row.aggregate = entry.second.max;
        break;
      case AggregateOp::kAvg:
        row.aggregate = entry.second.count
                            ? entry.second.sum / entry.second.count
                            : 0.0;
        break;
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const GroupRow& a, const GroupRow& b) {
    return CompareValues(a.key, b.key) < 0;
  });
  return out;
}

// ---------------------------------------------------------------------------
// The row-at-a-time reference operators (pre-vectorization implementations,
// kept verbatim as the equivalence oracle — see ops.h).

namespace reference {

namespace {

/// Applies `pred` to row `row` of a pre-resolved column.
template <typename Getter>
bool RowMatches(const Predicate& pred, const Getter& get, int64_t row) {
  return EvalCompare(CompareValues(get(row), pred.literal), pred.op);
}

}  // namespace

Result<std::vector<int64_t>> Select(const Table& table, const Predicate& pred) {
  size_t col;
  COBRA_RETURN_NOT_OK(CheckPredicate(table, pred, &col));
  std::vector<int64_t> out;
  const int64_t n = table.num_rows();
  const DataType type = table.schema()[col].type;

  if (pred.op == CompareOp::kContains) {
    const auto& data = table.StringColumn(col);
    const std::string& needle = std::get<std::string>(pred.literal);
    for (int64_t r = 0; r < n; ++r) {
      if (data[static_cast<size_t>(r)].find(needle) != std::string::npos) {
        out.push_back(r);
      }
    }
    return out;
  }
  switch (type) {
    case DataType::kInt64: {
      const auto& data = table.IntColumn(col);
      int64_t lit = std::get<int64_t>(pred.literal);
      for (int64_t r = 0; r < n; ++r) {
        int64_t v = data[static_cast<size_t>(r)];
        int cmp = v < lit ? -1 : (v > lit ? 1 : 0);
        if (EvalCompare(cmp, pred.op)) out.push_back(r);
      }
      break;
    }
    case DataType::kDouble: {
      const auto& data = table.DoubleColumn(col);
      double lit = std::get<double>(pred.literal);
      for (int64_t r = 0; r < n; ++r) {
        double v = data[static_cast<size_t>(r)];
        int cmp = v < lit ? -1 : (v > lit ? 1 : 0);
        if (EvalCompare(cmp, pred.op)) out.push_back(r);
      }
      break;
    }
    case DataType::kString: {
      const auto& data = table.StringColumn(col);
      const std::string& lit = std::get<std::string>(pred.literal);
      for (int64_t r = 0; r < n; ++r) {
        int cmp = data[static_cast<size_t>(r)].compare(lit);
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
        if (EvalCompare(cmp, pred.op)) out.push_back(r);
      }
      break;
    }
  }
  return out;
}

Result<std::vector<int64_t>> Refine(const Table& table, const Predicate& pred,
                                    const std::vector<int64_t>& candidates) {
  size_t col;
  COBRA_RETURN_NOT_OK(CheckPredicate(table, pred, &col));
  std::vector<int64_t> out;
  for (int64_t r : candidates) {
    if (r < 0 || r >= table.num_rows()) {
      return Status::OutOfRange("candidate row out of range");
    }
    bool keep;
    if (pred.op == CompareOp::kContains) {
      keep = table.StringColumn(col)[static_cast<size_t>(r)].find(
                 std::get<std::string>(pred.literal)) != std::string::npos;
    } else {
      COBRA_ASSIGN_OR_RETURN(Value v, table.GetValue(r, col));
      keep = EvalCompare(CompareValues(v, pred.literal), pred.op);
    }
    if (keep) out.push_back(r);
  }
  return out;
}

Result<std::vector<int64_t>> SelectAll(const Table& table,
                                       const std::vector<Predicate>& preds) {
  if (preds.empty()) return AllRows(table.num_rows());
  // Qualified: ADL would also find the vectorized storage::Select/Refine.
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                         reference::Select(table, preds[0]));
  for (size_t i = 1; i < preds.size() && !rows.empty(); ++i) {
    COBRA_ASSIGN_OR_RETURN(rows, reference::Refine(table, preds[i], rows));
  }
  return rows;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col) {
  COBRA_ASSIGN_OR_RETURN(size_t lcol, left.ColumnIndex(left_col));
  COBRA_ASSIGN_OR_RETURN(size_t rcol, right.ColumnIndex(right_col));
  if (left.schema()[lcol].type != right.schema()[rcol].type) {
    return Status::InvalidArgument("join key types differ");
  }

  // Output schema: left then right, prefixing collisions.
  std::vector<ColumnDef> schema = left.schema();
  for (const ColumnDef& def : right.schema()) {
    ColumnDef out_def = def;
    for (const ColumnDef& l : left.schema()) {
      if (l.name == def.name) {
        out_def.name = "right_" + def.name;
        break;
      }
    }
    schema.push_back(out_def);
  }
  COBRA_ASSIGN_OR_RETURN(Table out, Table::Create(std::move(schema)));

  // Build on the right side, probe with the left (keeps left order).
  std::unordered_map<std::string, std::vector<int64_t>> build;
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    COBRA_ASSIGN_OR_RETURN(Value v, right.GetValue(r, rcol));
    build[ValueToString(v)].push_back(r);
  }
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    COBRA_ASSIGN_OR_RETURN(Value v, left.GetValue(l, lcol));
    auto it = build.find(ValueToString(v));
    if (it == build.end()) continue;
    for (int64_t r : it->second) {
      std::vector<Value> row;
      row.reserve(out.num_columns());
      for (size_t c = 0; c < left.num_columns(); ++c) {
        COBRA_ASSIGN_OR_RETURN(Value lv, left.GetValue(l, c));
        row.push_back(std::move(lv));
      }
      for (size_t c = 0; c < right.num_columns(); ++c) {
        COBRA_ASSIGN_OR_RETURN(Value rv, right.GetValue(r, c));
        row.push_back(std::move(rv));
      }
      COBRA_RETURN_NOT_OK(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<std::vector<int64_t>> OrderBy(const Table& table,
                                     const std::string& column, bool desc,
                                     size_t limit) {
  COBRA_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  std::vector<int64_t> rows = AllRows(table.num_rows());
  std::vector<Value> keys;
  keys.reserve(rows.size());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    COBRA_ASSIGN_OR_RETURN(Value v, table.GetValue(r, col));
    keys.push_back(std::move(v));
  }
  std::stable_sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    int cmp = CompareValues(keys[static_cast<size_t>(a)],
                            keys[static_cast<size_t>(b)]);
    if (cmp == 0) return a < b;
    return desc ? cmp > 0 : cmp < 0;
  });
  if (limit > 0 && rows.size() > limit) rows.resize(limit);
  return rows;
}

}  // namespace reference

}  // namespace cobra::storage
