#pragma once

/// \file table.h
/// A small in-process column store: the meta-index backing store.
///
/// Ref [1] runs IR inside a main-memory column DBMS (Monet); this module is
/// the minimal column-at-a-time substrate needed to express the same plan
/// shapes: typed columns, selection vectors, hash joins, order-by/limit.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace cobra::storage {

enum class DataType { kInt64, kDouble, kString };

const char* DataTypeToString(DataType type);

/// A single cell value.
using Value = std::variant<int64_t, double, std::string>;

DataType TypeOf(const Value& value);
std::string ValueToString(const Value& value);

/// Total order within a type: -1 / 0 / +1. Comparing across types is a
/// caller bug (checked by the operators that use it).
int CompareValues(const Value& a, const Value& b);

struct ColumnDef {
  std::string name;
  DataType type;
};

/// An append-only typed table with columnar storage.
class Table {
 public:
  /// Creates an empty table. Column names must be unique and non-empty.
  static Result<Table> Create(std::vector<ColumnDef> schema);

  const std::vector<ColumnDef>& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.size(); }

  /// Index of a named column.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends one row; values must match the schema arity and types.
  Status AppendRow(std::vector<Value> values);

  /// Cell accessors. Row/column must be in range; type must match.
  Result<int64_t> GetInt(int64_t row, size_t col) const;
  Result<double> GetDouble(int64_t row, size_t col) const;
  Result<std::string> GetString(int64_t row, size_t col) const;
  Result<Value> GetValue(int64_t row, size_t col) const;

  /// Raw typed column access for column-at-a-time operators.
  const std::vector<int64_t>& IntColumn(size_t col) const;
  const std::vector<double>& DoubleColumn(size_t col) const;
  const std::vector<std::string>& StringColumn(size_t col) const;

 private:
  using ColumnData = std::variant<std::vector<int64_t>, std::vector<double>,
                                  std::vector<std::string>>;

  std::vector<ColumnDef> schema_;
  std::vector<ColumnData> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace cobra::storage
