#pragma once

/// \file table.h
/// A small in-process column store: the meta-index backing store.
///
/// Ref [1] runs IR inside a main-memory column DBMS (Monet); this module is
/// the minimal column-at-a-time substrate needed to express the same plan
/// shapes: typed columns, selection vectors, hash joins, order-by/limit.
///
/// Two acceleration structures are maintained at append time (DESIGN.md
/// §4f):
///  * string columns are dictionary-encoded — every row also carries an
///    int32 code into a per-column dictionary of unique strings (insertion
///    order), so predicate evaluation never touches string bytes per row;
///  * every column keeps per-block zone maps (min/max over `kBlockRows`-row
///    blocks, plus a has-NaN flag for doubles) that let the selection
///    operators skip blocks that cannot contain a match.

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "util/status.h"

namespace cobra::storage {

enum class DataType { kInt64, kDouble, kString };

const char* DataTypeToString(DataType type);

/// A single cell value.
using Value = std::variant<int64_t, double, std::string>;

DataType TypeOf(const Value& value);
std::string ValueToString(const Value& value);

/// Total order within a type: -1 / 0 / +1. Comparing across types is a
/// caller bug (checked by the operators that use it).
int CompareValues(const Value& a, const Value& b);

struct ColumnDef {
  std::string name;
  DataType type;
};

struct JoinOptions;
class Table;
namespace segment {
class TableSerde;  // segment (de)serialization back door, see segment.h
}
Result<Table> Materialize(const Table& table, const std::vector<int64_t>& rows,
                          const std::vector<std::string>& columns);
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col,
                       const JoinOptions& options);

/// Per-block column statistics for zone-map skipping. Only the fields of
/// the column's type are maintained: `imin`/`imax` for int64 columns *and*
/// for the dictionary codes of string columns; `dmin`/`dmax`/`has_nan` for
/// double columns (min/max ignore NaN; `has_nan` records its presence, since
/// NaN ties under `CompareValues` and therefore matches kEq/kLe/kGe).
struct ZoneEntry {
  int64_t imin = std::numeric_limits<int64_t>::max();
  int64_t imax = std::numeric_limits<int64_t>::min();
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
  bool has_nan = false;
};

/// Whole-column statistics for the query planner (DESIGN.md §4g). All
/// fields are exact and maintained incrementally on append: `ndv` counts
/// dictionary entries for string columns, distinct values for int64
/// columns, and distinct bit patterns for double columns (so 0.0 and -0.0
/// count separately and every NaN payload is one value — the planner only
/// uses NDV as a density estimate, never for result pruning). `range` is
/// the fold of the column's zone maps; its defaults (imin > imax,
/// dmin > dmax) signal an empty — or, for doubles, all-NaN — column.
struct ColumnStats {
  int64_t rows = 0;
  int64_t ndv = 0;
  ZoneEntry range;
};

/// An append-only typed table with columnar storage.
class Table {
 public:
  /// Rows per zone-map block; also the granule of the block-at-a-time
  /// selection kernels (compile-time knob, see README).
  static constexpr int64_t kBlockRows = 2048;

  /// Creates an empty table. Column names must be unique and non-empty.
  static Result<Table> Create(std::vector<ColumnDef> schema);

  const std::vector<ColumnDef>& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.size(); }

  /// Index of a named column.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends one row; values must match the schema arity and types.
  Status AppendRow(std::vector<Value> values);

  /// Cell accessors. Row/column must be in range; type must match.
  Result<int64_t> GetInt(int64_t row, size_t col) const;
  Result<double> GetDouble(int64_t row, size_t col) const;
  Result<std::string> GetString(int64_t row, size_t col) const;
  Result<Value> GetValue(int64_t row, size_t col) const;

  /// Raw typed column access for column-at-a-time operators.
  const std::vector<int64_t>& IntColumn(size_t col) const;
  const std::vector<double>& DoubleColumn(size_t col) const;
  const std::vector<std::string>& StringColumn(size_t col) const;

  /// Dictionary encoding of a string column: per-row int32 codes into the
  /// column's dictionary of unique strings (insertion order).
  const std::vector<int32_t>& StringCodes(size_t col) const;
  const std::vector<std::string>& Dictionary(size_t col) const;
  /// Code of `s` in the column's dictionary, or -1 when no row ever held it.
  int32_t DictCode(size_t col, const std::string& s) const;

  /// Zone maps of a column: entry b covers rows [b*kBlockRows,
  /// (b+1)*kBlockRows). Maintained incrementally on every append.
  const std::vector<ZoneEntry>& Zones(size_t col) const { return zones_[col]; }

  /// Planner statistics of column `col`: exact row/distinct counts plus the
  /// folded zone-map range. O(number of zone-map blocks).
  Result<ColumnStats> Stats(size_t col) const;
  /// Exact number of distinct values in column `col` (see ColumnStats for
  /// what "distinct" means per type). O(1).
  Result<int64_t> Ndv(size_t col) const;
  /// Exact number of rows of string column `col` holding dictionary code
  /// `code`; 0 when the code is out of range (e.g. the -1 of a DictCode
  /// miss). O(1).
  Result<int64_t> CodeCount(size_t col, int32_t code) const;

 private:
  /// A dictionary-encoded string column: `values` is the row-aligned raw
  /// string store (kept for accessors and materialization), `codes` the
  /// row-aligned dictionary codes.
  struct StringColumnData {
    std::vector<std::string> values;
    std::vector<int32_t> codes;
    std::vector<std::string> dict;
    std::unordered_map<std::string, int32_t> dict_index;
    /// code_rows[c] = number of rows holding dictionary code c (the exact
    /// per-value histogram behind CodeCount; updated in ExtendZones).
    std::vector<int64_t> code_rows;

    int32_t Encode(const std::string& s);
  };

  using ColumnData =
      std::variant<std::vector<int64_t>, std::vector<double>, StringColumnData>;

  // Bulk-gather back door for the relational operators (Materialize,
  // HashJoin): appends src rows column-at-a-time without the per-cell
  // Value round trip, then FinishGather extends row count and zone maps.
  friend Result<Table> Materialize(const Table& table,
                                   const std::vector<int64_t>& rows,
                                   const std::vector<std::string>& columns);
  friend Result<Table> HashJoin(const Table& left, const Table& right,
                                const std::string& left_col,
                                const std::string& right_col,
                                const JoinOptions& options);
  // Segment storage appends decoded column deltas directly (dict codes
  // included) and reuses FinishGather/ExtendZones to rebuild the derived
  // zone maps, NDV sets and code histograms — never serialized, always
  // recomputed (DESIGN.md §4h).
  friend class segment::TableSerde;

  /// Appends `rows` of `src` column `src_col` onto this table's column
  /// `dst_col`. Caller guarantees matching types and in-range rows; callers
  /// must gather the same row count into every column, then call
  /// FinishGather once.
  void GatherColumn(const Table& src, size_t src_col, size_t dst_col,
                    const std::vector<int64_t>& rows);
  /// Completes a bulk gather of `added` rows: bumps num_rows_ and extends
  /// every column's zone maps over the appended range.
  void FinishGather(int64_t added);

  /// Extends the zone maps of column `col` over rows [from, to).
  void ExtendZones(size_t col, int64_t from, int64_t to);

  std::vector<ColumnDef> schema_;
  std::vector<ColumnData> columns_;
  std::vector<std::vector<ZoneEntry>> zones_;
  /// Distinct-value sets of int64/double columns (bit patterns; unused for
  /// strings, whose dictionary already is the distinct set). Updated in
  /// ExtendZones so both AppendRow and the bulk-gather path maintain them.
  std::vector<std::unordered_set<uint64_t>> distinct_;
  int64_t num_rows_ = 0;
};

}  // namespace cobra::storage
