#include "storage/stats.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace cobra::storage {

namespace {

SelectivityEstimate Empty() { return {0.0, true, true}; }

double Clamp01(double f) { return std::min(1.0, std::max(0.0, f)); }

}  // namespace

Result<SelectivityEstimate> EstimateSelectivity(const Table& table,
                                                const Predicate& pred) {
  COBRA_RETURN_NOT_OK(ValidatePredicate(table, pred));
  COBRA_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(pred.column));
  COBRA_ASSIGN_OR_RETURN(ColumnStats stats, table.Stats(col));
  if (stats.rows == 0) return Empty();
  const double rows = static_cast<double>(stats.rows);
  const DataType type = table.schema()[col].type;

  if (type == DataType::kString) {
    // Exact: fold the per-code row histogram over the qualifying
    // dictionary entries (one per *unique* string, never per row).
    const std::string& lit = std::get<std::string>(pred.literal);
    if (pred.op == CompareOp::kEq || pred.op == CompareOp::kNe) {
      const int32_t code = table.DictCode(col, lit);
      COBRA_ASSIGN_OR_RETURN(int64_t count, table.CodeCount(col, code));
      const int64_t matches =
          pred.op == CompareOp::kEq ? count : stats.rows - count;
      return SelectivityEstimate{matches / rows, true, matches == 0};
    }
    const auto& dict = table.Dictionary(col);
    int64_t matches = 0;
    for (size_t c = 0; c < dict.size(); ++c) {
      bool hit;
      if (pred.op == CompareOp::kContains) {
        hit = dict[c].find(lit) != std::string::npos;
      } else {
        const int cmp = dict[c].compare(lit);
        hit = EvalCompare(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0), pred.op);
      }
      if (hit) {
        COBRA_ASSIGN_OR_RETURN(int64_t count,
                               table.CodeCount(col, static_cast<int32_t>(c)));
        matches += count;
      }
    }
    return SelectivityEstimate{matches / rows, true, matches == 0};
  }

  const double ndv = static_cast<double>(std::max<int64_t>(1, stats.ndv));
  if (type == DataType::kInt64) {
    const int64_t lit = std::get<int64_t>(pred.literal);
    const int64_t lo = stats.range.imin;
    const int64_t hi = stats.range.imax;
    const double width =
        static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
    switch (pred.op) {
      case CompareOp::kEq:
        if (lit < lo || lit > hi) return Empty();
        return SelectivityEstimate{Clamp01(1.0 / ndv), false, false};
      case CompareOp::kNe:
        if (lo == hi && lo == lit) return Empty();
        return SelectivityEstimate{Clamp01(1.0 - 1.0 / ndv), false, false};
      case CompareOp::kLt:
        if (lo >= lit) return Empty();
        return SelectivityEstimate{
            Clamp01(static_cast<double>(lit - lo) / width), false, false};
      case CompareOp::kLe:
        if (lo > lit) return Empty();
        return SelectivityEstimate{
            Clamp01((static_cast<double>(lit - lo) + 1.0) / width), false,
            false};
      case CompareOp::kGt:
        if (hi <= lit) return Empty();
        return SelectivityEstimate{
            Clamp01(static_cast<double>(hi - lit) / width), false, false};
      case CompareOp::kGe:
        if (hi < lit) return Empty();
        return SelectivityEstimate{
            Clamp01((static_cast<double>(hi - lit) + 1.0) / width), false,
            false};
      case CompareOp::kContains:
        break;  // unreachable: ValidatePredicate rejects kContains on int64
    }
    return SelectivityEstimate{};
  }

  // Doubles mirror ZoneCanMatchF64: NaN ties under CompareValues, so it
  // matches kEq/kLe/kGe against anything (and a NaN literal matches every
  // row under those ops).
  const double lit = std::get<double>(pred.literal);
  const bool nan_matches = pred.op == CompareOp::kEq ||
                           pred.op == CompareOp::kLe ||
                           pred.op == CompareOp::kGe;
  const bool has_nan = stats.range.has_nan;
  if (std::isnan(lit)) {
    if (!nan_matches) return Empty();
    return SelectivityEstimate{1.0, true, false};
  }
  const double lo = stats.range.dmin;
  const double hi = stats.range.dmax;
  if (lo > hi) {
    // Every row is NaN: tie ops match all rows, ordering ops none.
    if (!nan_matches) return Empty();
    return SelectivityEstimate{1.0, true, false};
  }
  const double width = hi - lo;
  double fraction = 0.0;
  bool empty = false;
  switch (pred.op) {
    case CompareOp::kEq:
      empty = lit < lo || lit > hi;
      fraction = Clamp01(1.0 / ndv);
      break;
    case CompareOp::kNe:
      empty = lo == hi && lo == lit;
      fraction = Clamp01(1.0 - 1.0 / ndv);
      break;
    case CompareOp::kLt:
      empty = lo >= lit;
      fraction = width > 0 ? Clamp01((lit - lo) / width) : (empty ? 0.0 : 1.0);
      break;
    case CompareOp::kLe:
      empty = lo > lit;
      fraction = width > 0 ? Clamp01((lit - lo) / width) : (empty ? 0.0 : 1.0);
      break;
    case CompareOp::kGt:
      empty = hi <= lit;
      fraction = width > 0 ? Clamp01((hi - lit) / width) : (empty ? 0.0 : 1.0);
      break;
    case CompareOp::kGe:
      empty = hi < lit;
      fraction = width > 0 ? Clamp01((hi - lit) / width) : (empty ? 0.0 : 1.0);
      break;
    case CompareOp::kContains:
      break;  // unreachable: ValidatePredicate rejects kContains on double
  }
  if (has_nan && nan_matches) {
    // NaN rows match regardless of the range check; their share is unknown,
    // so fold in a 1/ndv floor and drop any emptiness claim.
    empty = false;
    fraction = std::max(fraction, Clamp01(1.0 / ndv));
  }
  if (empty) return Empty();
  return SelectivityEstimate{fraction, false, false};
}

Result<double> EstimateConjunctionRows(const Table& table,
                                       const std::vector<Predicate>& preds) {
  double fraction = 1.0;
  for (const Predicate& pred : preds) {
    COBRA_ASSIGN_OR_RETURN(SelectivityEstimate est,
                           EstimateSelectivity(table, pred));
    if (est.provably_empty) return 0.0;
    fraction *= est.fraction;
  }
  return fraction * static_cast<double>(table.num_rows());
}

}  // namespace cobra::storage
