#pragma once

/// \file segment.h
/// Writing and reading immutable library segments (DESIGN.md §4h).
///
/// A segment captures one flush window of library state as typed sections
/// (format.h). Column-store tables are persisted as *row deltas* — raw
/// typed arrays plus new dictionary entries and codes for string columns;
/// derived acceleration state (zone maps, NDV sets, code histograms,
/// oid→row indexes, adjacency lists) is never serialized, always rebuilt.
/// The finalized text index is persisted losslessly (exact doubles, raw
/// Posting[]/BlockMeta[] arrays) so a restored library answers queries
/// bit-identically to the one that wrote it; the reader points the
/// restored index's spans straight into the memory mapping (zero-copy) or
/// materializes owned copies (heap mode, the benchmark's control).
///
/// Layering: this library sits above storage/text/webspace/core and below
/// the engine — the engine's DurableLibrary assembles LibraryDelta from a
/// DigitalLibrary and reassembles one from RestoredParts.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/meta_index.h"
#include "storage/segment/format.h"
#include "storage/segment/io.h"
#include "storage/table.h"
#include "text/compressed_index.h"
#include "text/inverted_index.h"
#include "util/thread_pool.h"
#include "vision/signature.h"
#include "webspace/schema.h"
#include "webspace/store.h"

namespace cobra::storage::segment {

/// Serialization back door into storage::Table (befriended there): writes
/// row deltas and applies them, reusing the table's own incremental
/// zone-map/NDV maintenance for the derived state.
class TableSerde {
 public:
  /// Serializes rows [from_row, num_rows) of `table`, including the whole
  /// ColumnStats of the post-delta table for load-time verification.
  static Status WriteDelta(const Table& table, int64_t from_row,
                           ByteWriter* out);

  /// Appends a delta onto `table`. The delta must start exactly at the
  /// table's current row count (segments apply in manifest order) and its
  /// schema arity/types must match. Recomputed column stats are verified
  /// against the persisted ones — a mismatch means corruption the CRC
  /// somehow missed, or a delta applied out of order.
  static Status ApplyDelta(Table* table, ByteReader* in);
};

/// One flush window of library state, by reference (the writer does not
/// own anything). Assembled by the engine layer.
struct LibraryDelta {
  int64_t index_epoch = 0;
  const webspace::WebspaceStore* store = nullptr;
  /// Per class/association (schema order): first row of this delta.
  std::vector<int64_t> class_from_rows;
  std::vector<int64_t> assoc_from_rows;
  const core::MetaIndex* meta = nullptr;
  int64_t shots_from_row = 0;
  int64_t objects_from_row = 0;
  int64_t events_from_row = 0;
  /// Oids of videos indexed in this window (suffix of indexed_videos()).
  std::vector<int64_t> new_video_oids;
  /// Full finalized text snapshot; null while the index is still open or
  /// when an earlier segment already persisted it.
  const text::InvertedIndex* text = nullptr;
  /// Compressed snapshot persisted alongside `text` (may be null).
  const text::CompressedInvertedIndex* compressed_text = nullptr;
  /// Interviews added in this window while the index was still open.
  std::vector<std::pair<int64_t, std::string>> pending_interviews;
  /// Shot signature records added in this window, as the chunk spans the
  /// similarity index hands out (similarity::SignatureIndex::OwnedFrom);
  /// concatenated into one kSignatures section.
  std::vector<std::pair<const vision::SignatureRecord*, size_t>>
      signature_chunks;
};

/// Serializes `delta` into a segment file at `path` (atomic write). With a
/// pool, the independent section payloads (webspace delta, meta-index
/// deltas, text snapshot, signatures) are built concurrently; the output
/// bytes are identical either way — sections land in a fixed order and
/// each build writes only its own buffer.
Status WriteSegment(const LibraryDelta& delta, const std::string& path,
                    util::ThreadPool* pool = nullptr);

/// An opened, validated segment. Owns the memory mapping; every view the
/// reader hands out (restored text spans, compressed cursors) borrows from
/// it and dies with it.
class SegmentReader {
 public:
  enum class Verify {
    kFull,  ///< header + section table + every section CRC (default)
    kNone,  ///< header + section table CRCs only (benchmark knob)
  };

  static Result<std::unique_ptr<SegmentReader>> Open(
      const std::string& path, Verify verify = Verify::kFull);

  int64_t index_epoch() const { return index_epoch_; }
  bool text_finalized() const { return text_finalized_; }
  const std::vector<int64_t>& new_video_oids() const {
    return new_video_oids_;
  }
  bool has_section(SectionId id) const;

  /// Applies this segment's webspace delta. On the first segment `schema`
  /// is decoded and the per-class/association tables are created; later
  /// segments verify the schema matches and append.
  Status ApplyWebspace(std::optional<webspace::ConceptSchema>* schema,
                       std::map<std::string, Table>* class_tables,
                       std::map<std::string, Table>* assoc_tables) const;

  /// Applies this segment's meta-index deltas onto the three tables
  /// (created empty via CreateMetaTables()).
  Status ApplyMeta(Table* shots, Table* objects, Table* events) const;

  /// Restores the finalized text index from the kTextIndex snapshot.
  /// With copy=false the postings/blocks spans point into this reader's
  /// mapping (the reader must outlive the index and every copy of it).
  Result<text::InvertedIndex> LoadTextIndex(bool copy) const;

  /// Restores the compressed text index from kTextCompressed. With
  /// copy=false cursors stream the varbyte bytes from the mapping.
  Result<text::CompressedInvertedIndex> LoadCompressedText(bool copy) const;

  /// Decoded kPendingInterviews (empty when the section is absent).
  Result<std::vector<std::pair<int64_t, std::string>>> PendingInterviews()
      const;

  /// Zero-copy view of this segment's kSignatures section ({nullptr, 0}
  /// when absent). The records live in the mapping — the reader must
  /// outlive every index built on the view.
  Result<std::pair<const vision::SignatureRecord*, size_t>> SignatureChunk()
      const;

  size_t file_size() const { return map_.size(); }

 private:
  SegmentReader() = default;

  Result<ByteReader> Section(SectionId id) const;

  MmapFile map_;
  std::vector<SectionEntry> sections_;
  int64_t index_epoch_ = 0;
  bool text_finalized_ = false;
  std::vector<int64_t> new_video_oids_;
};

/// Empty meta-index tables with the layouts MetaIndex::FromTables expects.
Status CreateMetaTables(Table* shots, Table* objects, Table* events);

/// Everything needed to reassemble a DigitalLibrary from a segment chain.
struct RestoredParts {
  webspace::ConceptSchema schema;
  std::map<std::string, Table> class_tables;
  std::map<std::string, Table> assoc_tables;
  Table shots, objects, events;
  std::vector<int64_t> indexed_videos;
  int64_t index_epoch = 0;
  /// Set when some segment carried a finalized text snapshot; its spans
  /// borrow from that segment's reader unless copy_text was true.
  std::optional<text::InvertedIndex> text;
  /// Un-finalized interviews to replay, in add order (only populated when
  /// `text` is absent — a snapshot already contains every interview).
  std::vector<std::pair<int64_t, std::string>> pending_interviews;
  /// One zero-copy signature chunk per segment that carried a kSignatures
  /// section, in chain order. The chunks borrow from the readers
  /// regardless of copy_text — the readers must outlive the library.
  std::vector<std::pair<const vision::SignatureRecord*, size_t>>
      signature_chunks;
};

/// Folds a manifest-ordered segment chain into library parts. With
/// copy_text=false the text index borrows from the reader that carried the
/// snapshot — that reader must outlive the restored library.
Result<RestoredParts> RestoreFromSegments(
    const std::vector<const SegmentReader*>& segments, bool copy_text);

}  // namespace cobra::storage::segment
