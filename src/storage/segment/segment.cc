#include "storage/segment/segment.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <iterator>
#include <limits>

#include "util/crc32.h"
#include "util/strings.h"

namespace cobra::storage::segment {

namespace {

using text::CompressedInvertedIndex;
using text::CompressedPostings;
using text::InvertedIndex;
using webspace::AssociationDef;
using webspace::AttributeDef;
using webspace::ClassDef;
using webspace::ConceptSchema;

// The skip-block side table is persisted as a raw array; its layout is part
// of the on-disk format (u64 byte_offset, i64 prev_doc, i64 last_doc,
// f64 max_weight on the LP64 targets this builds for).
static_assert(std::is_trivially_copyable_v<CompressedPostings::SkipBlock> &&
                  sizeof(CompressedPostings::SkipBlock) == 32,
              "SkipBlock is persisted as raw bytes");
static_assert(sizeof(size_t) == 8, "segment format assumes 64-bit offsets");

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt segment: ") + what);
}

uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

void PutZoneEntry(const ZoneEntry& z, ByteWriter* out) {
  out->PutI64(z.imin);
  out->PutI64(z.imax);
  out->PutDouble(z.dmin);
  out->PutDouble(z.dmax);
  out->PutU8(z.has_nan ? 1 : 0);
}

bool GetZoneEntry(ByteReader* in, ZoneEntry* z) {
  uint8_t has_nan = 0;
  if (!in->GetI64(&z->imin) || !in->GetI64(&z->imax) ||
      !in->GetDouble(&z->dmin) || !in->GetDouble(&z->dmax) ||
      !in->GetU8(&has_nan)) {
    return false;
  }
  z->has_nan = has_nan != 0;
  return true;
}

/// Bit-exact double equality (so ±0.0 and NaN patterns round-trip checks
/// stay meaningful; zone folds never produce NaN mins/maxes).
bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

}  // namespace

Status TableSerde::WriteDelta(const Table& table, int64_t from_row,
                              ByteWriter* out) {
  const int64_t to_row = table.num_rows();
  if (from_row < 0 || from_row > to_row) {
    return Status::InvalidArgument("delta from_row out of range");
  }
  const size_t added = static_cast<size_t>(to_row - from_row);
  out->PutU32(static_cast<uint32_t>(table.num_columns()));
  out->PutU64(static_cast<uint64_t>(from_row));
  out->PutU64(static_cast<uint64_t>(to_row));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const DataType type = table.schema()[c].type;
    out->PutU8(static_cast<uint8_t>(type));
    switch (type) {
      case DataType::kInt64:
        out->PutRaw(table.IntColumn(c).data() + from_row,
                    added * sizeof(int64_t));
        break;
      case DataType::kDouble:
        out->PutRaw(table.DoubleColumn(c).data() + from_row,
                    added * sizeof(double));
        break;
      case DataType::kString: {
        const std::vector<int32_t>& codes = table.StringCodes(c);
        const std::vector<std::string>& dict = table.Dictionary(c);
        // The dictionary grows append-only and every entry is introduced by
        // some row, so the restored table's dictionary after rows
        // [0, from_row) is exactly the first (max prior code + 1) entries.
        int32_t prev_dict = 0;
        for (int64_t r = 0; r < from_row; ++r) {
          prev_dict = std::max(prev_dict, codes[static_cast<size_t>(r)] + 1);
        }
        out->PutU32(static_cast<uint32_t>(prev_dict));
        out->PutU32(static_cast<uint32_t>(dict.size()));
        for (size_t d = static_cast<size_t>(prev_dict); d < dict.size(); ++d) {
          out->PutString(dict[d]);
        }
        out->PutRaw(codes.data() + from_row, added * sizeof(int32_t));
        break;
      }
    }
  }
  // Post-delta per-column stats, verified by ApplyDelta after it rebuilt
  // the derived state — catches deltas applied out of order and any
  // corruption that slipped past the section CRC.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    COBRA_ASSIGN_OR_RETURN(ColumnStats stats, table.Stats(c));
    out->PutI64(stats.rows);
    out->PutI64(stats.ndv);
    PutZoneEntry(stats.range, out);
  }
  return Status::OK();
}

Status TableSerde::ApplyDelta(Table* table, ByteReader* in) {
  uint32_t num_cols = 0;
  uint64_t from_row = 0, to_row = 0;
  if (!in->GetU32(&num_cols) || !in->GetU64(&from_row) ||
      !in->GetU64(&to_row)) {
    return Corrupt("table delta header");
  }
  if (num_cols != table->num_columns()) {
    return Corrupt("table delta column count");
  }
  if (to_row < from_row ||
      from_row != static_cast<uint64_t>(table->num_rows())) {
    return Corrupt("table delta row range (applied out of order?)");
  }
  const size_t added = static_cast<size_t>(to_row - from_row);
  for (size_t c = 0; c < num_cols; ++c) {
    uint8_t type_tag = 0;
    if (!in->GetU8(&type_tag)) return Corrupt("column type tag");
    if (type_tag != static_cast<uint8_t>(table->schema()[c].type)) {
      return Corrupt("column type mismatch");
    }
    switch (table->schema()[c].type) {
      case DataType::kInt64: {
        auto& col = std::get<std::vector<int64_t>>(table->columns_[c]);
        const size_t old = col.size();
        col.resize(old + added);
        if (!in->GetRaw(col.data() + old, added * sizeof(int64_t))) {
          return Corrupt("int column bytes");
        }
        break;
      }
      case DataType::kDouble: {
        auto& col = std::get<std::vector<double>>(table->columns_[c]);
        const size_t old = col.size();
        col.resize(old + added);
        if (!in->GetRaw(col.data() + old, added * sizeof(double))) {
          return Corrupt("double column bytes");
        }
        break;
      }
      case DataType::kString: {
        auto& sc = std::get<Table::StringColumnData>(table->columns_[c]);
        uint32_t prev_dict = 0, dict_total = 0;
        if (!in->GetU32(&prev_dict) || !in->GetU32(&dict_total)) {
          return Corrupt("string dictionary header");
        }
        if (prev_dict != sc.dict.size() || dict_total < prev_dict) {
          return Corrupt("string dictionary baseline");
        }
        for (uint32_t d = prev_dict; d < dict_total; ++d) {
          std::string entry;
          if (!in->GetString(&entry)) return Corrupt("dictionary entry");
          auto [it, inserted] = sc.dict_index.try_emplace(
              entry, static_cast<int32_t>(sc.dict.size()));
          if (!inserted) return Corrupt("duplicate dictionary entry");
          sc.dict.push_back(std::move(entry));
        }
        const size_t old = sc.codes.size();
        sc.codes.resize(old + added);
        if (!in->GetRaw(sc.codes.data() + old, added * sizeof(int32_t))) {
          return Corrupt("string code bytes");
        }
        sc.values.reserve(old + added);
        for (size_t r = old; r < old + added; ++r) {
          const int32_t code = sc.codes[r];
          if (code < 0 || static_cast<size_t>(code) >= sc.dict.size()) {
            return Corrupt("string code out of dictionary range");
          }
          sc.values.push_back(sc.dict[static_cast<size_t>(code)]);
        }
        break;
      }
    }
  }
  // Zone maps, NDV sets and code histograms rebuild through the table's
  // own incremental path — identical to what AppendRow would have built.
  table->FinishGather(static_cast<int64_t>(added));
  for (size_t c = 0; c < num_cols; ++c) {
    int64_t rows = 0, ndv = 0;
    ZoneEntry range;
    if (!in->GetI64(&rows) || !in->GetI64(&ndv) ||
        !GetZoneEntry(in, &range)) {
      return Corrupt("column stats");
    }
    COBRA_ASSIGN_OR_RETURN(ColumnStats actual, table->Stats(c));
    if (actual.rows != rows || actual.ndv != ndv ||
        actual.range.imin != range.imin || actual.range.imax != range.imax ||
        !SameBits(actual.range.dmin, range.dmin) ||
        !SameBits(actual.range.dmax, range.dmax) ||
        actual.range.has_nan != range.has_nan) {
      return Corrupt("column stats mismatch after delta");
    }
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// Section payload builders
// ---------------------------------------------------------------------------

void BuildLibraryMeta(const LibraryDelta& delta, ByteWriter* out) {
  out->PutU64(static_cast<uint64_t>(delta.index_epoch));
  out->PutU64(delta.new_video_oids.size());
  for (int64_t oid : delta.new_video_oids) out->PutI64(oid);
}

Status BuildWebspace(const LibraryDelta& delta, ByteWriter* out) {
  const ConceptSchema& schema = delta.store->schema();
  out->PutU32(static_cast<uint32_t>(schema.classes().size()));
  for (const ClassDef& cls : schema.classes()) {
    out->PutString(cls.name);
    out->PutU32(static_cast<uint32_t>(cls.attributes.size()));
    for (const AttributeDef& attr : cls.attributes) {
      out->PutString(attr.name);
      out->PutU8(static_cast<uint8_t>(attr.type));
    }
  }
  out->PutU32(static_cast<uint32_t>(schema.associations().size()));
  for (const AssociationDef& assoc : schema.associations()) {
    out->PutString(assoc.name);
    out->PutString(assoc.from_class);
    out->PutString(assoc.to_class);
  }
  for (size_t i = 0; i < schema.classes().size(); ++i) {
    COBRA_ASSIGN_OR_RETURN(
        const Table* table,
        delta.store->ClassTable(schema.classes()[i].name));
    COBRA_RETURN_NOT_OK(
        TableSerde::WriteDelta(*table, delta.class_from_rows[i], out));
  }
  for (size_t i = 0; i < schema.associations().size(); ++i) {
    COBRA_ASSIGN_OR_RETURN(
        const Table* table,
        delta.store->AssociationTable(schema.associations()[i].name));
    COBRA_RETURN_NOT_OK(
        TableSerde::WriteDelta(*table, delta.assoc_from_rows[i], out));
  }
  return Status::OK();
}

Status BuildTextIndex(const InvertedIndex& index, ByteWriter* out) {
  const std::map<int64_t, double>& norms = index.doc_norms();
  out->PutU64(norms.size());
  for (const auto& [doc_id, norm] : norms) {
    out->PutI64(doc_id);
    out->PutDouble(norm);
  }
  COBRA_ASSIGN_OR_RETURN(std::vector<InvertedIndex::TermRange> terms,
                         index.TermRanges());
  out->PutU64(terms.size());
  uint64_t total_postings = 0, total_blocks = 0;
  for (const InvertedIndex::TermRange& t : terms) {
    out->PutString(*t.term);
    out->PutDouble(t.idf);
    out->PutDouble(t.max_weight);
    out->PutU64(t.postings.size());
    out->PutU64(t.blocks.size());
    total_postings += t.postings.size();
    total_blocks += t.blocks.size();
  }
  // The blobs are 8-aligned relative to the (page-aligned) section start,
  // so mapped Posting/BlockMeta views are naturally aligned.
  out->Align(8);
  out->PutU64(total_postings);
  for (const InvertedIndex::TermRange& t : terms) {
    out->PutRaw(t.postings.data(),
                t.postings.size() * sizeof(InvertedIndex::Posting));
  }
  out->PutU64(total_blocks);
  for (const InvertedIndex::TermRange& t : terms) {
    out->PutRaw(t.blocks.data(),
                t.blocks.size() * sizeof(InvertedIndex::BlockMeta));
  }
  return Status::OK();
}

void BuildCompressedText(const CompressedInvertedIndex& index,
                         ByteWriter* out) {
  uint64_t num_terms = 0, total_bytes = 0, total_blocks = 0;
  index.ForEachTerm([&](const std::string&, double,
                        const CompressedPostings& postings) {
    ++num_terms;
    total_bytes += postings.SizeBytes();
    total_blocks += postings.num_blocks();
  });
  out->PutU64(num_terms);
  index.ForEachTerm([&](const std::string& term, double idf,
                        const CompressedPostings& postings) {
    out->PutString(term);
    out->PutDouble(idf);
    out->PutDouble(postings.max_weight());
    out->PutU64(postings.count());
    out->PutU64(postings.SizeBytes());
    out->PutU64(postings.num_blocks());
  });
  out->PutU64(total_bytes);
  index.ForEachTerm([&](const std::string&, double,
                        const CompressedPostings& postings) {
    out->PutRaw(postings.data(), postings.SizeBytes());
  });
  out->Align(8);
  out->PutU64(total_blocks);
  index.ForEachTerm([&](const std::string&, double,
                        const CompressedPostings& postings) {
    out->PutRaw(postings.blocks().data(),
                postings.blocks().size() *
                    sizeof(CompressedPostings::SkipBlock));
  });
}

void BuildPending(const LibraryDelta& delta, ByteWriter* out) {
  out->PutU64(delta.pending_interviews.size());
  for (const auto& [oid, text] : delta.pending_interviews) {
    out->PutI64(oid);
    out->PutString(text);
  }
}

void BuildSignatures(const LibraryDelta& delta, ByteWriter* out) {
  uint64_t total = 0;
  for (const auto& [records, count] : delta.signature_chunks) total += count;
  out->PutU64(total);
  // 64-align the record array (the section itself is page-aligned) so the
  // mapped view is cache-line aligned for the SIMD batch kernels.
  out->Align(64);
  for (const auto& [records, count] : delta.signature_chunks) {
    out->PutRaw(records, count * sizeof(vision::SignatureRecord));
  }
}

}  // namespace

Status WriteSegment(const LibraryDelta& delta, const std::string& path,
                    util::ThreadPool* pool) {
  if (delta.store == nullptr || delta.meta == nullptr) {
    return Status::InvalidArgument("segment delta lacks store or meta-index");
  }
  if (delta.class_from_rows.size() != delta.store->schema().classes().size() ||
      delta.assoc_from_rows.size() !=
          delta.store->schema().associations().size()) {
    return Status::InvalidArgument("segment delta from-row arity mismatch");
  }
  if (delta.text != nullptr && !delta.text->finalized()) {
    return Status::InvalidArgument("text snapshots require a finalized index");
  }

  // The sections are independent serializations of disjoint state, so
  // each becomes one task; section *order* (and so the file bytes) is
  // fixed by this list, not by completion order.
  struct SectionBuild {
    SectionId id;
    std::function<Status(ByteWriter*)> build;
    ByteWriter out;
    Status status;
  };
  std::vector<SectionBuild> sections;
  auto add = [&sections](SectionId id,
                         std::function<Status(ByteWriter*)> build) {
    sections.push_back(SectionBuild{id, std::move(build), {}, Status::OK()});
  };
  add(SectionId::kLibraryMeta, [&delta](ByteWriter* w) {
    BuildLibraryMeta(delta, w);
    return Status::OK();
  });
  add(SectionId::kWebspace,
      [&delta](ByteWriter* w) { return BuildWebspace(delta, w); });
  add(SectionId::kShotsDelta, [&delta](ByteWriter* w) {
    return TableSerde::WriteDelta(delta.meta->shots(), delta.shots_from_row,
                                  w);
  });
  add(SectionId::kObjectsDelta, [&delta](ByteWriter* w) {
    return TableSerde::WriteDelta(delta.meta->objects(),
                                  delta.objects_from_row, w);
  });
  add(SectionId::kEventsDelta, [&delta](ByteWriter* w) {
    return TableSerde::WriteDelta(delta.meta->events(), delta.events_from_row,
                                  w);
  });
  if (delta.text != nullptr) {
    add(SectionId::kTextIndex,
        [&delta](ByteWriter* w) { return BuildTextIndex(*delta.text, w); });
    if (delta.compressed_text != nullptr) {
      add(SectionId::kTextCompressed, [&delta](ByteWriter* w) {
        BuildCompressedText(*delta.compressed_text, w);
        return Status::OK();
      });
    }
  }
  if (!delta.pending_interviews.empty()) {
    add(SectionId::kPendingInterviews, [&delta](ByteWriter* w) {
      BuildPending(delta, w);
      return Status::OK();
    });
  }
  {
    bool any = false;
    for (const auto& [records, count] : delta.signature_chunks) {
      any = any || count > 0;
    }
    if (any) {
      add(SectionId::kSignatures, [&delta](ByteWriter* w) {
        BuildSignatures(delta, w);
        return Status::OK();
      });
    }
  }

  if (pool != nullptr && sections.size() > 1) {
    util::TaskGroup group(pool);
    for (SectionBuild& section : sections) {
      group.Run([&section] { section.status = section.build(&section.out); });
    }
    group.Wait();
  } else {
    for (SectionBuild& section : sections) {
      section.status = section.build(&section.out);
    }
  }
  for (const SectionBuild& section : sections) {
    COBRA_RETURN_NOT_OK(section.status);
  }

  // Assemble: header, section table, page-aligned payloads.
  FileHeader header;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.section_table_offset = sizeof(FileHeader);
  std::vector<SectionEntry> entries(sections.size());
  uint64_t offset = AlignUp(
      sizeof(FileHeader) + sections.size() * sizeof(SectionEntry), kPageSize);
  for (size_t i = 0; i < sections.size(); ++i) {
    entries[i].id = static_cast<uint32_t>(sections[i].id);
    entries[i].offset = offset;
    entries[i].size = sections[i].out.size();
    entries[i].crc32 =
        util::Crc32(sections[i].out.buffer().data(), sections[i].out.size());
    offset = AlignUp(offset + entries[i].size, kPageSize);
  }
  header.file_size = offset;
  header.section_table_crc =
      util::Crc32(entries.data(), entries.size() * sizeof(SectionEntry));
  header.header_crc = 0;
  header.header_crc = util::Crc32(&header, sizeof(header));

  std::vector<uint8_t> file(offset, 0);
  std::memcpy(file.data(), &header, sizeof(header));
  std::memcpy(file.data() + sizeof(FileHeader), entries.data(),
              entries.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    std::memcpy(file.data() + entries[i].offset,
                sections[i].out.buffer().data(), entries[i].size);
  }
  return WriteFileAtomic(path, file.data(), file.size());
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path, Verify verify) {
  COBRA_ASSIGN_OR_RETURN(MmapFile map, MmapFile::Open(path));
  if (map.size() < sizeof(FileHeader)) return Corrupt("file shorter than header");
  FileHeader header;
  std::memcpy(&header, map.data(), sizeof(header));
  if (header.magic != kSegmentMagic) return Corrupt("bad magic");
  if (header.version != kFormatVersion) {
    return Corrupt("unsupported format version");
  }
  FileHeader check = header;
  check.header_crc = 0;
  if (util::Crc32(&check, sizeof(check)) != header.header_crc) {
    return Corrupt("header checksum mismatch");
  }
  if (header.file_size != map.size()) {
    return Corrupt("file size mismatch (torn write?)");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.section_table_offset > map.size() ||
      table_bytes > map.size() - header.section_table_offset) {
    return Corrupt("section table out of bounds");
  }
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), map.data() + header.section_table_offset,
              table_bytes);
  if (util::Crc32(entries.data(), table_bytes) != header.section_table_crc) {
    return Corrupt("section table checksum mismatch");
  }
  for (const SectionEntry& e : entries) {
    if (e.offset % kPageSize != 0 || e.offset > map.size() ||
        e.size > map.size() - e.offset) {
      return Corrupt("section out of bounds");
    }
    if (verify == Verify::kFull &&
        util::Crc32(map.data() + e.offset, e.size) != e.crc32) {
      return Corrupt("section checksum mismatch");
    }
  }
  std::unique_ptr<SegmentReader> reader(new SegmentReader());
  reader->map_ = std::move(map);
  reader->sections_ = std::move(entries);
  reader->text_finalized_ = reader->has_section(SectionId::kTextIndex);
  COBRA_ASSIGN_OR_RETURN(ByteReader meta,
                         reader->Section(SectionId::kLibraryMeta));
  uint64_t epoch = 0, num_videos = 0;
  if (!meta.GetU64(&epoch) || !meta.GetU64(&num_videos)) {
    return Corrupt("library meta section");
  }
  if (epoch > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) ||
      num_videos > meta.remaining() / sizeof(int64_t)) {
    return Corrupt("library meta counts");
  }
  reader->index_epoch_ = static_cast<int64_t>(epoch);
  reader->new_video_oids_.resize(num_videos);
  if (num_videos > 0 &&
      !meta.GetRaw(reader->new_video_oids_.data(),
                   num_videos * sizeof(int64_t))) {
    return Corrupt("library meta video oids");
  }
  return reader;
}

bool SegmentReader::has_section(SectionId id) const {
  for (const SectionEntry& e : sections_) {
    if (e.id == static_cast<uint32_t>(id)) return true;
  }
  return false;
}

Result<ByteReader> SegmentReader::Section(SectionId id) const {
  for (const SectionEntry& e : sections_) {
    if (e.id == static_cast<uint32_t>(id)) {
      return ByteReader(map_.data() + e.offset, e.size);
    }
  }
  return Status::NotFound(
      StringFormat("segment lacks section %u", static_cast<uint32_t>(id)));
}

Status SegmentReader::ApplyWebspace(
    std::optional<ConceptSchema>* schema,
    std::map<std::string, Table>* class_tables,
    std::map<std::string, Table>* assoc_tables) const {
  COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kWebspace));
  uint32_t num_classes = 0;
  if (!in.GetU32(&num_classes)) return Corrupt("webspace class count");
  std::vector<ClassDef> classes(num_classes);
  for (ClassDef& cls : classes) {
    uint32_t num_attrs = 0;
    if (!in.GetString(&cls.name) || !in.GetU32(&num_attrs)) {
      return Corrupt("webspace class def");
    }
    cls.attributes.resize(num_attrs);
    for (AttributeDef& attr : cls.attributes) {
      uint8_t type = 0;
      if (!in.GetString(&attr.name) || !in.GetU8(&type) || type > 2) {
        return Corrupt("webspace attribute def");
      }
      attr.type = static_cast<DataType>(type);
    }
  }
  uint32_t num_assocs = 0;
  if (!in.GetU32(&num_assocs)) return Corrupt("webspace association count");
  std::vector<AssociationDef> assocs(num_assocs);
  for (AssociationDef& a : assocs) {
    if (!in.GetString(&a.name) || !in.GetString(&a.from_class) ||
        !in.GetString(&a.to_class)) {
      return Corrupt("webspace association def");
    }
  }
  COBRA_ASSIGN_OR_RETURN(ConceptSchema decoded,
                         ConceptSchema::Create(classes, assocs));
  if (schema->has_value()) {
    const ConceptSchema& have = schema->value();
    bool same = have.classes().size() == classes.size() &&
                have.associations().size() == assocs.size();
    for (size_t i = 0; same && i < classes.size(); ++i) {
      same = have.classes()[i].name == classes[i].name &&
             have.classes()[i].attributes.size() ==
                 classes[i].attributes.size();
      for (size_t j = 0; same && j < classes[i].attributes.size(); ++j) {
        same = have.classes()[i].attributes[j].name ==
                   classes[i].attributes[j].name &&
               have.classes()[i].attributes[j].type ==
                   classes[i].attributes[j].type;
      }
    }
    for (size_t i = 0; same && i < assocs.size(); ++i) {
      same = have.associations()[i].name == assocs[i].name &&
             have.associations()[i].from_class == assocs[i].from_class &&
             have.associations()[i].to_class == assocs[i].to_class;
    }
    if (!same) return Corrupt("schema changed between segments");
  } else {
    *schema = std::move(decoded);
    for (const ClassDef& cls : classes) {
      std::vector<ColumnDef> columns = {{"oid", DataType::kInt64}};
      for (const AttributeDef& attr : cls.attributes) {
        columns.push_back({attr.name, attr.type});
      }
      COBRA_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(columns)));
      class_tables->emplace(cls.name, std::move(table));
    }
    for (const AssociationDef& a : assocs) {
      COBRA_ASSIGN_OR_RETURN(Table table,
                             Table::Create({{"from_oid", DataType::kInt64},
                                            {"to_oid", DataType::kInt64},
                                            {"role", DataType::kInt64}}));
      assoc_tables->emplace(a.name, std::move(table));
    }
  }
  for (const ClassDef& cls : classes) {
    COBRA_RETURN_NOT_OK(
        TableSerde::ApplyDelta(&class_tables->at(cls.name), &in));
  }
  for (const AssociationDef& a : assocs) {
    COBRA_RETURN_NOT_OK(TableSerde::ApplyDelta(&assoc_tables->at(a.name), &in));
  }
  return Status::OK();
}

Status SegmentReader::ApplyMeta(Table* shots, Table* objects,
                                Table* events) const {
  {
    COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kShotsDelta));
    COBRA_RETURN_NOT_OK(TableSerde::ApplyDelta(shots, &in));
  }
  {
    COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kObjectsDelta));
    COBRA_RETURN_NOT_OK(TableSerde::ApplyDelta(objects, &in));
  }
  {
    COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kEventsDelta));
    COBRA_RETURN_NOT_OK(TableSerde::ApplyDelta(events, &in));
  }
  return Status::OK();
}

Result<InvertedIndex> SegmentReader::LoadTextIndex(bool copy) const {
  COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kTextIndex));
  uint64_t num_docs = 0;
  if (!in.GetU64(&num_docs) ||
      num_docs > in.remaining() / (sizeof(int64_t) + sizeof(double))) {
    return Corrupt("text doc norm count");
  }
  std::vector<std::pair<int64_t, double>> norms(num_docs);
  for (auto& [doc_id, norm] : norms) {
    if (!in.GetI64(&doc_id) || !in.GetDouble(&norm)) {
      return Corrupt("text doc norm");
    }
  }
  uint64_t num_terms = 0;
  if (!in.GetU64(&num_terms) || num_terms > in.remaining()) {
    return Corrupt("text term count");
  }
  std::vector<InvertedIndex::RestoredTerm> terms(num_terms);
  uint64_t total_postings = 0, total_blocks = 0;
  std::vector<std::pair<uint64_t, uint64_t>> counts(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    if (!in.GetString(&terms[t].term) || !in.GetDouble(&terms[t].idf) ||
        !in.GetDouble(&terms[t].max_weight) ||
        !in.GetU64(&counts[t].first) || !in.GetU64(&counts[t].second)) {
      return Corrupt("text term directory");
    }
    total_postings += counts[t].first;
    total_blocks += counts[t].second;
  }
  if (!in.SkipAlign(8)) return Corrupt("text blob padding");
  uint64_t stored_postings = 0;
  const uint8_t* postings_base = nullptr;
  if (!in.GetU64(&stored_postings) || stored_postings != total_postings ||
      total_postings > in.remaining() / sizeof(InvertedIndex::Posting) ||
      !in.GetView(total_postings * sizeof(InvertedIndex::Posting),
                  &postings_base)) {
    return Corrupt("text postings blob");
  }
  uint64_t stored_blocks = 0;
  const uint8_t* blocks_base = nullptr;
  if (!in.GetU64(&stored_blocks) || stored_blocks != total_blocks ||
      total_blocks > in.remaining() / sizeof(InvertedIndex::BlockMeta) ||
      !in.GetView(total_blocks * sizeof(InvertedIndex::BlockMeta),
                  &blocks_base)) {
    return Corrupt("text blocks blob");
  }
  const auto* postings =
      reinterpret_cast<const InvertedIndex::Posting*>(postings_base);
  const auto* blocks =
      reinterpret_cast<const InvertedIndex::BlockMeta*>(blocks_base);
  uint64_t p = 0, b = 0;
  for (uint64_t t = 0; t < num_terms; ++t) {
    terms[t].postings = {postings + p, counts[t].first};
    terms[t].blocks = {blocks + b, counts[t].second};
    p += counts[t].first;
    b += counts[t].second;
  }
  return InvertedIndex::FromTerms(std::move(terms), std::move(norms), copy);
}

Result<CompressedInvertedIndex> SegmentReader::LoadCompressedText(
    bool copy) const {
  COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kTextCompressed));
  uint64_t num_terms = 0;
  if (!in.GetU64(&num_terms) || num_terms > in.remaining()) {
    return Corrupt("compressed term count");
  }
  struct Dir {
    std::string term;
    double idf, max_weight;
    uint64_t count, byte_size, num_blocks;
  };
  std::vector<Dir> dir(num_terms);
  uint64_t total_bytes = 0, total_blocks = 0;
  for (Dir& d : dir) {
    if (!in.GetString(&d.term) || !in.GetDouble(&d.idf) ||
        !in.GetDouble(&d.max_weight) || !in.GetU64(&d.count) ||
        !in.GetU64(&d.byte_size) || !in.GetU64(&d.num_blocks)) {
      return Corrupt("compressed term directory");
    }
    total_bytes += d.byte_size;
    total_blocks += d.num_blocks;
  }
  uint64_t stored_bytes = 0;
  const uint8_t* bytes_base = nullptr;
  if (!in.GetU64(&stored_bytes) || stored_bytes != total_bytes ||
      total_bytes > in.remaining() ||
      !in.GetView(total_bytes, &bytes_base)) {
    return Corrupt("compressed postings blob");
  }
  if (!in.SkipAlign(8)) return Corrupt("compressed blob padding");
  uint64_t stored_blocks = 0;
  const uint8_t* blocks_base = nullptr;
  if (!in.GetU64(&stored_blocks) || stored_blocks != total_blocks ||
      total_blocks >
          in.remaining() / sizeof(CompressedPostings::SkipBlock) ||
      !in.GetView(total_blocks * sizeof(CompressedPostings::SkipBlock),
                  &blocks_base)) {
    return Corrupt("compressed blocks blob");
  }
  std::vector<CompressedInvertedIndex::TermPart> parts;
  parts.reserve(num_terms);
  uint64_t byte_off = 0, block_off = 0;
  for (Dir& d : dir) {
    std::vector<CompressedPostings::SkipBlock> blocks(d.num_blocks);
    std::memcpy(blocks.data(),
                blocks_base + block_off * sizeof(CompressedPostings::SkipBlock),
                d.num_blocks * sizeof(CompressedPostings::SkipBlock));
    // Every block's byte window must stay inside this term's bytes so a
    // cursor can never be steered outside the blob.
    for (const CompressedPostings::SkipBlock& blk : blocks) {
      if (blk.byte_offset > d.byte_size) {
        return Corrupt("compressed skip block out of range");
      }
    }
    CompressedPostings postings =
        copy ? CompressedPostings::FromRaw(
                   std::vector<uint8_t>(bytes_base + byte_off,
                                        bytes_base + byte_off + d.byte_size),
                   std::move(blocks), d.count, d.max_weight)
             : CompressedPostings::FromRawView(bytes_base + byte_off,
                                               d.byte_size, std::move(blocks),
                                               d.count, d.max_weight);
    parts.push_back(CompressedInvertedIndex::TermPart{
        std::move(d.term), d.idf, std::move(postings)});
    byte_off += d.byte_size;
    block_off += d.num_blocks;
  }
  return CompressedInvertedIndex::FromParts(std::move(parts));
}

Result<std::vector<std::pair<int64_t, std::string>>>
SegmentReader::PendingInterviews() const {
  if (!has_section(SectionId::kPendingInterviews)) {
    return std::vector<std::pair<int64_t, std::string>>{};
  }
  COBRA_ASSIGN_OR_RETURN(ByteReader in,
                         Section(SectionId::kPendingInterviews));
  uint64_t count = 0;
  if (!in.GetU64(&count) || count > in.remaining()) {
    return Corrupt("pending interview count");
  }
  std::vector<std::pair<int64_t, std::string>> out(count);
  for (auto& [oid, text] : out) {
    if (!in.GetI64(&oid) || !in.GetString(&text)) {
      return Corrupt("pending interview record");
    }
  }
  return out;
}

Result<std::pair<const vision::SignatureRecord*, size_t>>
SegmentReader::SignatureChunk() const {
  if (!has_section(SectionId::kSignatures)) {
    return std::pair<const vision::SignatureRecord*, size_t>{nullptr, 0};
  }
  COBRA_ASSIGN_OR_RETURN(ByteReader in, Section(SectionId::kSignatures));
  uint64_t count = 0;
  if (!in.GetU64(&count) || !in.SkipAlign(64)) {
    return Corrupt("signature section header");
  }
  if (count > in.remaining() / sizeof(vision::SignatureRecord)) {
    return Corrupt("signature record count");
  }
  const uint8_t* base = nullptr;
  if (!in.GetView(count * sizeof(vision::SignatureRecord), &base)) {
    return Corrupt("signature record bytes");
  }
  const auto* records = reinterpret_cast<const vision::SignatureRecord*>(base);
  // The views go straight into an ANN index; reject records a correct
  // writer can never produce so a flipped bit cannot smuggle in a
  // nonsense shot interval or id.
  for (uint64_t i = 0; i < count; ++i) {
    if (records[i].video_id < 0 || records[i].begin < 0 ||
        records[i].end < records[i].begin) {
      return Corrupt("signature record fields");
    }
  }
  return std::pair<const vision::SignatureRecord*, size_t>{records,
                                                           static_cast<size_t>(count)};
}

Status CreateMetaTables(Table* shots, Table* objects, Table* events) {
  // Mirrors MetaIndex::Create(); MetaIndex::FromTables re-validates, so a
  // drift between the two is caught at restore time.
  COBRA_ASSIGN_OR_RETURN(
      *shots, Table::Create({{"video_id", DataType::kInt64},
                             {"begin", DataType::kInt64},
                             {"end", DataType::kInt64},
                             {"category", DataType::kString},
                             {"dominant_ratio", DataType::kDouble},
                             {"skin_ratio", DataType::kDouble},
                             {"entropy", DataType::kDouble}}));
  COBRA_ASSIGN_OR_RETURN(
      *objects, Table::Create({{"video_id", DataType::kInt64},
                               {"begin", DataType::kInt64},
                               {"end", DataType::kInt64},
                               {"player", DataType::kInt64},
                               {"observed_fraction", DataType::kDouble},
                               {"mean_area", DataType::kDouble},
                               {"mean_eccentricity", DataType::kDouble}}));
  COBRA_ASSIGN_OR_RETURN(*events,
                         Table::Create({{"video_id", DataType::kInt64},
                                        {"name", DataType::kString},
                                        {"player", DataType::kInt64},
                                        {"begin", DataType::kInt64},
                                        {"end", DataType::kInt64}}));
  return Status::OK();
}

Result<RestoredParts> RestoreFromSegments(
    const std::vector<const SegmentReader*>& segments, bool copy_text) {
  if (segments.empty()) {
    return Status::InvalidArgument("restore requires at least one segment");
  }
  RestoredParts parts;
  COBRA_RETURN_NOT_OK(
      CreateMetaTables(&parts.shots, &parts.objects, &parts.events));
  std::optional<ConceptSchema> schema;
  // A text snapshot contains every interview ever added (the index
  // finalizes once), so pending sections anywhere in the chain are
  // superseded the moment any segment carries kTextIndex.
  const SegmentReader* text_segment = nullptr;
  for (const SegmentReader* seg : segments) {
    if (seg->text_finalized()) text_segment = seg;
  }
  for (const SegmentReader* seg : segments) {
    COBRA_RETURN_NOT_OK(seg->ApplyWebspace(&schema, &parts.class_tables,
                                           &parts.assoc_tables));
    COBRA_RETURN_NOT_OK(
        seg->ApplyMeta(&parts.shots, &parts.objects, &parts.events));
    parts.indexed_videos.insert(parts.indexed_videos.end(),
                                seg->new_video_oids().begin(),
                                seg->new_video_oids().end());
    parts.index_epoch = seg->index_epoch();
    if (text_segment == nullptr) {
      COBRA_ASSIGN_OR_RETURN(auto pending, seg->PendingInterviews());
      parts.pending_interviews.insert(
          parts.pending_interviews.end(),
          std::make_move_iterator(pending.begin()),
          std::make_move_iterator(pending.end()));
    }
    COBRA_ASSIGN_OR_RETURN(auto signatures, seg->SignatureChunk());
    if (signatures.second > 0) parts.signature_chunks.push_back(signatures);
  }
  if (text_segment != nullptr) {
    COBRA_ASSIGN_OR_RETURN(InvertedIndex text,
                           text_segment->LoadTextIndex(copy_text));
    parts.text = std::move(text);
  }
  parts.schema = std::move(schema.value());
  return parts;
}

}  // namespace cobra::storage::segment
