#pragma once

/// \file format.h
/// On-disk layout of the immutable COBRA segment files (DESIGN.md §4h).
///
/// A segment is the unit of durable library state: a page-aligned,
/// checksummed container of typed sections. The file starts with a 64-byte
/// header, followed by the section table (one 32-byte entry per section),
/// followed by the section payloads, each aligned to a 4096-byte page so a
/// memory-mapped reader can hand out naturally aligned typed views (e.g.
/// raw `Posting[]` arrays) straight into the mapping.
///
///   [FileHeader 64B][SectionEntry * N][pad][section 0][pad][section 1]...
///
/// Integrity: every section payload carries a CRC-32; the section table
/// and the header each carry their own CRC-32. A reader rejects any
/// mismatch with a Status — corrupt bytes must never reach the zero-copy
/// views. All integers are little-endian (asserted at build time on the
/// only platforms we target).

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace cobra::storage::segment {

/// "COBRASEG" as a little-endian u64.
inline constexpr uint64_t kSegmentMagic = 0x4745534152424F43ull;
inline constexpr uint32_t kFormatVersion = 1;
/// Section payload alignment: one page, so mapped views of POD arrays are
/// page-aligned and a cold open touches no payload page it does not read.
inline constexpr uint64_t kPageSize = 4096;

/// Section types. Values are part of the on-disk format; never reuse.
enum class SectionId : uint32_t {
  /// Epoch, flags and the oids of videos indexed in this segment's window.
  kLibraryMeta = 1,
  /// Concept schema + per-class/per-association table row deltas.
  kWebspace = 2,
  /// Meta-index table row deltas.
  kShotsDelta = 3,
  kObjectsDelta = 4,
  kEventsDelta = 5,
  /// Lossless full snapshot of the finalized interview text index:
  /// doc norms plus per-term idf/max_weight and raw Posting[]/BlockMeta[]
  /// arrays, mapped back zero-copy.
  kTextIndex = 6,
  /// Compressed (delta+varbyte) snapshot of the same postings with their
  /// skip-block side tables; cursors stream straight from the mapping.
  kTextCompressed = 7,
  /// Interviews added but not yet finalized: replayed on restore when no
  /// newer segment carries a kTextIndex snapshot.
  kPendingInterviews = 8,
  /// Per-shot perceptual signature records added in this segment's window
  /// (vision::SignatureRecord[], 64-aligned): u64 count, pad, raw array —
  /// mapped back as a zero-copy base chunk of the similarity index
  /// (DESIGN.md §4j).
  kSignatures = 9,
};

/// 64-byte file header. `header_crc` covers the header bytes with the
/// field itself zeroed.
struct FileHeader {
  uint64_t magic = kSegmentMagic;
  uint32_t version = kFormatVersion;
  uint32_t flags = 0;
  uint32_t section_count = 0;
  uint32_t header_crc = 0;
  uint64_t file_size = 0;
  uint64_t section_table_offset = 0;
  uint32_t section_table_crc = 0;
  uint32_t reserved0 = 0;
  uint64_t reserved1 = 0;
  uint64_t reserved2 = 0;
};
static_assert(std::is_trivially_copyable_v<FileHeader> &&
                  sizeof(FileHeader) == 64,
              "FileHeader is persisted as raw bytes");

/// 32-byte section table entry. `crc32` covers the payload bytes.
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc32 = 0;
  uint32_t reserved2 = 0;
};
static_assert(std::is_trivially_copyable_v<SectionEntry> &&
                  sizeof(SectionEntry) == 32,
              "SectionEntry is persisted as raw bytes");

/// Append-only little-endian byte buffer used to build section payloads.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  /// u32 length + bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void PutRaw(const void* data, size_t size) {
    if (size == 0) return;  // empty columns may hand out a null data()
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  /// Zero-pads so the next byte lands on a multiple of `alignment`
  /// *relative to the buffer start* (sections are page-aligned in the
  /// file, so this is also the absolute alignment in the mapping).
  void Align(size_t alignment) {
    while (buf_.size() % alignment != 0) buf_.push_back(0);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over one section payload. Every
/// getter fails (sticky) instead of reading out of bounds; callers check
/// `ok()` (or each getter's return) before trusting values.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (len > size_ - pos_) return Fail();
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool GetRaw(void* out, size_t size) {
    if (size > size_ - pos_) return Fail();
    if (size > 0) std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  /// Borrows `size` bytes in place (zero-copy view into the mapping).
  bool GetView(size_t size, const uint8_t** out) {
    if (size > size_ - pos_) return Fail();
    *out = data_ + pos_;
    pos_ += size;
    return true;
  }
  bool SkipAlign(size_t alignment) {
    while (pos_ % alignment != 0) {
      uint8_t pad;
      if (!GetU8(&pad)) return false;
    }
    return true;
  }

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  Status CorruptIf(bool also, const char* what) const {
    if (ok_ && !also) return Status::OK();
    return Status::InvalidArgument(std::string("corrupt segment section: ") +
                                   what);
  }

 private:
  bool Fail() {
    ok_ = false;
    pos_ = size_;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace cobra::storage::segment
