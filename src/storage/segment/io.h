#pragma once

/// \file io.h
/// POSIX file plumbing for the durable segment storage: read-only memory
/// mappings, atomic whole-file writes (temp + fsync + rename + directory
/// fsync), and an append handle for the write-ahead log. Everything
/// reports failures as Status — no exceptions, no errno leaks.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cobra::storage::segment {

/// A read-only memory mapping of a whole file. Move-only RAII: the mapping
/// lives until destruction, so views handed out by a segment reader stay
/// valid for the reader's lifetime. An unlinked file's mapping stays valid
/// too (POSIX), which is what lets compaction retire segment files while
/// older readers keep serving.
class MmapFile {
 public:
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;  ///< nullptr for an empty file
  size_t size_ = 0;
};

/// Writes `size` bytes to `path` atomically: a `path.tmp` sibling is
/// written and fsynced, renamed over `path`, and the directory is fsynced
/// so the rename survives a crash. Readers never observe a partial file.
Status WriteFileAtomic(const std::string& path, const void* data, size_t size);

/// Appends to one file (the WAL). Open truncates or creates; Append adds
/// bytes at the end; Sync fdatasyncs what was appended so far.
class AppendFile {
 public:
  static Result<AppendFile> Open(const std::string& path);

  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept { *this = std::move(other); }
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  Status Append(const void* data, size_t size);
  Status Sync();

  /// Bytes successfully appended since Open (the group-commit durability
  /// watermark: after a Sync, every byte counted here is on stable
  /// storage).
  int64_t bytes_appended() const { return bytes_appended_; }

 private:
  int fd_ = -1;
  int64_t bytes_appended_ = 0;
};

/// Regular-file names in `dir` (no dot entries, no subdirectories),
/// unsorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

Status CreateDir(const std::string& dir);  ///< ok when it already exists
Status RemoveFile(const std::string& path);
Status FsyncDir(const std::string& dir);
bool FileExists(const std::string& path);
Result<int64_t> FileSize(const std::string& path);

}  // namespace cobra::storage::segment
