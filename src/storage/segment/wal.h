#pragma once

/// \file wal.h
/// Write-ahead log for durable library ingest (DESIGN.md §4h).
///
/// Every mutating operation between two segment flushes is framed into the
/// current WAL file *before* it is applied in memory:
///
///   [u32 payload_len][u32 crc32][u8 type][payload]
///
/// where the CRC covers type + payload. Replay reapplies records in order
/// and stops at the first frame that is truncated or fails its checksum —
/// the accepted crash semantics: a torn tail is the operation that never
/// happened. A Flush writes a segment covering everything the WAL held and
/// starts a fresh log, so recovery cost is bounded by one flush window.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/video_description.h"
#include "storage/segment/format.h"
#include "storage/segment/io.h"
#include "util/status.h"
#include "vision/signature.h"

namespace cobra::storage::segment {

enum class WalRecordType : uint8_t {
  kAddInterview = 1,   ///< i64 oid, string text
  kFinalizeText = 2,   ///< empty payload
  kAddVideo = 3,       ///< serialized core::VideoDescription
  kAddSignatures = 4,  ///< i64 video_id, u64 count, SignatureRecord[count]
};

/// One decoded WAL record; the fields of the other types are default.
struct WalRecord {
  WalRecordType type = WalRecordType::kFinalizeText;
  int64_t interview_oid = 0;
  std::string interview_text;
  core::VideoDescription video;
  int64_t signature_video = -1;
  std::vector<vision::SignatureRecord> signatures;
};

/// Appends framed records to one log file. When `sync_each` is set every
/// append fdatasyncs before returning (durable against power loss); off,
/// records are durable only against process crash until the next Sync().
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path, bool sync_each);

  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  Status AppendInterview(int64_t oid, const std::string& text);
  Status AppendFinalizeText();
  Status AppendVideo(const core::VideoDescription& desc);
  Status AppendSignatures(int64_t video_id,
                          const std::vector<vision::SignatureRecord>& records);
  Status Sync();

 private:
  Status AppendRecord(WalRecordType type, const ByteWriter& payload);

  AppendFile file_;
  bool sync_each_ = true;
};

/// How WAL appends reach stable storage (DESIGN.md §4k).
enum class WalMode : uint8_t {
  /// fdatasync after every record, serialized — the E12/E15 durability
  /// baseline. Durable on return.
  kSyncEachRecord,
  /// RocksDB-style group commit: writers stage framed records under the
  /// log mutex and one of them becomes the leader, writing the whole
  /// staged batch with a single write + fdatasync; the others wait on the
  /// group's completion. Durable on return (WaitDurable), one fdatasync
  /// per *group* instead of per record.
  kGroupCommit,
  /// Records are written to the file immediately but never synced; they
  /// survive a process crash, not power loss, until the next segment
  /// flush. The throughput ceiling the group-commit mode is measured
  /// against.
  kBuffered,
};

/// A concurrent write-ahead log with group commit. Unlike WalWriter (one
/// writer, one frame at a time), any number of threads may stage records
/// concurrently; the on-file frame format and torn-tail replay semantics
/// are identical (ReplayWal reads both).
///
/// The two-phase surface is what lets callers overlap durability waits:
///   seq = Stage...(...)   // frames + orders the record; returns at once
///   WaitDurable(seq)      // blocks until the record is on stable storage
/// Stage order IS file order (staging appends to the shared group buffer
/// under the log mutex), so callers that need replay order to match an
/// in-memory apply order stage under the same lock that applies.
///
/// Error handling is sticky: once an append or sync fails, the error is
/// returned from every subsequent Stage/WaitDurable — a WAL that lost a
/// write cannot accept acknowledged records behind the hole.
class GroupCommitWal {
 public:
  static Result<std::unique_ptr<GroupCommitWal>> Open(const std::string& path,
                                                      WalMode mode);

  /// Stages one framed record; returns its 1-based sequence number.
  Result<uint64_t> StageInterview(int64_t oid, const std::string& text);
  Result<uint64_t> StageFinalizeText();
  Result<uint64_t> StageVideo(const core::VideoDescription& desc);
  Result<uint64_t> StageSignatures(
      int64_t video_id, const std::vector<vision::SignatureRecord>& records);

  /// Blocks until record `seq` is durable under the open mode: synced
  /// (kSyncEachRecord, kGroupCommit) or written (kBuffered). The calling
  /// thread may be elected group leader and perform the batched
  /// write + fdatasync itself.
  Status WaitDurable(uint64_t seq);

  /// Stage + WaitDurable conveniences (the serial writer surface).
  Status AppendInterview(int64_t oid, const std::string& text);
  Status AppendFinalizeText();
  Status AppendVideo(const core::VideoDescription& desc);
  Status AppendSignatures(int64_t video_id,
                          const std::vector<vision::SignatureRecord>& records);

  /// Drains the staging buffer and syncs the file (all modes). After
  /// FlushAll returns OK every staged record is durable — the pre-rotation
  /// barrier Flush() uses.
  Status FlushAll();

  WalMode mode() const { return mode_; }
  /// Bytes known durable (synced in sync/group modes, written in buffered
  /// mode) — the crash-test truncation watermark: a file truncated at or
  /// past this offset replays every acknowledged record.
  int64_t durable_bytes();
  /// fdatasync calls and records committed so far (group-size telemetry).
  int64_t sync_calls();
  int64_t records_committed();

 private:
  GroupCommitWal() = default;

  Result<uint64_t> StageRecord(WalRecordType type, const ByteWriter& payload);
  /// With `lock` held: writes + syncs the staged batch as leader, or waits
  /// for a leader to cover `seq`. Returns when durable_seq_ >= seq.
  Status CommitLocked(std::unique_lock<std::mutex>& lock, uint64_t seq);

  AppendFile file_;
  WalMode mode_ = WalMode::kGroupCommit;

  std::mutex mutex_;
  std::condition_variable group_cv_;
  std::vector<uint8_t> staged_;    ///< framed records awaiting the leader
  uint64_t staged_seq_ = 0;        ///< records staged so far
  uint64_t durable_seq_ = 0;       ///< records durable so far
  bool leader_active_ = false;
  int64_t durable_bytes_ = 0;
  int64_t sync_calls_ = 0;
  Status io_error_;                ///< sticky first IO failure
};

/// Serializes a VideoDescription (shared by the WAL and tests).
void EncodeVideoDescription(const core::VideoDescription& desc,
                            ByteWriter* out);
Result<core::VideoDescription> DecodeVideoDescription(ByteReader* in);

/// Replays `path`: returns every intact record in order, silently dropping
/// the torn tail (truncated or checksum-failing frame and everything after
/// it). A missing file replays as empty.
Result<std::vector<WalRecord>> ReplayWal(const std::string& path);

}  // namespace cobra::storage::segment
