#pragma once

/// \file wal.h
/// Write-ahead log for durable library ingest (DESIGN.md §4h).
///
/// Every mutating operation between two segment flushes is framed into the
/// current WAL file *before* it is applied in memory:
///
///   [u32 payload_len][u32 crc32][u8 type][payload]
///
/// where the CRC covers type + payload. Replay reapplies records in order
/// and stops at the first frame that is truncated or fails its checksum —
/// the accepted crash semantics: a torn tail is the operation that never
/// happened. A Flush writes a segment covering everything the WAL held and
/// starts a fresh log, so recovery cost is bounded by one flush window.

#include <cstdint>
#include <string>
#include <vector>

#include "core/video_description.h"
#include "storage/segment/format.h"
#include "storage/segment/io.h"
#include "util/status.h"
#include "vision/signature.h"

namespace cobra::storage::segment {

enum class WalRecordType : uint8_t {
  kAddInterview = 1,   ///< i64 oid, string text
  kFinalizeText = 2,   ///< empty payload
  kAddVideo = 3,       ///< serialized core::VideoDescription
  kAddSignatures = 4,  ///< i64 video_id, u64 count, SignatureRecord[count]
};

/// One decoded WAL record; the fields of the other types are default.
struct WalRecord {
  WalRecordType type = WalRecordType::kFinalizeText;
  int64_t interview_oid = 0;
  std::string interview_text;
  core::VideoDescription video;
  int64_t signature_video = -1;
  std::vector<vision::SignatureRecord> signatures;
};

/// Appends framed records to one log file. When `sync_each` is set every
/// append fdatasyncs before returning (durable against power loss); off,
/// records are durable only against process crash until the next Sync().
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path, bool sync_each);

  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  Status AppendInterview(int64_t oid, const std::string& text);
  Status AppendFinalizeText();
  Status AppendVideo(const core::VideoDescription& desc);
  Status AppendSignatures(int64_t video_id,
                          const std::vector<vision::SignatureRecord>& records);
  Status Sync();

 private:
  Status AppendRecord(WalRecordType type, const ByteWriter& payload);

  AppendFile file_;
  bool sync_each_ = true;
};

/// Serializes a VideoDescription (shared by the WAL and tests).
void EncodeVideoDescription(const core::VideoDescription& desc,
                            ByteWriter* out);
Result<core::VideoDescription> DecodeVideoDescription(ByteReader* in);

/// Replays `path`: returns every intact record in order, silently dropping
/// the torn tail (truncated or checksum-failing frame and everything after
/// it). A missing file replays as empty.
Result<std::vector<WalRecord>> ReplayWal(const std::string& path);

}  // namespace cobra::storage::segment
