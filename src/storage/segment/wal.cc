#include "storage/segment/wal.h"

#include <cstring>
#include <utility>

#include "util/crc32.h"

namespace cobra::storage::segment {

using core::CobraLayer;
using core::VideoDescription;
using grammar::Annotation;
using grammar::MetaValue;

namespace {

/// Frames one record ([u32 len][u32 crc][u8 type][payload]) onto `out` —
/// the single encoding both WalWriter and GroupCommitWal write and
/// ReplayWal reads.
void FrameRecord(WalRecordType type, const ByteWriter& payload,
                 ByteWriter* out) {
  out->PutU32(static_cast<uint32_t>(payload.size()));
  uint32_t crc = util::Crc32(&type, sizeof(uint8_t));
  crc = util::Crc32(payload.buffer().data(), payload.size(), crc);
  out->PutU32(crc);
  out->PutU8(static_cast<uint8_t>(type));
  out->PutRaw(payload.buffer().data(), payload.size());
}

}  // namespace

Result<WalWriter> WalWriter::Open(const std::string& path, bool sync_each) {
  WalWriter out;
  COBRA_ASSIGN_OR_RETURN(out.file_, AppendFile::Open(path));
  out.sync_each_ = sync_each;
  return out;
}

Status WalWriter::AppendRecord(WalRecordType type, const ByteWriter& payload) {
  ByteWriter frame;
  FrameRecord(type, payload, &frame);
  COBRA_RETURN_NOT_OK(file_.Append(frame.buffer().data(), frame.size()));
  return sync_each_ ? file_.Sync() : Status::OK();
}

// ---------------------------------------------------------------------------
// GroupCommitWal

Result<std::unique_ptr<GroupCommitWal>> GroupCommitWal::Open(
    const std::string& path, WalMode mode) {
  std::unique_ptr<GroupCommitWal> out(new GroupCommitWal());
  COBRA_ASSIGN_OR_RETURN(out->file_, AppendFile::Open(path));
  out->mode_ = mode;
  return out;
}

Result<uint64_t> GroupCommitWal::StageRecord(WalRecordType type,
                                             const ByteWriter& payload) {
  ByteWriter frame;
  FrameRecord(type, payload, &frame);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!io_error_.ok()) return io_error_;
  const uint64_t seq = ++staged_seq_;
  if (mode_ == WalMode::kGroupCommit) {
    staged_.insert(staged_.end(), frame.buffer().begin(),
                   frame.buffer().end());
    return seq;
  }
  // Sync-each and buffered modes write through immediately; staging order
  // and file order coincide because the lock is held across the write.
  Status status = file_.Append(frame.buffer().data(), frame.size());
  if (status.ok() && mode_ == WalMode::kSyncEachRecord) {
    status = file_.Sync();
    ++sync_calls_;
  }
  if (!status.ok()) {
    io_error_ = status;
    return status;
  }
  durable_seq_ = seq;
  durable_bytes_ = file_.bytes_appended();
  return seq;
}

Status GroupCommitWal::CommitLocked(std::unique_lock<std::mutex>& lock,
                                    uint64_t seq) {
  while (durable_seq_ < seq) {
    if (!io_error_.ok()) return io_error_;
    if (leader_active_) {
      // A leader is syncing an earlier group; our record rides in the
      // batch it (or a successor) picks up.
      group_cv_.wait(lock);
      continue;
    }
    // Become the leader: take everything staged so far as one group.
    leader_active_ = true;
    std::vector<uint8_t> batch;
    batch.swap(staged_);
    const uint64_t batch_seq = staged_seq_;
    lock.unlock();
    Status status = file_.Append(batch.data(), batch.size());
    if (status.ok()) {
      status = file_.Sync();
    }
    lock.lock();
    ++sync_calls_;
    leader_active_ = false;
    if (!status.ok()) {
      // Wake everyone with the sticky error — acknowledged records stay
      // acknowledged, but nothing behind the hole ever will be.
      io_error_ = status;
      group_cv_.notify_all();
      return status;
    }
    durable_seq_ = batch_seq;
    durable_bytes_ = file_.bytes_appended();
    group_cv_.notify_all();
  }
  return io_error_;
}

Status GroupCommitWal::WaitDurable(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (mode_ != WalMode::kGroupCommit) {
    // Write-through modes are durable (per their contract) at Stage time.
    return durable_seq_ >= seq ? io_error_
                               : Status::FailedPrecondition(
                                     "WaitDurable on an unstaged record");
  }
  return CommitLocked(lock, seq);
}

Status GroupCommitWal::FlushAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (mode_ == WalMode::kGroupCommit) {
    COBRA_RETURN_NOT_OK(CommitLocked(lock, staged_seq_));
  }
  if (!io_error_.ok()) return io_error_;
  if (mode_ == WalMode::kBuffered) {
    Status status = file_.Sync();
    ++sync_calls_;
    if (!status.ok()) {
      io_error_ = status;
      return status;
    }
    durable_bytes_ = file_.bytes_appended();
  }
  return Status::OK();
}

int64_t GroupCommitWal::durable_bytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  return durable_bytes_;
}

int64_t GroupCommitWal::sync_calls() {
  std::lock_guard<std::mutex> lock(mutex_);
  return sync_calls_;
}

int64_t GroupCommitWal::records_committed() {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(durable_seq_);
}

Result<uint64_t> GroupCommitWal::StageInterview(int64_t oid,
                                                const std::string& text) {
  ByteWriter payload;
  payload.PutI64(oid);
  payload.PutString(text);
  return StageRecord(WalRecordType::kAddInterview, payload);
}

Result<uint64_t> GroupCommitWal::StageFinalizeText() {
  return StageRecord(WalRecordType::kFinalizeText, ByteWriter());
}

Result<uint64_t> GroupCommitWal::StageVideo(const VideoDescription& desc) {
  ByteWriter payload;
  EncodeVideoDescription(desc, &payload);
  return StageRecord(WalRecordType::kAddVideo, payload);
}

Result<uint64_t> GroupCommitWal::StageSignatures(
    int64_t video_id, const std::vector<vision::SignatureRecord>& records) {
  ByteWriter payload;
  payload.PutI64(video_id);
  payload.PutU64(records.size());
  payload.PutRaw(records.data(),
                 records.size() * sizeof(vision::SignatureRecord));
  return StageRecord(WalRecordType::kAddSignatures, payload);
}

Status GroupCommitWal::AppendInterview(int64_t oid, const std::string& text) {
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, StageInterview(oid, text));
  return WaitDurable(seq);
}

Status GroupCommitWal::AppendFinalizeText() {
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, StageFinalizeText());
  return WaitDurable(seq);
}

Status GroupCommitWal::AppendVideo(const VideoDescription& desc) {
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, StageVideo(desc));
  return WaitDurable(seq);
}

Status GroupCommitWal::AppendSignatures(
    int64_t video_id, const std::vector<vision::SignatureRecord>& records) {
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, StageSignatures(video_id, records));
  return WaitDurable(seq);
}

Status WalWriter::AppendInterview(int64_t oid, const std::string& text) {
  ByteWriter payload;
  payload.PutI64(oid);
  payload.PutString(text);
  return AppendRecord(WalRecordType::kAddInterview, payload);
}

Status WalWriter::AppendFinalizeText() {
  return AppendRecord(WalRecordType::kFinalizeText, ByteWriter());
}

Status WalWriter::AppendVideo(const VideoDescription& desc) {
  ByteWriter payload;
  EncodeVideoDescription(desc, &payload);
  return AppendRecord(WalRecordType::kAddVideo, payload);
}

Status WalWriter::AppendSignatures(
    int64_t video_id, const std::vector<vision::SignatureRecord>& records) {
  ByteWriter payload;
  payload.PutI64(video_id);
  payload.PutU64(records.size());
  payload.PutRaw(records.data(),
                 records.size() * sizeof(vision::SignatureRecord));
  return AppendRecord(WalRecordType::kAddSignatures, payload);
}

Status WalWriter::Sync() { return file_.Sync(); }

void EncodeVideoDescription(const VideoDescription& desc, ByteWriter* out) {
  out->PutI64(desc.video_id());
  out->PutString(desc.title());
  out->PutDouble(desc.fps());
  out->PutI64(desc.num_frames());
  for (int layer = 0; layer < 4; ++layer) {
    const std::vector<Annotation>& annotations =
        desc.Layer(static_cast<CobraLayer>(layer));
    out->PutU32(static_cast<uint32_t>(annotations.size()));
    for (const Annotation& a : annotations) {
      out->PutString(a.symbol);
      out->PutI64(a.range.begin);
      out->PutI64(a.range.end);
      out->PutU32(static_cast<uint32_t>(a.attrs.size()));
      for (const auto& [key, value] : a.attrs) {
        out->PutString(key);
        if (const auto* i = std::get_if<int64_t>(&value)) {
          out->PutU8(0);
          out->PutI64(*i);
        } else if (const auto* d = std::get_if<double>(&value)) {
          out->PutU8(1);
          out->PutDouble(*d);
        } else {
          out->PutU8(2);
          out->PutString(std::get<std::string>(value));
        }
      }
    }
  }
}

Result<VideoDescription> DecodeVideoDescription(ByteReader* in) {
  int64_t video_id = 0, num_frames = 0;
  std::string title;
  double fps = 0.0;
  if (!in->GetI64(&video_id) || !in->GetString(&title) ||
      !in->GetDouble(&fps) || !in->GetI64(&num_frames)) {
    return Status::InvalidArgument("corrupt video description header");
  }
  VideoDescription desc(video_id, std::move(title), fps, num_frames);
  for (int layer = 0; layer < 4; ++layer) {
    uint32_t count = 0;
    if (!in->GetU32(&count) || count > in->remaining()) {
      return Status::InvalidArgument("corrupt annotation count");
    }
    for (uint32_t i = 0; i < count; ++i) {
      Annotation a;
      if (!in->GetString(&a.symbol) || !in->GetI64(&a.range.begin) ||
          !in->GetI64(&a.range.end)) {
        return Status::InvalidArgument("corrupt annotation");
      }
      uint32_t num_attrs = 0;
      if (!in->GetU32(&num_attrs) || num_attrs > in->remaining()) {
        return Status::InvalidArgument("corrupt attribute count");
      }
      for (uint32_t k = 0; k < num_attrs; ++k) {
        std::string key;
        uint8_t tag = 0;
        if (!in->GetString(&key) || !in->GetU8(&tag)) {
          return Status::InvalidArgument("corrupt attribute");
        }
        MetaValue value;
        if (tag == 0) {
          int64_t v;
          if (!in->GetI64(&v)) {
            return Status::InvalidArgument("corrupt int attribute");
          }
          value = v;
        } else if (tag == 1) {
          double v;
          if (!in->GetDouble(&v)) {
            return Status::InvalidArgument("corrupt double attribute");
          }
          value = v;
        } else if (tag == 2) {
          std::string v;
          if (!in->GetString(&v)) {
            return Status::InvalidArgument("corrupt string attribute");
          }
          value = std::move(v);
        } else {
          return Status::InvalidArgument("unknown attribute type tag");
        }
        a.attrs.emplace(std::move(key), std::move(value));
      }
      desc.Add(static_cast<CobraLayer>(layer), std::move(a));
    }
  }
  return desc;
}

Result<std::vector<WalRecord>> ReplayWal(const std::string& path) {
  std::vector<WalRecord> out;
  if (!FileExists(path)) return out;
  COBRA_ASSIGN_OR_RETURN(MmapFile map, MmapFile::Open(path));
  size_t pos = 0;
  while (true) {
    // Frame header: u32 len, u32 crc, u8 type. Anything short is a torn
    // tail — stop, keep what replayed so far.
    if (map.size() - pos < 9) break;
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, map.data() + pos, 4);
    std::memcpy(&crc, map.data() + pos + 4, 4);
    const uint8_t type_byte = map.data()[pos + 8];
    if (len > map.size() - pos - 9) break;  // truncated payload
    uint32_t actual = util::Crc32(&type_byte, 1);
    actual = util::Crc32(map.data() + pos + 9, len, actual);
    if (actual != crc) break;  // torn or corrupt frame
    ByteReader payload(map.data() + pos + 9, len);
    WalRecord record;
    bool parsed = true;
    switch (type_byte) {
      case static_cast<uint8_t>(WalRecordType::kAddInterview):
        record.type = WalRecordType::kAddInterview;
        parsed = payload.GetI64(&record.interview_oid) &&
                 payload.GetString(&record.interview_text);
        break;
      case static_cast<uint8_t>(WalRecordType::kFinalizeText):
        record.type = WalRecordType::kFinalizeText;
        break;
      case static_cast<uint8_t>(WalRecordType::kAddVideo): {
        record.type = WalRecordType::kAddVideo;
        Result<VideoDescription> video = DecodeVideoDescription(&payload);
        if (video.ok()) {
          record.video = video.TakeValue();
        } else {
          parsed = false;
        }
        break;
      }
      case static_cast<uint8_t>(WalRecordType::kAddSignatures): {
        record.type = WalRecordType::kAddSignatures;
        uint64_t count = 0;
        parsed = payload.GetI64(&record.signature_video) &&
                 payload.GetU64(&count) &&
                 count <= payload.remaining() /
                              sizeof(vision::SignatureRecord);
        if (parsed) {
          record.signatures.resize(count);
          parsed = payload.GetRaw(
              record.signatures.data(),
              count * sizeof(vision::SignatureRecord));
        }
        break;
      }
      default:
        parsed = false;
    }
    if (!parsed) break;  // checksum passed but payload malformed: stop here
    out.push_back(std::move(record));
    pos += 9 + len;
  }
  return out;
}

}  // namespace cobra::storage::segment
