#include "storage/segment/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/strings.h"

namespace cobra::storage::segment {

namespace {

Status IoError(const char* op, const std::string& path) {
  return Status::Internal(
      StringFormat("%s('%s'): %s", op, path.c_str(), std::strerror(errno)));
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = IoError("fstat", path);
    ::close(fd);
    return s;
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status s = IoError("mmap", path);
      ::close(fd);
      return s;
    }
    out.data_ = static_cast<const uint8_t*>(addr);
  }
  ::close(fd);  // the mapping keeps the pages alive
  return out;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Status WriteFileAtomic(const std::string& path, const void* data,
                       size_t size) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open", tmp);
  const auto* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = IoError("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = IoError("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    Status s = IoError("close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = IoError("rename", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  // Persist the rename itself: fsync the containing directory.
  std::string dir = ".";
  if (auto slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = path.substr(0, slash);
    if (dir.empty()) dir = "/";
  }
  return FsyncDir(dir);
}

Result<AppendFile> AppendFile::Open(const std::string& path) {
  int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open", path);
  AppendFile out;
  out.fd_ = fd;
  return out;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    bytes_appended_ = std::exchange(other.bytes_appended_, 0);
  }
  return *this;
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  const auto* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd_, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", "<wal>");
    }
    written += static_cast<size_t>(n);
    bytes_appended_ += n;
  }
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  if (::fdatasync(fd_) != 0) return IoError("fdatasync", "<wal>");
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return IoError("opendir", dir);
  std::vector<std::string> out;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) out.push_back(name);
  }
  ::closedir(d);
  return out;
}

Status CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return IoError("mkdir", dir);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return IoError("unlink", path);
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return IoError("open", dir);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = IoError("fsync", dir);
  ::close(fd);
  return s;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<int64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return IoError("stat", path);
  return static_cast<int64_t>(st.st_size);
}

}  // namespace cobra::storage::segment
