#pragma once

/// \file stats.h
/// Predicate selectivity estimation over `Table` statistics (DESIGN.md
/// §4g). String predicates are *exact*: equality resolves through the
/// dictionary and the per-code row histogram, ordering/kContains fold the
/// histogram over the O(dictionary) qualifying entries. Numeric predicates
/// interpolate against the folded zone-map range and the exact NDV.
///
/// `provably_empty` is only ever set when the emptiness is certain (a
/// dictionary miss, a literal outside the folded range, an empty table) —
/// the planner short-circuits whole query stages on it, so a false
/// positive would change results, while a false negative only costs time.

#include <vector>

#include "storage/ops.h"
#include "storage/table.h"

namespace cobra::storage {

/// Estimated outcome of one predicate against one table.
struct SelectivityEstimate {
  /// Estimated fraction of rows matching, in [0, 1].
  double fraction = 1.0;
  /// True when `fraction` is an exact row count ratio (dictionary-backed
  /// string predicates, empty tables), not an interpolation.
  bool exact = false;
  /// True when no row can match. Certain, never heuristic.
  bool provably_empty = false;
};

/// Estimates `pred` against `table`. Returns the schema/type errors of
/// `ValidatePredicate` for malformed predicates.
Result<SelectivityEstimate> EstimateSelectivity(const Table& table,
                                                const Predicate& pred);

/// Estimated row count of the conjunction of `preds` under the usual
/// independence assumption; 0 when any predicate is provably empty.
Result<double> EstimateConjunctionRows(const Table& table,
                                       const std::vector<Predicate>& preds);

}  // namespace cobra::storage
