#pragma once

/// \file ops.h
/// Column-at-a-time relational operators over `Table`: selection vectors,
/// refinement, materialization, hash join, order-by/limit. Enough algebra
/// to run the meta-index and webspace query plans.
///
/// Selection (`Select`/`Refine`/`SelectAll`) is vectorized (DESIGN.md §4f):
/// predicates run block-at-a-time through the `column_kernels` SIMD tiers
/// over typed arrays — string predicates over int32 dictionary codes — and
/// per-block zone maps skip blocks that cannot contain a match. `HashJoin`
/// on int64/string keys builds an integer-keyed hash table and can probe in
/// parallel. The pre-vectorization row-at-a-time implementations are kept
/// verbatim in `storage::reference` as the equivalence oracle for property
/// tests and before/after benchmarks; both paths are bit-identical on every
/// input and every SIMD tier.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/column_kernels.h"
#include "storage/table.h"

namespace cobra::storage {

/// `column op literal`. kContains applies to string columns only
/// (substring match, the webspace "about" predicate).
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// Checks `pred` against `table`'s schema (column exists, literal type
/// matches, kContains needs a string column and literal) without touching
/// any row. Select/Refine run exactly this check first; the planner calls
/// it up front so short-circuited plans stay error-identical to plans that
/// evaluate every predicate.
Status ValidatePredicate(const Table& table, const Predicate& pred);

/// Full-column selection: row ids (ascending) satisfying the predicate.
Result<std::vector<int64_t>> Select(const Table& table, const Predicate& pred);

/// Refines an existing selection vector (logical AND), column-at-a-time.
Result<std::vector<int64_t>> Refine(const Table& table, const Predicate& pred,
                                    const std::vector<int64_t>& candidates);

/// Applies a conjunction of predicates.
Result<std::vector<int64_t>> SelectAll(const Table& table,
                                       const std::vector<Predicate>& preds);

/// Materializes `rows` of `table` into a new table, optionally projecting
/// to `columns` (all columns when empty).
Result<Table> Materialize(const Table& table, const std::vector<int64_t>& rows,
                          const std::vector<std::string>& columns = {});

/// Which side the `HashJoin` hash table is built on (DESIGN.md §4g). The
/// output is bit-identical for every choice: the right-build probe emits
/// match pairs already in (left row, right row) order, and the left-build
/// path re-sorts its pairs into that same order. kAuto costs both sides
/// from the tables' exact statistics — build on the smaller side, unless
/// the left-build pair re-sort (sized by the estimated match count,
/// |L|·|R| / max NDV of the key columns) eats the gain.
enum class JoinBuildSide { kAuto, kLeft, kRight };

/// Tuning knobs for `HashJoin`.
struct JoinOptions {
  /// Probe-side parallelism (README "join threads"). <= 1 probes inline on
  /// the calling thread; output row order is identical either way (the
  /// probe is chunked and chunk results are concatenated in chunk order).
  int num_threads = 1;
  /// Build/probe side choice; kAuto is the costed decision.
  JoinBuildSide build_side = JoinBuildSide::kAuto;
};

/// Equi-join on `left_col` = `right_col`. Output schema: left columns then
/// right columns; a right column whose name collides gets a "right_"
/// prefix. Output rows follow left row order; equal-key right matches
/// follow right row order (same contract as `reference::HashJoin`).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col,
                       const JoinOptions& options);
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col);

/// Row ids of `table` ordered by `column` (descending when `desc`),
/// truncated to `limit` (no truncation when limit == 0). Ties break by
/// row id, ascending. With a limit the sort is a top-k `partial_sort`,
/// not a full sort.
Result<std::vector<int64_t>> OrderBy(const Table& table,
                                     const std::string& column, bool desc,
                                     size_t limit = 0);

/// Aggregate function over a numeric (or, for kCount, any) column.
enum class AggregateOp { kCount, kSum, kMin, kMax, kAvg };

/// One group of a GroupBy result.
struct GroupRow {
  Value key;
  double aggregate = 0.0;
  int64_t count = 0;
};

/// Groups `table` rows by `key_column` and aggregates `value_column`
/// (ignored and may be empty for kCount). Numeric aggregates require an
/// int64 or double value column. Groups are returned in ascending key
/// order.
Result<std::vector<GroupRow>> GroupBy(const Table& table,
                                      const std::string& key_column,
                                      AggregateOp op,
                                      const std::string& value_column = "");

/// The pre-vectorization row-at-a-time operators, kept as the equivalence
/// oracle: property tests assert the vectorized operators above return
/// bit-identical results, and the E7/E8 benches report before/after against
/// them. Not used by any query path.
namespace reference {

Result<std::vector<int64_t>> Select(const Table& table, const Predicate& pred);
Result<std::vector<int64_t>> Refine(const Table& table, const Predicate& pred,
                                    const std::vector<int64_t>& candidates);
Result<std::vector<int64_t>> SelectAll(const Table& table,
                                       const std::vector<Predicate>& preds);
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col);
Result<std::vector<int64_t>> OrderBy(const Table& table,
                                     const std::string& column, bool desc,
                                     size_t limit = 0);

}  // namespace reference

}  // namespace cobra::storage
