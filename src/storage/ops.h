#pragma once

/// \file ops.h
/// Column-at-a-time relational operators over `Table`: selection vectors,
/// refinement, materialization, hash join, order-by/limit. Enough algebra
/// to run the meta-index and webspace query plans.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"

namespace cobra::storage {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

/// `column op literal`. kContains applies to string columns only
/// (substring match, the webspace "about" predicate).
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// Full-column selection: row ids (ascending) satisfying the predicate.
Result<std::vector<int64_t>> Select(const Table& table, const Predicate& pred);

/// Refines an existing selection vector (logical AND), column-at-a-time.
Result<std::vector<int64_t>> Refine(const Table& table, const Predicate& pred,
                                    const std::vector<int64_t>& candidates);

/// Applies a conjunction of predicates.
Result<std::vector<int64_t>> SelectAll(const Table& table,
                                       const std::vector<Predicate>& preds);

/// Materializes `rows` of `table` into a new table, optionally projecting
/// to `columns` (all columns when empty).
Result<Table> Materialize(const Table& table, const std::vector<int64_t>& rows,
                          const std::vector<std::string>& columns = {});

/// Equi-join on `left_col` = `right_col` (hash join, build on the smaller
/// side). Output schema: left columns then right columns; a right column
/// whose name collides gets a "right_" prefix.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col);

/// Row ids of `table` ordered by `column` (descending when `desc`),
/// truncated to `limit` (no truncation when limit == 0). Ties break by
/// row id, ascending.
Result<std::vector<int64_t>> OrderBy(const Table& table,
                                     const std::string& column, bool desc,
                                     size_t limit = 0);

/// Aggregate function over a numeric (or, for kCount, any) column.
enum class AggregateOp { kCount, kSum, kMin, kMax, kAvg };

/// One group of a GroupBy result.
struct GroupRow {
  Value key;
  double aggregate = 0.0;
  int64_t count = 0;
};

/// Groups `table` rows by `key_column` and aggregates `value_column`
/// (ignored and may be empty for kCount). Numeric aggregates require an
/// int64 or double value column. Groups are returned in ascending key
/// order.
Result<std::vector<GroupRow>> GroupBy(const Table& table,
                                      const std::string& key_column,
                                      AggregateOp op,
                                      const std::string& value_column = "");

}  // namespace cobra::storage
