#pragma once

/// \file column_kernels.h
/// Block-at-a-time selection kernels for the column store, with runtime SIMD
/// dispatch.
///
/// Ref [1] runs retrieval inside Monet, a column-at-a-time DBMS; the
/// MonetDB/X100 line of work (Boncz et al., CIDR 2005) showed that the
/// per-row interpreted predicate loop is the dominant cost of such a store
/// and replaced it with vectorized primitives over typed arrays. This layer
/// is that substrate for `storage::Table`: each kernel scans one contiguous
/// block of a typed column against one literal and appends the qualifying
/// row ids (ascending) to a selection vector.
///
/// Tiers follow the policy of `vision/kernels` (DESIGN.md §4d): a portable
/// scalar reference that is always compiled, plus SSE4.1 and AVX2
/// implementations compiled under the `COBRA_SIMD` CMake option and picked
/// at runtime through the shared `util/simd` dispatch state, so the test
/// override that forces a tier caps every kernel layer in the process at
/// once.
///
/// Exactness: all tiers are bit-identical by construction — a selection
/// kernel emits row indices in ascending order from per-element predicate
/// outcomes, and every tier evaluates the same predicate on the same
/// element (vector compares + mask iteration preserve element order; ragged
/// tails fall back to the scalar per-element form). Doubles follow the
/// scalar comparison semantics of `CompareValues`: NaN compares neither
/// below nor above any literal, so it ties (cmp == 0) and therefore
/// *matches* kEq/kLe/kGe — the vector tiers reproduce this exactly via
/// ordered-quiet compare predicates.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.h"

namespace cobra::storage {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

/// Evaluates a three-way comparison outcome against an operator. kContains
/// is not a three-way comparison and always yields false here; callers
/// handle it through the dictionary LUT path.
inline bool EvalCompare(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kContains:
      return false;  // handled through the dictionary LUT path
  }
  return false;
}

/// Three-way compare with the exact semantics of `CompareValues`: for
/// doubles a NaN operand makes both orderings false, so the result is 0.
template <typename T>
inline int CompareScalar(T v, T lit) {
  return v < lit ? -1 : (v > lit ? 1 : 0);
}

namespace kernels {

using util::simd::SimdLevel;
using util::simd::SimdLevelName;

/// One tier of selection kernels. Each scans `n` elements of a typed column
/// block and appends `base + i` (ascending i) to `*out` for every element
/// satisfying the predicate. All kernels accept n == 0.
struct SelectOps {
  /// int64 column vs int64 literal.
  void (*select_i64)(const int64_t* data, size_t n, int64_t lit, CompareOp op,
                     int64_t base, std::vector<int64_t>* out);
  /// double column vs double literal (NaN semantics as documented above).
  void (*select_f64)(const double* data, size_t n, double lit, CompareOp op,
                     int64_t base, std::vector<int64_t>* out);
  /// Dictionary-code column vs literal code (string equality/inequality
  /// after dictionary lookup). Codes are non-negative.
  void (*select_i32)(const int32_t* codes, size_t n, int32_t lit, CompareOp op,
                     int64_t base, std::vector<int64_t>* out);
  /// Dictionary-LUT selection: keeps row i when lut[codes[i]] != 0. The LUT
  /// is indexed by dictionary code and encodes any per-unique-string
  /// predicate (ordering, substring containment), so per-row work is O(1)
  /// regardless of string length. Scalar in every tier (the lookup is a
  /// data-dependent gather); listed here so the dispatch surface is uniform.
  void (*select_lut)(const int32_t* codes, size_t n, const uint8_t* lut,
                     int64_t base, std::vector<int64_t>* out);
};

/// The portable scalar reference tier (always available).
const SelectOps& ScalarOps();

/// Ops table for `level`, or nullptr if that tier is compiled out or the
/// CPU lacks the instructions. `kScalar` never returns nullptr.
const SelectOps* OpsFor(SimdLevel level);

/// Highest tier available on this build + CPU (computed once).
SimdLevel BestSupportedLevel();

/// The tier `Ops()` currently dispatches to: `BestSupportedLevel()` unless
/// capped by `util::simd::SetForcedLevel` (clamped to compiled tiers).
SimdLevel ActiveLevel();

/// The active ops table. Hoist `const SelectOps& ops = Ops();` out of block
/// loops.
const SelectOps& Ops();

}  // namespace kernels
}  // namespace cobra::storage
