#include "storage/table.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>

#include "util/strings.h"

namespace cobra::storage {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType TypeOf(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) return DataType::kInt64;
  if (std::holds_alternative<double>(value)) return DataType::kDouble;
  return DataType::kString;
}

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return StringFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return StringFormat("%.6g", *d);
  }
  return std::get<std::string>(value);
}

int CompareValues(const Value& a, const Value& b) {
  if (const auto* ia = std::get_if<int64_t>(&a)) {
    int64_t ib = std::get<int64_t>(b);
    return (*ia < ib) ? -1 : (*ia > ib ? 1 : 0);
  }
  if (const auto* da = std::get_if<double>(&a)) {
    double db = std::get<double>(b);
    return (*da < db) ? -1 : (*da > db ? 1 : 0);
  }
  const std::string& sa = std::get<std::string>(a);
  const std::string& sb = std::get<std::string>(b);
  return sa.compare(sb) < 0 ? -1 : (sa == sb ? 0 : 1);
}

int32_t Table::StringColumnData::Encode(const std::string& s) {
  auto [it, inserted] =
      dict_index.try_emplace(s, static_cast<int32_t>(dict.size()));
  if (inserted) dict.push_back(s);
  return it->second;
}

Result<Table> Table::Create(std::vector<ColumnDef> schema) {
  std::set<std::string> names;
  for (const ColumnDef& def : schema) {
    if (def.name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!names.insert(def.name).second) {
      return Status::InvalidArgument(
          StringFormat("duplicate column '%s'", def.name.c_str()));
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  for (const ColumnDef& def : t.schema_) {
    switch (def.type) {
      case DataType::kInt64:
        t.columns_.emplace_back(std::vector<int64_t>{});
        break;
      case DataType::kDouble:
        t.columns_.emplace_back(std::vector<double>{});
        break;
      case DataType::kString:
        t.columns_.emplace_back(StringColumnData{});
        break;
    }
  }
  t.zones_.resize(t.schema_.size());
  t.distinct_.resize(t.schema_.size());
  return t;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return i;
  }
  return Status::NotFound(StringFormat("no column '%s'", name.c_str()));
}

Status Table::AppendRow(std::vector<Value> values) {
  if (values.size() != schema_.size()) {
    return Status::InvalidArgument(
        StringFormat("row arity %zu != schema arity %zu", values.size(),
                     schema_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (TypeOf(values[i]) != schema_[i].type) {
      return Status::InvalidArgument(StringFormat(
          "column '%s' expects %s, got %s", schema_[i].name.c_str(),
          DataTypeToString(schema_[i].type),
          DataTypeToString(TypeOf(values[i]))));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    switch (schema_[i].type) {
      case DataType::kInt64:
        std::get<std::vector<int64_t>>(columns_[i])
            .push_back(std::get<int64_t>(values[i]));
        break;
      case DataType::kDouble:
        std::get<std::vector<double>>(columns_[i])
            .push_back(std::get<double>(values[i]));
        break;
      case DataType::kString: {
        auto& sc = std::get<StringColumnData>(columns_[i]);
        std::string& s = std::get<std::string>(values[i]);
        sc.codes.push_back(sc.Encode(s));
        sc.values.push_back(std::move(s));
        break;
      }
    }
    ExtendZones(i, num_rows_, num_rows_ + 1);
  }
  ++num_rows_;
  return Status::OK();
}

namespace {
Status CheckCell(const Table& t, int64_t row, size_t col, DataType expected) {
  if (col >= t.num_columns()) {
    return Status::OutOfRange(StringFormat("column %zu out of range", col));
  }
  if (row < 0 || row >= t.num_rows()) {
    return Status::OutOfRange(
        StringFormat("row %lld out of range", static_cast<long long>(row)));
  }
  if (t.schema()[col].type != expected) {
    return Status::InvalidArgument(
        StringFormat("column '%s' is %s", t.schema()[col].name.c_str(),
                     DataTypeToString(t.schema()[col].type)));
  }
  return Status::OK();
}
}  // namespace

Result<int64_t> Table::GetInt(int64_t row, size_t col) const {
  COBRA_RETURN_NOT_OK(CheckCell(*this, row, col, DataType::kInt64));
  return std::get<std::vector<int64_t>>(columns_[col])[static_cast<size_t>(row)];
}

Result<double> Table::GetDouble(int64_t row, size_t col) const {
  COBRA_RETURN_NOT_OK(CheckCell(*this, row, col, DataType::kDouble));
  return std::get<std::vector<double>>(columns_[col])[static_cast<size_t>(row)];
}

Result<std::string> Table::GetString(int64_t row, size_t col) const {
  COBRA_RETURN_NOT_OK(CheckCell(*this, row, col, DataType::kString));
  return std::get<StringColumnData>(columns_[col])
      .values[static_cast<size_t>(row)];
}

Result<Value> Table::GetValue(int64_t row, size_t col) const {
  if (col >= num_columns()) {
    return Status::OutOfRange(StringFormat("column %zu out of range", col));
  }
  switch (schema_[col].type) {
    case DataType::kInt64: {
      COBRA_ASSIGN_OR_RETURN(int64_t v, GetInt(row, col));
      return Value{v};
    }
    case DataType::kDouble: {
      COBRA_ASSIGN_OR_RETURN(double v, GetDouble(row, col));
      return Value{v};
    }
    case DataType::kString: {
      COBRA_ASSIGN_OR_RETURN(std::string v, GetString(row, col));
      return Value{std::move(v)};
    }
  }
  return Status::Internal("corrupt schema");
}

const std::vector<int64_t>& Table::IntColumn(size_t col) const {
  return std::get<std::vector<int64_t>>(columns_[col]);
}
const std::vector<double>& Table::DoubleColumn(size_t col) const {
  return std::get<std::vector<double>>(columns_[col]);
}
const std::vector<std::string>& Table::StringColumn(size_t col) const {
  return std::get<StringColumnData>(columns_[col]).values;
}
const std::vector<int32_t>& Table::StringCodes(size_t col) const {
  return std::get<StringColumnData>(columns_[col]).codes;
}
const std::vector<std::string>& Table::Dictionary(size_t col) const {
  return std::get<StringColumnData>(columns_[col]).dict;
}

int32_t Table::DictCode(size_t col, const std::string& s) const {
  const auto& sc = std::get<StringColumnData>(columns_[col]);
  auto it = sc.dict_index.find(s);
  return it == sc.dict_index.end() ? -1 : it->second;
}

void Table::GatherColumn(const Table& src, size_t src_col, size_t dst_col,
                         const std::vector<int64_t>& rows) {
  switch (schema_[dst_col].type) {
    case DataType::kInt64: {
      const auto& in = src.IntColumn(src_col);
      auto& out = std::get<std::vector<int64_t>>(columns_[dst_col]);
      out.reserve(out.size() + rows.size());
      for (int64_t r : rows) out.push_back(in[static_cast<size_t>(r)]);
      break;
    }
    case DataType::kDouble: {
      const auto& in = src.DoubleColumn(src_col);
      auto& out = std::get<std::vector<double>>(columns_[dst_col]);
      out.reserve(out.size() + rows.size());
      for (int64_t r : rows) out.push_back(in[static_cast<size_t>(r)]);
      break;
    }
    case DataType::kString: {
      const auto& in = std::get<StringColumnData>(src.columns_[src_col]);
      auto& out = std::get<StringColumnData>(columns_[dst_col]);
      out.values.reserve(out.values.size() + rows.size());
      out.codes.reserve(out.codes.size() + rows.size());
      // Translate src dictionary codes to dst codes lazily: one string
      // insert per *unique* value, not per row. First-use order equals row
      // order, so the resulting dictionary matches what per-row AppendRow
      // would have built.
      std::vector<int32_t> translate(in.dict.size(), -1);
      for (int64_t r : rows) {
        const int32_t sc = in.codes[static_cast<size_t>(r)];
        if (translate[static_cast<size_t>(sc)] < 0) {
          translate[static_cast<size_t>(sc)] =
              out.Encode(in.dict[static_cast<size_t>(sc)]);
        }
        out.codes.push_back(translate[static_cast<size_t>(sc)]);
        out.values.push_back(in.values[static_cast<size_t>(r)]);
      }
      break;
    }
  }
}

void Table::FinishGather(int64_t added) {
  const int64_t from = num_rows_;
  num_rows_ += added;
  for (size_t c = 0; c < schema_.size(); ++c) {
    ExtendZones(c, from, num_rows_);
  }
}

void Table::ExtendZones(size_t col, int64_t from, int64_t to) {
  auto& zones = zones_[col];
  auto zone_for = [&zones](int64_t row) -> ZoneEntry& {
    const size_t b = static_cast<size_t>(row / kBlockRows);
    if (b == zones.size()) zones.emplace_back();
    return zones[b];
  };
  switch (schema_[col].type) {
    case DataType::kInt64: {
      const auto& data = std::get<std::vector<int64_t>>(columns_[col]);
      auto& distinct = distinct_[col];
      for (int64_t r = from; r < to; ++r) {
        ZoneEntry& z = zone_for(r);
        const int64_t v = data[static_cast<size_t>(r)];
        z.imin = std::min(z.imin, v);
        z.imax = std::max(z.imax, v);
        distinct.insert(static_cast<uint64_t>(v));
      }
      break;
    }
    case DataType::kDouble: {
      const auto& data = std::get<std::vector<double>>(columns_[col]);
      auto& distinct = distinct_[col];
      for (int64_t r = from; r < to; ++r) {
        ZoneEntry& z = zone_for(r);
        const double v = data[static_cast<size_t>(r)];
        if (std::isnan(v)) {
          z.has_nan = true;
        } else {
          z.dmin = std::min(z.dmin, v);
          z.dmax = std::max(z.dmax, v);
        }
        distinct.insert(std::bit_cast<uint64_t>(v));
      }
      break;
    }
    case DataType::kString: {
      auto& sc = std::get<StringColumnData>(columns_[col]);
      sc.code_rows.resize(sc.dict.size(), 0);
      for (int64_t r = from; r < to; ++r) {
        ZoneEntry& z = zone_for(r);
        const int64_t v = sc.codes[static_cast<size_t>(r)];
        z.imin = std::min(z.imin, v);
        z.imax = std::max(z.imax, v);
        ++sc.code_rows[static_cast<size_t>(v)];
      }
      break;
    }
  }
}

namespace {
Status CheckColumn(const Table& t, size_t col) {
  if (col >= t.num_columns()) {
    return Status::OutOfRange(StringFormat("column %zu out of range", col));
  }
  return Status::OK();
}
}  // namespace

Result<ColumnStats> Table::Stats(size_t col) const {
  COBRA_RETURN_NOT_OK(CheckColumn(*this, col));
  ColumnStats stats;
  stats.rows = num_rows_;
  COBRA_ASSIGN_OR_RETURN(stats.ndv, Ndv(col));
  for (const ZoneEntry& z : zones_[col]) {
    stats.range.imin = std::min(stats.range.imin, z.imin);
    stats.range.imax = std::max(stats.range.imax, z.imax);
    stats.range.dmin = std::min(stats.range.dmin, z.dmin);
    stats.range.dmax = std::max(stats.range.dmax, z.dmax);
    stats.range.has_nan = stats.range.has_nan || z.has_nan;
  }
  return stats;
}

Result<int64_t> Table::Ndv(size_t col) const {
  COBRA_RETURN_NOT_OK(CheckColumn(*this, col));
  if (schema_[col].type == DataType::kString) {
    return static_cast<int64_t>(std::get<StringColumnData>(columns_[col]).dict.size());
  }
  return static_cast<int64_t>(distinct_[col].size());
}

Result<int64_t> Table::CodeCount(size_t col, int32_t code) const {
  COBRA_RETURN_NOT_OK(CheckColumn(*this, col));
  if (schema_[col].type != DataType::kString) {
    return Status::InvalidArgument(
        StringFormat("column '%s' is %s, not string", schema_[col].name.c_str(),
                     DataTypeToString(schema_[col].type)));
  }
  const auto& sc = std::get<StringColumnData>(columns_[col]);
  if (code < 0 || static_cast<size_t>(code) >= sc.code_rows.size()) return 0;
  return sc.code_rows[static_cast<size_t>(code)];
}

}  // namespace cobra::storage
