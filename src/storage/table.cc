#include "storage/table.h"

#include <set>

#include "util/strings.h"

namespace cobra::storage {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType TypeOf(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) return DataType::kInt64;
  if (std::holds_alternative<double>(value)) return DataType::kDouble;
  return DataType::kString;
}

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return StringFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return StringFormat("%.6g", *d);
  }
  return std::get<std::string>(value);
}

int CompareValues(const Value& a, const Value& b) {
  if (const auto* ia = std::get_if<int64_t>(&a)) {
    int64_t ib = std::get<int64_t>(b);
    return (*ia < ib) ? -1 : (*ia > ib ? 1 : 0);
  }
  if (const auto* da = std::get_if<double>(&a)) {
    double db = std::get<double>(b);
    return (*da < db) ? -1 : (*da > db ? 1 : 0);
  }
  const std::string& sa = std::get<std::string>(a);
  const std::string& sb = std::get<std::string>(b);
  return sa.compare(sb) < 0 ? -1 : (sa == sb ? 0 : 1);
}

Result<Table> Table::Create(std::vector<ColumnDef> schema) {
  std::set<std::string> names;
  for (const ColumnDef& def : schema) {
    if (def.name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!names.insert(def.name).second) {
      return Status::InvalidArgument(
          StringFormat("duplicate column '%s'", def.name.c_str()));
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  for (const ColumnDef& def : t.schema_) {
    switch (def.type) {
      case DataType::kInt64:
        t.columns_.emplace_back(std::vector<int64_t>{});
        break;
      case DataType::kDouble:
        t.columns_.emplace_back(std::vector<double>{});
        break;
      case DataType::kString:
        t.columns_.emplace_back(std::vector<std::string>{});
        break;
    }
  }
  return t;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return i;
  }
  return Status::NotFound(StringFormat("no column '%s'", name.c_str()));
}

Status Table::AppendRow(std::vector<Value> values) {
  if (values.size() != schema_.size()) {
    return Status::InvalidArgument(
        StringFormat("row arity %zu != schema arity %zu", values.size(),
                     schema_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (TypeOf(values[i]) != schema_[i].type) {
      return Status::InvalidArgument(StringFormat(
          "column '%s' expects %s, got %s", schema_[i].name.c_str(),
          DataTypeToString(schema_[i].type),
          DataTypeToString(TypeOf(values[i]))));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    switch (schema_[i].type) {
      case DataType::kInt64:
        std::get<std::vector<int64_t>>(columns_[i])
            .push_back(std::get<int64_t>(values[i]));
        break;
      case DataType::kDouble:
        std::get<std::vector<double>>(columns_[i])
            .push_back(std::get<double>(values[i]));
        break;
      case DataType::kString:
        std::get<std::vector<std::string>>(columns_[i])
            .push_back(std::move(std::get<std::string>(values[i])));
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

namespace {
Status CheckCell(const Table& t, int64_t row, size_t col, DataType expected) {
  if (col >= t.num_columns()) {
    return Status::OutOfRange(StringFormat("column %zu out of range", col));
  }
  if (row < 0 || row >= t.num_rows()) {
    return Status::OutOfRange(
        StringFormat("row %lld out of range", static_cast<long long>(row)));
  }
  if (t.schema()[col].type != expected) {
    return Status::InvalidArgument(
        StringFormat("column '%s' is %s", t.schema()[col].name.c_str(),
                     DataTypeToString(t.schema()[col].type)));
  }
  return Status::OK();
}
}  // namespace

Result<int64_t> Table::GetInt(int64_t row, size_t col) const {
  COBRA_RETURN_NOT_OK(CheckCell(*this, row, col, DataType::kInt64));
  return std::get<std::vector<int64_t>>(columns_[col])[static_cast<size_t>(row)];
}

Result<double> Table::GetDouble(int64_t row, size_t col) const {
  COBRA_RETURN_NOT_OK(CheckCell(*this, row, col, DataType::kDouble));
  return std::get<std::vector<double>>(columns_[col])[static_cast<size_t>(row)];
}

Result<std::string> Table::GetString(int64_t row, size_t col) const {
  COBRA_RETURN_NOT_OK(CheckCell(*this, row, col, DataType::kString));
  return std::get<std::vector<std::string>>(columns_[col])[static_cast<size_t>(row)];
}

Result<Value> Table::GetValue(int64_t row, size_t col) const {
  if (col >= num_columns()) {
    return Status::OutOfRange(StringFormat("column %zu out of range", col));
  }
  switch (schema_[col].type) {
    case DataType::kInt64: {
      COBRA_ASSIGN_OR_RETURN(int64_t v, GetInt(row, col));
      return Value{v};
    }
    case DataType::kDouble: {
      COBRA_ASSIGN_OR_RETURN(double v, GetDouble(row, col));
      return Value{v};
    }
    case DataType::kString: {
      COBRA_ASSIGN_OR_RETURN(std::string v, GetString(row, col));
      return Value{std::move(v)};
    }
  }
  return Status::Internal("corrupt schema");
}

const std::vector<int64_t>& Table::IntColumn(size_t col) const {
  return std::get<std::vector<int64_t>>(columns_[col]);
}
const std::vector<double>& Table::DoubleColumn(size_t col) const {
  return std::get<std::vector<double>>(columns_[col]);
}
const std::vector<std::string>& Table::StringColumn(size_t col) const {
  return std::get<std::vector<std::string>>(columns_[col]);
}

}  // namespace cobra::storage
