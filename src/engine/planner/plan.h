#pragma once

/// \file plan.h
/// The explain surface of the cost-based combined-query planner (DESIGN.md
/// §4g): one PlanStep per executed stage with its estimated vs actual
/// cardinality, plus the plan-shape decisions the cost model took. Results
/// are never affected by any of this — the planner is bit-identical to
/// `DigitalLibrary::SearchFixedOrder` — so the explain output is pure
/// observability, wired into `QueryEngine` stats and tests.

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::engine::planner {

/// One executed (or short-circuiting) plan stage.
struct PlanStep {
  /// Stage label, e.g. "predicate ranking==17", "champions", "text:filtered",
  /// "events:single_scan", "short_circuit: event name unknown".
  std::string name;
  /// Estimated output cardinality when the stage was planned.
  double est_rows = 0.0;
  /// Output cardinality observed during execution; -1 = never executed.
  int64_t actual_rows = -1;
};

/// The chosen physical plan of one combined query.
struct PlanExplain {
  /// False when the fixed-order reference pipeline answered the query
  /// (planner disabled).
  bool used_planner = false;
  /// A provably-empty modality ended the plan before the remaining stages.
  bool short_circuited = false;
  /// The text modality ran first and seeded the candidate set.
  bool text_first = false;
  /// The champion join ran before the attribute predicates.
  bool champion_first = false;
  /// The concept candidate set was pushed into the text evaluator as a
  /// DAAT accept filter.
  bool text_filter_pushed = false;
  /// The text stage was taken from a frontend-provided seed (serving tier,
  /// DESIGN.md §4i) instead of running the DAAT locally.
  bool text_seeded = false;
  /// The similar stage was taken from a frontend-provided SimilarSeed
  /// (serving tier, DESIGN.md §4j) instead of probing the ANN index.
  bool similar_seeded = false;
  /// The similar stage's neighbor video set was pushed into the event scan
  /// as a video filter (only videos holding a neighbor shot are scanned).
  bool similar_filter_pushed = false;
  /// The event stage ran one events-table scan grouped by video instead of
  /// one FindScenes call per (player, video) pair.
  bool event_single_scan = false;
  /// Executed stages in order.
  std::vector<PlanStep> steps;

  /// Multi-line human-readable rendering (one line per step plus a flags
  /// summary).
  std::string ToString() const;
};

}  // namespace cobra::engine::planner
