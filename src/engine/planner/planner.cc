#include "engine/planner/planner.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "storage/stats.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace cobra::engine::planner {
namespace {

using storage::Predicate;
using storage::Table;
using webspace::TraversalStrategy;
using webspace::WebspaceStore;

/// One attribute predicate with its selectivity estimate, in execution
/// order after the cost-based sort.
struct RankedPred {
  size_t index = 0;        ///< position in query.player_predicates
  double fraction = 1.0;   ///< estimated matching fraction
  bool provably_empty = false;
};

const char* StrategyName(TraversalStrategy s) {
  return s == TraversalStrategy::kScan ? "scan" : "walk";
}

/// Maps ascending player oids to ascending class-table rows. Oids are
/// assigned in insertion order, so row order follows oid order; non-player
/// oids cannot appear here (the schema types every association end).
std::vector<int64_t> OidsToRows(const WebspaceStore& store,
                                const std::vector<int64_t>& oids) {
  std::vector<int64_t> rows;
  rows.reserve(oids.size());
  for (int64_t oid : oids) {
    const int64_t row = store.RowOf("Player", oid);
    if (row >= 0) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<int64_t> RowsToOids(const Table& players, const std::vector<int64_t>& rows) {
  const std::vector<int64_t>& oids = players.IntColumn(0);
  std::vector<int64_t> out;
  out.reserve(rows.size());
  for (int64_t row : rows) out.push_back(oids[static_cast<size_t>(row)]);
  return out;
}

Result<std::vector<SceneHit>> SearchPlannedImpl(
    const LibraryView& view, const CombinedQuery& query,
    text::SearchStats* stats, PlanExplain& ex,
    const std::map<int64_t, double>* text_seed,
    const SimilarSeed* similar_seed) {
  const WebspaceStore& store = *view.store;
  const text::InvertedIndex& interviews = *view.interviews;
  const core::MetaIndex& meta = *view.meta_index;
  const std::vector<int64_t>& indexed_videos = *view.indexed_videos;
  // Views built without a signature index behave like one with no records
  // (every probe resolves to NotFound) — the fixed order's behavior on an
  // empty index.
  static const similarity::SignatureIndex kEmptySignatures;
  const similarity::SignatureIndex& sig_index =
      view.signatures != nullptr ? *view.signatures : kEmptySignatures;

  if (stats) *stats = text::SearchStats{};
  ex.used_planner = true;

  const bool has_champ = query.require_champion || query.won_year >= 0;
  const bool has_text = !query.text.empty();
  const bool has_event = !query.event.empty();
  const bool has_similar = query.similar_video >= 0;
  // A frontend seed replaces the whole similar stage (it touches nothing
  // but the signature index, so unlike the text seed it is usable
  // unconditionally).
  const bool similar_seeded = similar_seed != nullptr && has_similar;

  // --- Upfront validation, in the fixed pipeline's error order ------------
  // The fixed order hits these errors unconditionally (before any stage can
  // come up empty), so every short-circuit below must surface them too.
  COBRA_ASSIGN_OR_RETURN(const Table* players_table, store.ClassTable("Player"));
  for (const Predicate& pred : query.player_predicates) {
    COBRA_RETURN_NOT_OK(storage::ValidatePredicate(*players_table, pred));
  }

  const Table* tournaments_table = nullptr;
  Predicate year_pred;
  if (has_champ) {
    COBRA_ASSIGN_OR_RETURN(tournaments_table, store.ClassTable("Tournament"));
    if (query.won_year >= 0) {
      year_pred = {"year", storage::CompareOp::kEq, query.won_year};
      COBRA_RETURN_NOT_OK(storage::ValidatePredicate(*tournaments_table, year_pred));
    }
    // The fixed order calls TraverseReverse("won", ...) even with an empty
    // tournament set, which fails on a missing association.
    COBRA_RETURN_NOT_OK(store.AssociationTable("won").status());
  }

  // Analyzer + finalized checks run before SearchTopN's n == 0 early-out,
  // so this surfaces exactly the text errors the fixed order would.
  auto text_status = [&]() -> Status {
    if (!has_text) return Status::OK();
    return interviews.SearchTopN(query.text, 0).status();
  };

  // The fixed order resolves the similar probe unconditionally after the
  // text stage, so every short-circuit past that point must surface its
  // NotFound too (probe resolution is the stage's only fallible step).
  auto similar_status = [&]() -> Status {
    if (!has_similar || similar_seeded) return Status::OK();
    return ResolveProbeSignature(sig_index, query).status();
  };

  // The fixed order only touches "interviewed_in" when a text hit exists,
  // and "plays_in"/the name attribute only when a player survives — so a
  // short-circuit that skips those stages is error-identical only when the
  // skipped lookups cannot fail.
  const bool text_skip_safe =
      !has_text || store.AssociationTable("interviewed_in").ok();
  // The frontend seed stands in for SearchTopN + the "interviewed_in"
  // walk-back, so it is only taken when that walk-back could not have
  // errored; otherwise the seed is ignored and the local path (with its
  // exact error behavior) runs.
  const bool seeded = text_seed != nullptr && has_text &&
                      store.AssociationTable("interviewed_in").ok();
  const bool event_skip_safe = players_table->ColumnIndex("name").ok() &&
                               store.AssociationTable("plays_in").ok();

  auto finish_empty =
      [&](const std::string& why) -> Result<std::vector<SceneHit>> {
    COBRA_RETURN_NOT_OK(text_status());
    COBRA_RETURN_NOT_OK(similar_status());
    ex.short_circuited = true;
    ex.steps.push_back({"short_circuit: " + why, 0.0, 0});
    return std::vector<SceneHit>{};
  };

  // --- Statistics ---------------------------------------------------------
  const int64_t total_players = players_table->num_rows();

  std::vector<RankedPred> ranked;
  ranked.reserve(query.player_predicates.size());
  bool pred_empty = false;
  double concept_fraction = 1.0;
  for (size_t i = 0; i < query.player_predicates.size(); ++i) {
    COBRA_ASSIGN_OR_RETURN(
        storage::SelectivityEstimate est,
        storage::EstimateSelectivity(*players_table, query.player_predicates[i]));
    ranked.push_back({i, est.fraction, est.provably_empty});
    pred_empty = pred_empty || est.provably_empty;
    concept_fraction *= est.fraction;
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedPred& a, const RankedPred& b) {
                     return a.fraction < b.fraction;
                   });

  bool champ_empty = false;
  double est_champions = 0.0;
  const Table* won_table = nullptr;
  if (has_champ) {
    COBRA_ASSIGN_OR_RETURN(won_table, store.AssociationTable("won"));
    const int64_t won_rows = won_table->num_rows();
    if (won_rows == 0) {
      champ_empty = true;
    } else {
      COBRA_ASSIGN_OR_RETURN(int64_t winner_ndv, won_table->Ndv(0));
      est_champions = static_cast<double>(winner_ndv);
      if (query.won_year >= 0) {
        COBRA_ASSIGN_OR_RETURN(
            storage::SelectivityEstimate year_est,
            storage::EstimateSelectivity(*tournaments_table, year_pred));
        champ_empty = champ_empty || year_est.provably_empty;
        COBRA_ASSIGN_OR_RETURN(int64_t tournament_ndv, won_table->Ndv(1));
        const double winners_per_tournament =
            won_rows / std::max<double>(1.0, static_cast<double>(tournament_ndv));
        const double est_tournaments =
            year_est.fraction * tournaments_table->num_rows();
        est_champions = std::min(est_champions,
                                 est_tournaments * winners_per_tournament);
      }
    }
  }

  double sum_df = 0.0;
  if (has_text) {
    for (const std::string& term : text::Analyze(query.text)) {
      sum_df += static_cast<double>(interviews.DocumentFrequency(term));
    }
  }

  bool event_provably_empty = false;
  if (has_event) {
    if (indexed_videos.empty()) {
      event_provably_empty = true;
    } else {
      const Table& events = meta.events();
      COBRA_ASSIGN_OR_RETURN(size_t name_col, events.ColumnIndex("name"));
      const int32_t code = events.DictCode(name_col, query.event);
      int64_t event_rows = 0;
      if (code >= 0) {
        COBRA_ASSIGN_OR_RETURN(event_rows, events.CodeCount(name_col, code));
      }
      event_provably_empty = event_rows == 0;
    }
  }

  // --- Provably-empty short-circuits --------------------------------------
  if (text_skip_safe) {
    if (total_players == 0) return finish_empty("player table empty");
    if (pred_empty) return finish_empty("player predicate provably empty");
    if (champ_empty) return finish_empty("champion set provably empty");
    if (event_provably_empty && event_skip_safe) {
      return finish_empty(indexed_videos.empty() ? "no indexed videos"
                                                 : "event name unknown");
    }
  }

  // --- Plan-shape decisions ------------------------------------------------
  const double champ_cap =
      has_champ ? std::min(1.0, est_champions /
                                    std::max<double>(1.0, total_players))
                : 1.0;
  const double est_concept = total_players * concept_fraction * champ_cap;
  const size_t n_preds = ranked.size();

  // Champion-first: walking the winners back through "won" costs one probe
  // plus the fan-out per tournament; seeding the refine chain from that set
  // beats scanning the player table when the winners set is much smaller.
  ex.champion_first =
      has_champ && !champ_empty &&
      est_champions * 2.0 * (n_preds + 1.0) < static_cast<double>(total_players);

  // Accept-filtered DAAT is exact only when the top-N bound cannot truncate:
  // text_top_k at least the number of scoring documents (sum of the query
  // terms' document frequencies bounds it from above). It pays when the
  // concept side prunes candidates, making whole posting blocks skippable.
  const bool filter_eligible =
      has_text && static_cast<double>(query.text_top_k) >= sum_df &&
      store.AssociationTable("interviewed_in").ok();
  const bool use_filtered = !seeded && filter_eligible &&
                            (n_preds > 0 || has_champ) &&
                            est_concept <= 0.5 * std::max<int64_t>(1, total_players);

  // Text-first: when the concept side is unselective and the text top-k is
  // small, refining the <= top_k text players (hash probes into the player
  // table) beats the concept scan.
  const double concept_cost =
      ex.champion_first ? est_champions * 2.0 * (n_preds + 1.0)
                        : static_cast<double>(total_players);
  const double est_text_players =
      std::min<double>(static_cast<double>(total_players),
                       static_cast<double>(query.text_top_k));
  ex.text_first =
      has_text && !use_filtered &&
      est_text_players * 16.0 * (n_preds + (has_champ ? 1.0 : 0.0) + 1.0) <
          concept_cost;

  // --- Champion set (shared by both concept orders) ------------------------
  std::vector<int64_t> champions;
  bool champions_computed = false;
  auto compute_champions = [&]() -> Status {
    if (!has_champ || champions_computed) return Status::OK();
    champions_computed = true;
    webspace::ClassSelection tournaments{"Tournament", {}};
    if (query.won_year >= 0) tournaments.predicates.push_back(year_pred);
    COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> tournament_oids,
                           webspace::SelectObjects(store, tournaments));
    TraversalStrategy chosen = TraversalStrategy::kWalk;
    COBRA_ASSIGN_OR_RETURN(
        champions,
        store.TraverseReverse("won", tournament_oids, /*role=*/-1,
                              TraversalStrategy::kAuto, &chosen));
    ex.steps.push_back({StringFormat("champions[%s]", StrategyName(chosen)),
                        est_champions,
                        static_cast<int64_t>(champions.size())});
    return Status::OK();
  };

  // Refines player-table rows through the attribute predicates in
  // cost-sorted order, recording one explain step per predicate.
  auto refine_rows = [&](std::vector<int64_t> rows,
                         double est_in) -> Result<std::vector<int64_t>> {
    for (const RankedPred& rp : ranked) {
      est_in *= rp.fraction;
      COBRA_ASSIGN_OR_RETURN(
          rows, storage::Refine(*players_table,
                                query.player_predicates[rp.index], rows));
      ex.steps.push_back(
          {"predicate " + query.player_predicates[rp.index].column, est_in,
           static_cast<int64_t>(rows.size())});
    }
    return rows;
  };

  // --- Concept + text execution -------------------------------------------
  std::vector<int64_t> players;        // surviving oids, ascending
  std::map<int64_t, double> text_scores;

  auto collect_text_scores =
      [&](const std::vector<text::SearchHit>& hits) -> Status {
    for (const text::SearchHit& hit : hits) {
      COBRA_ASSIGN_OR_RETURN(
          std::vector<int64_t> hit_players,
          store.TraverseReverse("interviewed_in", {hit.doc_id}));
      for (int64_t p : hit_players) {
        auto [it, inserted] = text_scores.emplace(p, hit.score);
        if (!inserted) it->second = std::max(it->second, hit.score);
      }
    }
    return Status::OK();
  };

  if (ex.text_first) {
    if (seeded) {
      COBRA_RETURN_NOT_OK(interviews.SearchTopN(query.text, 0).status());
      text_scores = *text_seed;
      ex.text_seeded = true;
    } else {
      COBRA_ASSIGN_OR_RETURN(
          std::vector<text::SearchHit> hits,
          interviews.SearchTopN(query.text, query.text_top_k, stats));
      COBRA_RETURN_NOT_OK(collect_text_scores(hits));
    }
    std::vector<int64_t> candidates;
    candidates.reserve(text_scores.size());
    for (const auto& [oid, score] : text_scores) candidates.push_back(oid);
    ex.steps.push_back({seeded ? "text:frontend_seed" : "text:seed",
                        est_text_players,
                        static_cast<int64_t>(candidates.size())});
    COBRA_ASSIGN_OR_RETURN(
        std::vector<int64_t> rows,
        refine_rows(OidsToRows(store, candidates),
                    static_cast<double>(candidates.size())));
    players = RowsToOids(*players_table, rows);
    if (has_champ) {
      COBRA_RETURN_NOT_OK(compute_champions());
      std::vector<int64_t> kept;
      for (int64_t p : players) {
        if (std::binary_search(champions.begin(), champions.end(), p)) {
          kept.push_back(p);
        }
      }
      players = std::move(kept);
      ex.steps.push_back({"champion filter", est_concept,
                          static_cast<int64_t>(players.size())});
    }
  } else {
    if (ex.champion_first) {
      COBRA_RETURN_NOT_OK(compute_champions());
      COBRA_ASSIGN_OR_RETURN(
          std::vector<int64_t> rows,
          refine_rows(OidsToRows(store, champions),
                      static_cast<double>(champions.size())));
      players = RowsToOids(*players_table, rows);
    } else {
      std::vector<int64_t> rows;
      if (n_preds == 0) {
        rows.reserve(static_cast<size_t>(total_players));
        for (int64_t r = 0; r < total_players; ++r) rows.push_back(r);
        COBRA_ASSIGN_OR_RETURN(rows, refine_rows(std::move(rows),
                                                 static_cast<double>(total_players)));
      } else {
        // First (most selective) predicate as a zone-map-skipping full
        // Select, the rest as refines over the shrinking selection.
        COBRA_ASSIGN_OR_RETURN(
            rows, storage::Select(*players_table,
                                  query.player_predicates[ranked[0].index]));
        ex.steps.push_back(
            {"predicate " + query.player_predicates[ranked[0].index].column,
             ranked[0].fraction * total_players,
             static_cast<int64_t>(rows.size())});
        double est_in = ranked[0].fraction * total_players;
        for (size_t k = 1; k < ranked.size(); ++k) {
          est_in *= ranked[k].fraction;
          COBRA_ASSIGN_OR_RETURN(
              rows,
              storage::Refine(*players_table,
                              query.player_predicates[ranked[k].index], rows));
          ex.steps.push_back(
              {"predicate " + query.player_predicates[ranked[k].index].column,
               est_in, static_cast<int64_t>(rows.size())});
        }
      }
      players = RowsToOids(*players_table, rows);
      if (has_champ) {
        COBRA_RETURN_NOT_OK(compute_champions());
        std::vector<int64_t> kept;
        for (int64_t p : players) {
          if (std::binary_search(champions.begin(), champions.end(), p)) {
            kept.push_back(p);
          }
        }
        players = std::move(kept);
        ex.steps.push_back({"champion filter", est_concept,
                            static_cast<int64_t>(players.size())});
      }
    }

    if (players.empty() && text_skip_safe) {
      return finish_empty("concept stage empty");
    }

    if (has_text && seeded) {
      COBRA_RETURN_NOT_OK(interviews.SearchTopN(query.text, 0).status());
      text_scores = *text_seed;
      ex.text_seeded = true;
      ex.steps.push_back({"text:frontend_seed", est_text_players,
                          static_cast<int64_t>(text_scores.size())});
      std::vector<int64_t> kept;
      for (int64_t p : players) {
        if (text_scores.count(p)) kept.push_back(p);
      }
      players = std::move(kept);
    } else if (has_text) {
      std::vector<text::SearchHit> hits;
      if (use_filtered) {
        COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> accept,
                               store.Traverse("interviewed_in", players));
        COBRA_ASSIGN_OR_RETURN(
            hits, interviews.SearchTopNFiltered(query.text, query.text_top_k,
                                                accept, stats));
        ex.text_filter_pushed = true;
        ex.steps.push_back({StringFormat("text:filtered(accept=%zu)",
                                         accept.size()),
                            sum_df, static_cast<int64_t>(hits.size())});
      } else {
        COBRA_ASSIGN_OR_RETURN(
            hits, interviews.SearchTopN(query.text, query.text_top_k, stats));
        ex.steps.push_back({"text:global", est_text_players,
                            static_cast<int64_t>(hits.size())});
      }
      COBRA_RETURN_NOT_OK(collect_text_scores(hits));
      std::vector<int64_t> kept;
      for (int64_t p : players) {
        if (text_scores.count(p)) kept.push_back(p);
      }
      players = std::move(kept);
    }
  }

  // --- Similar stage -------------------------------------------------------
  // Runs before the empty-players early return below: the fixed order
  // resolves the probe even when no player survived, and its NotFound must
  // win over an empty result.
  SimilarNeighbors similar;
  if (has_similar) {
    const double est_k =
        static_cast<double>(EffectiveSimilarK(sig_index, query));
    if (similar_seeded) {
      similar = similar_seed->neighbors;
      ex.similar_seeded = true;
      int64_t n_neighbors = 0;
      for (const auto& [video, shots] : similar) {
        n_neighbors += static_cast<int64_t>(shots.size());
      }
      ex.steps.push_back({"similar:frontend_seed", est_k, n_neighbors});
    } else {
      similarity::SimilaritySearchStats sstats;
      COBRA_ASSIGN_OR_RETURN(similar, SimilarStage(sig_index, query, &sstats));
      int64_t n_neighbors = 0;
      for (const auto& [video, shots] : similar) {
        n_neighbors += static_cast<int64_t>(shots.size());
      }
      ex.steps.push_back(
          {StringFormat("similar:%s(probes=%zu)",
                        sstats.exhaustive_fallback ? "exhaustive" : "ann",
                        sstats.probes),
           est_k, n_neighbors});
    }
  }

  ex.steps.push_back({"players", est_concept,
                      static_cast<int64_t>(players.size())});
  if (players.empty()) {
    ex.short_circuited = true;
    return std::vector<SceneHit>{};
  }

  // --- Event stage ---------------------------------------------------------
  std::vector<SceneHit> out;
  const std::set<int64_t> indexed(indexed_videos.begin(), indexed_videos.end());

  auto player_name = [&](int64_t player) -> Result<std::string> {
    COBRA_ASSIGN_OR_RETURN(storage::Value v,
                           store.GetAttribute("Player", player, "name"));
    return std::get<std::string>(v);
  };
  auto score_of = [&](int64_t player) {
    auto it = text_scores.find(player);
    return it == text_scores.end() ? 0.0 : it->second;
  };
  // Best (smallest) distance key among neighbor shots overlapping `range`;
  // false when none overlaps (the scene is not an answer).
  auto best_overlap = [](const std::vector<SimilarShot>& shots,
                         const FrameInterval& range, double* best) {
    bool overlapped = false;
    for (const SimilarShot& shot : shots) {
      if (!range.Overlaps(shot.range)) continue;
      if (!overlapped || shot.distance < *best) *best = shot.distance;
      overlapped = true;
    }
    return overlapped;
  };

  if (!has_event && !has_similar) {
    for (int64_t player : players) {
      COBRA_ASSIGN_OR_RETURN(std::string name, player_name(player));
      SceneHit hit;
      hit.player_oid = player;
      hit.player_name = std::move(name);
      hit.text_score = score_of(player);
      out.push_back(std::move(hit));
    }
  } else if (!has_event) {
    // Similar-only content condition: every neighbor shot of an indexed
    // video the player plays in is an answer scene.
    for (int64_t player : players) {
      COBRA_ASSIGN_OR_RETURN(std::string name, player_name(player));
      const double score = score_of(player);
      COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> videos,
                             store.Traverse("plays_in", {player}));
      for (int64_t video : videos) {
        if (!indexed.count(video)) continue;
        auto it = similar.find(video);
        if (it == similar.end()) continue;
        for (const SimilarShot& shot : it->second) {
          SceneHit hit;
          hit.player_oid = player;
          hit.player_name = name;
          hit.video_oid = video;
          hit.range = shot.range;
          hit.text_score = score;
          hit.similarity = shot.distance;
          out.push_back(std::move(hit));
        }
      }
    }
  } else if (event_provably_empty && event_skip_safe) {
    ex.steps.push_back({"events: provably empty, skipped", 0.0, 0});
  } else {
    // Estimated (player, indexed video) pairs decide between one grouped
    // events scan and the per-pair FindScenes rescans of the fixed order.
    double fanout = 1.0;
    if (auto plays = store.AssociationTable("plays_in"); plays.ok()) {
      const Table* pt = plays.value();
      if (pt->num_rows() > 0) {
        COBRA_ASSIGN_OR_RETURN(int64_t from_ndv, pt->Ndv(0));
        fanout = pt->num_rows() / std::max<double>(1.0, from_ndv);
      }
    }
    const double est_pairs = players.size() * fanout;
    ex.event_single_scan = est_pairs >= 2.0;

    if (ex.event_single_scan) {
      COBRA_ASSIGN_OR_RETURN(std::vector<core::Scene> scenes,
                             meta.FindScenes(query.event));
      // Group by video, preserving events-table row order within each
      // group — the order FindScenes(event, video) would return. With a
      // similar condition, the neighbor video set is pushed down here:
      // scenes of videos without a neighbor shot can never be answers.
      std::map<int64_t, std::vector<const core::Scene*>> by_video;
      for (const core::Scene& scene : scenes) {
        if (has_similar && !similar.count(scene.video_id)) continue;
        by_video[scene.video_id].push_back(&scene);
      }
      ex.similar_filter_pushed = has_similar;
      ex.steps.push_back({"events:single_scan", est_pairs,
                          static_cast<int64_t>(scenes.size())});
      for (int64_t player : players) {
        COBRA_ASSIGN_OR_RETURN(std::string name, player_name(player));
        const double score = score_of(player);
        COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> videos,
                               store.Traverse("plays_in", {player}));
        for (int64_t video : videos) {
          if (!indexed.count(video)) continue;
          auto group = by_video.find(video);
          if (group == by_video.end()) continue;
          const std::vector<SimilarShot>* neighbors = nullptr;
          if (has_similar) neighbors = &similar.at(video);
          COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> roles,
                                 store.Roles("plays_in", player, video));
          const std::set<int64_t> role_set(roles.begin(), roles.end());
          for (const core::Scene* scene : group->second) {
            if (scene->player >= 0 && !role_set.count(scene->player)) continue;
            double similarity = -1.0;
            if (neighbors != nullptr &&
                !best_overlap(*neighbors, scene->range, &similarity)) {
              continue;
            }
            SceneHit hit;
            hit.player_oid = player;
            hit.player_name = name;
            hit.video_oid = video;
            hit.range = scene->range;
            hit.event = scene->event;
            hit.text_score = score;
            hit.similarity = similarity;
            out.push_back(std::move(hit));
          }
        }
      }
    } else {
      ex.steps.push_back({"events:per_pair", est_pairs, -1});
      for (int64_t player : players) {
        COBRA_ASSIGN_OR_RETURN(std::string name, player_name(player));
        const double score = score_of(player);
        COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> videos,
                               store.Traverse("plays_in", {player}));
        for (int64_t video : videos) {
          if (!indexed.count(video)) continue;
          const std::vector<SimilarShot>* neighbors = nullptr;
          if (has_similar) {
            auto it = similar.find(video);
            if (it == similar.end()) continue;
            neighbors = &it->second;
          }
          COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> roles,
                                 store.Roles("plays_in", player, video));
          const std::set<int64_t> role_set(roles.begin(), roles.end());
          COBRA_ASSIGN_OR_RETURN(std::vector<core::Scene> scenes,
                                 meta.FindScenes(query.event, video));
          for (const core::Scene& scene : scenes) {
            if (scene.player >= 0 && !role_set.count(scene.player)) continue;
            double similarity = -1.0;
            if (neighbors != nullptr &&
                !best_overlap(*neighbors, scene.range, &similarity)) {
              continue;
            }
            SceneHit hit;
            hit.player_oid = player;
            hit.player_name = name;
            hit.video_oid = video;
            hit.range = scene.range;
            hit.event = scene.event;
            hit.text_score = score;
            hit.similarity = similarity;
            out.push_back(std::move(hit));
          }
        }
      }
    }
  }

  ex.steps.push_back({"hits", static_cast<double>(out.size()),
                      static_cast<int64_t>(out.size())});
  // The shared total order makes the output bit-identical to the fixed
  // pipeline whenever the hit multisets agree.
  std::sort(out.begin(), out.end(), SceneHitLess);
  return out;
}

}  // namespace

Result<std::vector<SceneHit>> SearchPlanned(
    const LibraryView& view, const CombinedQuery& query,
    text::SearchStats* stats, PlanExplain* explain,
    const std::map<int64_t, double>* text_seed,
    const SimilarSeed* similar_seed) {
  PlanExplain ex;
  Result<std::vector<SceneHit>> result =
      SearchPlannedImpl(view, query, stats, ex, text_seed, similar_seed);
  if (explain != nullptr) *explain = std::move(ex);
  return result;
}

}  // namespace cobra::engine::planner
