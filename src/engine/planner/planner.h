#pragma once

/// \file planner.h
/// The cost-based combined-query planner (DESIGN.md §4g). Instead of the
/// fixed concept -> text -> event pipeline of
/// `DigitalLibrary::SearchFixedOrder`, `SearchPlanned` orders the stages
/// and picks physical operators from exact table statistics
/// (`storage::Table::Stats`, `storage::EstimateSelectivity`):
///   * attribute predicates run cheapest-and-most-selective first;
///   * the champion join runs before the attribute scan when the winners
///     set is estimated smaller than the player table;
///   * the text stage either seeds the candidate set (text-first), runs
///     globally, or — when the top-N bound provably cannot truncate — takes
///     the concept candidates as a DAAT accept filter
///     (`InvertedIndex::SearchTopNFiltered`) so postings of non-candidates
///     are skipped block-wise;
///   * the event stage replaces the per-(player, video) `FindScenes`
///     rescans with one grouped scan when more than one pair is expected;
///   * provably-empty modalities (dictionary miss, empty zone range, no
///     indexed videos) short-circuit the whole plan.
/// Results are bit-identical to the fixed order on every query, including
/// error behavior: short-circuits still surface exactly the validation
/// errors the fixed pipeline would have hit.

#include <map>
#include <vector>

#include "engine/digital_library.h"
#include "engine/planner/plan.h"

namespace cobra::engine::planner {

/// Non-owning view of the DigitalLibrary internals the planner reads.
struct LibraryView {
  const webspace::WebspaceStore* store = nullptr;
  const text::InvertedIndex* interviews = nullptr;
  const core::MetaIndex* meta_index = nullptr;
  const std::vector<int64_t>* indexed_videos = nullptr;
  const similarity::SignatureIndex* signatures = nullptr;
};

/// Plans and executes `query`. `stats` (optional) receives the text-index
/// work counters; `explain` (optional) receives the executed plan — written
/// on success and on short-circuit, untouched when planning fails early.
///
/// `text_seed` (optional) is a precomputed player→score text stage (see
/// DigitalLibrary::TextStage); when usable it replaces the local DAAT run.
/// The seed must come from an identical interview index + store, which the
/// serving tier guarantees by replicating the text modality per shard.
///
/// `similar_seed` (optional) is the frontend-resolved similar stage (see
/// DigitalLibrary::SimilarSeed); when present and the query has a
/// similar_to condition, the neighbor set is taken verbatim instead of
/// probing the local (partition-scoped) ANN index.
Result<std::vector<SceneHit>> SearchPlanned(
    const LibraryView& view, const CombinedQuery& query,
    text::SearchStats* stats, PlanExplain* explain,
    const std::map<int64_t, double>* text_seed = nullptr,
    const SimilarSeed* similar_seed = nullptr);

}  // namespace cobra::engine::planner
