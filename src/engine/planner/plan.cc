#include "engine/planner/plan.h"

#include "util/strings.h"

namespace cobra::engine::planner {

std::string PlanExplain::ToString() const {
  std::string out = "plan:";
  if (!used_planner) {
    out += " fixed-order (planner disabled)";
    return out;
  }
  auto flag = [&](bool set, const char* name) {
    if (set) {
      out += ' ';
      out += name;
    }
  };
  flag(short_circuited, "short_circuited");
  flag(text_first, "text_first");
  flag(champion_first, "champion_first");
  flag(text_filter_pushed, "text_filter_pushed");
  flag(text_seeded, "text_seeded");
  flag(similar_seeded, "similar_seeded");
  flag(similar_filter_pushed, "similar_filter_pushed");
  flag(event_single_scan, "event_single_scan");
  for (const PlanStep& step : steps) {
    out += StringFormat("\n  %-40s est=%.1f actual=%lld", step.name.c_str(),
                        step.est_rows, static_cast<long long>(step.actual_rows));
  }
  return out;
}

}  // namespace cobra::engine::planner
