#pragma once

/// \file digital_library.h
/// The digital library search engine of the demo: one façade over the three
/// retrieval components —
///   * the webspace concept store (who won, who is left-handed, ...),
///   * the full-text index over interviews (ref [1]),
///   * the COBRA meta-index over videos (which scenes show a net play),
/// answering combined queries such as the paper's §2 example: "video scenes
/// of left-handed female players who have won the Australian Open in the
/// past, in which they approach the net."
///
/// The engine binds to the tournament schema of
/// webspace::SiteSynthesizer::TournamentSchema().

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/meta_index.h"
#include "core/video_description.h"
#include "engine/planner/plan.h"
#include "text/inverted_index.h"
#include "webspace/query.h"
#include "webspace/store.h"

namespace cobra::engine {

/// One answer scene (or player-only answer when no event was asked for).
struct SceneHit {
  int64_t player_oid = 0;
  std::string player_name;
  int64_t video_oid = -1;      ///< -1 when the query had no content part
  FrameInterval range;         ///< empty when the query had no content part
  std::string event;
  double text_score = 0.0;     ///< best interview score when text was queried
};

/// The combined concept + content + text query.
struct CombinedQuery {
  /// Attribute predicates on the Player class (hand, gender, country,
  /// ranking...).
  std::vector<storage::Predicate> player_predicates;
  /// Require the player to have won a tournament; restrict to a year when
  /// won_year >= 0.
  bool require_champion = false;
  int64_t won_year = -1;
  /// Full-text condition on the player's interviews (empty = none).
  std::string text;
  size_t text_top_k = 10;
  /// Content-based condition: only scenes showing this event (empty = none).
  std::string event;
};

class DigitalLibrary {
 public:
  /// Takes ownership of a store conforming to the tournament schema.
  static Result<std::unique_ptr<DigitalLibrary>> Create(
      webspace::WebspaceStore store);

  /// Reassembles a library from persisted parts (the durable storage
  /// restore surface, DESIGN.md §4h). `interviews` may be finalized or
  /// still accepting documents — un-finalized pending interviews are
  /// replayed through AddInterview by the caller. The epoch is restored so
  /// epoch-tagged query caches built against the persisted library stay
  /// coherent across restarts.
  static Result<std::unique_ptr<DigitalLibrary>> CreateFromParts(
      webspace::WebspaceStore store, text::InvertedIndex interviews,
      core::MetaIndex meta_index, std::vector<int64_t> indexed_videos,
      int64_t index_epoch);

  const webspace::WebspaceStore& store() const { return store_; }
  const core::MetaIndex& meta_index() const { return meta_index_; }
  /// The interview text index (serialization surface).
  const text::InvertedIndex& interviews() const { return interviews_; }
  /// Oids of videos with an indexed description, in AddVideoDescription
  /// order (serialization surface).
  const std::vector<int64_t>& indexed_videos() const { return indexed_videos_; }

  /// Indexes an interview's text under its oid.
  Status AddInterview(int64_t interview_oid, const std::string& text);
  /// Freezes the text index; required before Search with a text condition.
  Status FinalizeText();

  /// Adds an indexed video. desc.video_id() must equal the Video object's
  /// oid in the webspace store.
  Status AddVideoDescription(const core::VideoDescription& desc);

  /// Monotonic counter bumped whenever a successful mutation changes what
  /// Search can return (FinalizeText, AddVideoDescription). Query-result
  /// caches key on it: an entry tagged with an older epoch is stale.
  int64_t index_epoch() const { return index_epoch_; }

  /// The combined query. Results are fully deterministically ordered:
  /// text score descending, then video id, then scene start, then scene
  /// end, then player oid, then event name; text_score carries the
  /// interview relevance when a text condition was present (0 otherwise).
  /// When `stats` is non-null it receives the text-index work counters of
  /// this query (zeroed when the query has no text condition).
  ///
  /// Dispatches to the cost-based planner (DESIGN.md §4g) when
  /// planner_enabled() — bit-identical results to SearchFixedOrder, usually
  /// much faster. When `explain` is non-null it receives the executed plan.
  ///
  /// `text_seed` is the shard-aware serving hook (DESIGN.md §4i): a
  /// player→score map computed by TextStage() on a library with an
  /// identical interview index (in the serving tier the interview layer is
  /// replicated, so the frontend evaluates it once and fans the result
  /// out). When non-null and the query has a text condition, the text
  /// stage is taken verbatim from the seed instead of re-running the DAAT
  /// — results are bit-identical by construction.
  Result<std::vector<SceneHit>> Search(
      const CombinedQuery& query, text::SearchStats* stats = nullptr,
      planner::PlanExplain* explain = nullptr,
      const std::map<int64_t, double>* text_seed = nullptr) const;

  /// The original fixed-order pipeline (concept scan -> text -> events),
  /// kept verbatim as the reference oracle the planner is validated
  /// against and as the planner-off baseline for E7/E8. Accepts the same
  /// `text_seed` hook as Search.
  Result<std::vector<SceneHit>> SearchFixedOrder(
      const CombinedQuery& query, text::SearchStats* stats = nullptr,
      const std::map<int64_t, double>* text_seed = nullptr) const;

  /// The text stage in isolation: players scored by their best interview
  /// for `text` (top_k interviews ranked, walked back through
  /// "interviewed_in"). This is exactly the map both Search paths compute
  /// internally for a text condition — exposed so the serving frontend can
  /// evaluate the replicated text modality once per query and pass it to
  /// every shard as `text_seed`.
  Result<std::map<int64_t, double>> TextStage(
      const std::string& text, size_t top_k,
      text::SearchStats* stats = nullptr) const {
    return TextPlayers(text, top_k, stats);
  }

  /// Plans and executes `query`, returning only the explain record
  /// (chosen stage order, estimated vs actual cardinalities).
  Result<planner::PlanExplain> ExplainSearch(const CombinedQuery& query) const;

  /// Toggles the cost-based planner (default on). Off routes Search
  /// through SearchFixedOrder.
  void set_planner_enabled(bool enabled) { planner_enabled_ = enabled; }
  bool planner_enabled() const { return planner_enabled_; }

  /// Keyword-only baseline (what a flat web search engine sees, paper §2):
  /// ranks players by their best interview's tf-idf score for `text`.
  Result<std::vector<SceneHit>> SearchKeywordOnly(
      const std::string& text, size_t top_k,
      text::SearchStats* stats = nullptr) const;

  /// Library statistics: event counts by name across all indexed videos
  /// (a group-by over the meta-index events table).
  Result<std::vector<storage::GroupRow>> EventStatistics() const;

  /// Scenes of `event` per player name, descending by count (players with
  /// zero scenes omitted).
  Result<std::vector<std::pair<std::string, int64_t>>> ScenesPerPlayer(
      const std::string& event) const;

 private:
  explicit DigitalLibrary(webspace::WebspaceStore store);

  Result<std::vector<int64_t>> ConceptPlayers(const CombinedQuery& query) const;
  Result<std::map<int64_t, double>> TextPlayers(const std::string& text,
                                                size_t top_k,
                                                text::SearchStats* stats) const;

  webspace::WebspaceStore store_;
  text::InvertedIndex interviews_;
  core::MetaIndex meta_index_;
  std::vector<int64_t> indexed_videos_;
  int64_t index_epoch_ = 0;
  bool planner_enabled_ = true;
};

/// The total order both Search paths sort hits by (text score descending,
/// then video, scene start, scene end, player oid, event name). Shared so
/// the planner is bit-identical to the fixed-order pipeline by
/// construction once the hit multisets agree.
bool SceneHitLess(const SceneHit& a, const SceneHit& b);

}  // namespace cobra::engine
