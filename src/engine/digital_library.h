#pragma once

/// \file digital_library.h
/// The digital library search engine of the demo: one façade over the three
/// retrieval components —
///   * the webspace concept store (who won, who is left-handed, ...),
///   * the full-text index over interviews (ref [1]),
///   * the COBRA meta-index over videos (which scenes show a net play),
/// answering combined queries such as the paper's §2 example: "video scenes
/// of left-handed female players who have won the Australian Open in the
/// past, in which they approach the net."
///
/// The engine binds to the tournament schema of
/// webspace::SiteSynthesizer::TournamentSchema().

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/meta_index.h"
#include "core/video_description.h"
#include "engine/planner/plan.h"
#include "engine/similarity/similarity.h"
#include "text/inverted_index.h"
#include "webspace/query.h"
#include "webspace/store.h"

namespace cobra::engine {

/// One answer scene (or player-only answer when no event was asked for).
struct SceneHit {
  int64_t player_oid = 0;
  std::string player_name;
  int64_t video_oid = -1;      ///< -1 when the query had no content part
  FrameInterval range;         ///< empty when the query had no content part
  std::string event;
  double text_score = 0.0;     ///< best interview score when text was queried
  /// similarity::DistanceKey to the probe shot when the query had a
  /// similar_to condition (smaller = more similar); -1 otherwise. For event
  /// + similar queries this is the best key among neighbor shots the scene
  /// overlaps.
  double similarity = -1.0;
};

/// The combined concept + content + text query.
struct CombinedQuery {
  /// Attribute predicates on the Player class (hand, gender, country,
  /// ranking...).
  std::vector<storage::Predicate> player_predicates;
  /// Require the player to have won a tournament; restrict to a year when
  /// won_year >= 0.
  bool require_champion = false;
  int64_t won_year = -1;
  /// Full-text condition on the player's interviews (empty = none).
  std::string text;
  size_t text_top_k = 10;
  /// Content-based condition: only scenes showing this event (empty = none).
  std::string event;
  /// Query-by-example condition (similar_video >= 0 = present): scenes
  /// perceptually similar to the shot of `similar_video` containing frame
  /// `similar_frame`. Top `similar_k` neighbor shots are considered (0 =
  /// the index's rerank_k default), excluding the probe shot itself.
  int64_t similar_video = -1;
  int64_t similar_frame = -1;
  size_t similar_k = 0;
};

/// One neighbor shot of the similar stage: its interval and its
/// similarity::DistanceKey to the probe.
struct SimilarShot {
  FrameInterval range;
  double distance = 0.0;
};

/// The similar stage's result: neighbor shots grouped by video oid (the
/// shape both search paths and the planner consume).
using SimilarNeighbors = std::map<int64_t, std::vector<SimilarShot>>;

/// Resolved similar stage fanned out shard-wide by the serving frontend —
/// the partitioned-modality analog of `text_seed`. The signature modality
/// is partitioned (each shard indexes only its videos), so the frontend
/// resolves the probe signature and the *global* top-k neighbor set once
/// (merging per-shard candidate lists under the total neighbor order) and
/// every shard consumes the same set; a shard contributes exactly the
/// hits of its own videos and the union reproduces the unsharded answer.
struct SimilarSeed {
  vision::ShotSignature signature;
  SimilarNeighbors neighbors;
};

/// Resolves the probe signature of `query` from `index` (NotFound when the
/// probe scene has no indexed signature).
Result<vision::ShotSignature> ResolveProbeSignature(
    const similarity::SignatureIndex& index, const CombinedQuery& query);

/// Groups a *sorted* candidate list (SearchSimilar order) into
/// SimilarNeighbors: drops the probe shot itself, truncates to `k`
/// neighbors, groups by video. Shared by the library paths and the
/// serving frontend's cross-shard merge.
SimilarNeighbors BuildSimilarNeighbors(
    const std::vector<similarity::Neighbor>& candidates,
    const CombinedQuery& query, size_t k);

/// The full similar stage against one index: resolve, search (k + 1
/// candidates so the probe's own shot never displaces a neighbor), group.
Result<SimilarNeighbors> SimilarStage(
    const similarity::SignatureIndex& index, const CombinedQuery& query,
    similarity::SimilaritySearchStats* stats = nullptr);

/// Effective neighbor count of `query` against `index` (similar_k, or the
/// index's rerank_k default when unset).
size_t EffectiveSimilarK(const similarity::SignatureIndex& index,
                         const CombinedQuery& query);

class DigitalLibrary {
 public:
  /// Takes ownership of a store conforming to the tournament schema.
  static Result<std::unique_ptr<DigitalLibrary>> Create(
      webspace::WebspaceStore store);

  /// Reassembles a library from persisted parts (the durable storage
  /// restore surface, DESIGN.md §4h). `interviews` may be finalized or
  /// still accepting documents — un-finalized pending interviews are
  /// replayed through AddInterview by the caller. The epoch is restored so
  /// epoch-tagged query caches built against the persisted library stay
  /// coherent across restarts.
  /// `signature_chunks` are zero-copy views into persisted signature
  /// sections (the caller keeps the backing segments mapped for the
  /// library's lifetime).
  static Result<std::unique_ptr<DigitalLibrary>> CreateFromParts(
      webspace::WebspaceStore store, text::InvertedIndex interviews,
      core::MetaIndex meta_index, std::vector<int64_t> indexed_videos,
      int64_t index_epoch,
      std::vector<std::pair<const vision::SignatureRecord*, size_t>>
          signature_chunks = {});

  const webspace::WebspaceStore& store() const { return store_; }
  const core::MetaIndex& meta_index() const { return meta_index_; }
  /// The interview text index (serialization surface).
  const text::InvertedIndex& interviews() const { return interviews_; }
  /// Oids of videos with an indexed description, in AddVideoDescription
  /// order (serialization surface).
  const std::vector<int64_t>& indexed_videos() const { return indexed_videos_; }

  /// Indexes an interview's text under its oid.
  Status AddInterview(int64_t interview_oid, const std::string& text);
  /// Freezes the text index; required before Search with a text condition.
  Status FinalizeText();

  /// Adds an indexed video. desc.video_id() must equal the Video object's
  /// oid in the webspace store.
  Status AddVideoDescription(const core::VideoDescription& desc);

  /// Adds per-shot perceptual signatures for `video_id` (the similar_to
  /// modality; DESIGN.md §4j). Every record must carry that video id.
  Status AddVideoSignatures(int64_t video_id,
                            const std::vector<vision::SignatureRecord>& records);

  /// The signature ANN index (similar_to evaluation + serialization
  /// surface).
  const similarity::SignatureIndex& signatures() const { return signatures_; }

  /// Reconfigures the signature index (band count, bits, threshold),
  /// rebuilding its tables over the records already added. Results of
  /// similar_to queries may legitimately change (the threshold is part of
  /// the query semantics), so the epoch is bumped.
  Status SetSignatureConfig(const similarity::SignatureIndexConfig& config);

  /// Monotonic counter bumped whenever a successful mutation changes what
  /// Search can return (FinalizeText, AddVideoDescription). Query-result
  /// caches key on it: an entry tagged with an older epoch is stale.
  int64_t index_epoch() const { return index_epoch_; }

  /// The combined query. Results are fully deterministically ordered:
  /// text score descending, then video id, then scene start, then scene
  /// end, then player oid, then event name; text_score carries the
  /// interview relevance when a text condition was present (0 otherwise).
  /// When `stats` is non-null it receives the text-index work counters of
  /// this query (zeroed when the query has no text condition).
  ///
  /// Dispatches to the cost-based planner (DESIGN.md §4g) when
  /// planner_enabled() — bit-identical results to SearchFixedOrder, usually
  /// much faster. When `explain` is non-null it receives the executed plan.
  ///
  /// `text_seed` is the shard-aware serving hook (DESIGN.md §4i): a
  /// player→score map computed by TextStage() on a library with an
  /// identical interview index (in the serving tier the interview layer is
  /// replicated, so the frontend evaluates it once and fans the result
  /// out). When non-null and the query has a text condition, the text
  /// stage is taken verbatim from the seed instead of re-running the DAAT
  /// — results are bit-identical by construction.
  ///
  /// `similar_seed` is the same hook for the similar_to modality, which is
  /// *partitioned* rather than replicated: the frontend resolves the probe
  /// signature and global neighbor set once and every shard consumes it
  /// verbatim (see SimilarSeed).
  Result<std::vector<SceneHit>> Search(
      const CombinedQuery& query, text::SearchStats* stats = nullptr,
      planner::PlanExplain* explain = nullptr,
      const std::map<int64_t, double>* text_seed = nullptr,
      const SimilarSeed* similar_seed = nullptr) const;

  /// The original fixed-order pipeline (concept scan -> text -> events),
  /// kept verbatim as the reference oracle the planner is validated
  /// against and as the planner-off baseline for E7/E8. Accepts the same
  /// `text_seed` hook as Search.
  Result<std::vector<SceneHit>> SearchFixedOrder(
      const CombinedQuery& query, text::SearchStats* stats = nullptr,
      const std::map<int64_t, double>* text_seed = nullptr,
      const SimilarSeed* similar_seed = nullptr) const;

  /// The text stage in isolation: players scored by their best interview
  /// for `text` (top_k interviews ranked, walked back through
  /// "interviewed_in"). This is exactly the map both Search paths compute
  /// internally for a text condition — exposed so the serving frontend can
  /// evaluate the replicated text modality once per query and pass it to
  /// every shard as `text_seed`.
  Result<std::map<int64_t, double>> TextStage(
      const std::string& text, size_t top_k,
      text::SearchStats* stats = nullptr) const {
    return TextPlayers(text, top_k, stats);
  }

  /// Plans and executes `query`, returning only the explain record
  /// (chosen stage order, estimated vs actual cardinalities).
  Result<planner::PlanExplain> ExplainSearch(const CombinedQuery& query) const;

  /// Toggles the cost-based planner (default on). Off routes Search
  /// through SearchFixedOrder.
  void set_planner_enabled(bool enabled) { planner_enabled_ = enabled; }
  bool planner_enabled() const { return planner_enabled_; }

  /// Keyword-only baseline (what a flat web search engine sees, paper §2):
  /// ranks players by their best interview's tf-idf score for `text`.
  Result<std::vector<SceneHit>> SearchKeywordOnly(
      const std::string& text, size_t top_k,
      text::SearchStats* stats = nullptr) const;

  /// Library statistics: event counts by name across all indexed videos
  /// (a group-by over the meta-index events table).
  Result<std::vector<storage::GroupRow>> EventStatistics() const;

  /// Scenes of `event` per player name, descending by count (players with
  /// zero scenes omitted).
  Result<std::vector<std::pair<std::string, int64_t>>> ScenesPerPlayer(
      const std::string& event) const;

 private:
  explicit DigitalLibrary(webspace::WebspaceStore store);

  Result<std::vector<int64_t>> ConceptPlayers(const CombinedQuery& query) const;
  Result<std::map<int64_t, double>> TextPlayers(const std::string& text,
                                                size_t top_k,
                                                text::SearchStats* stats) const;

  webspace::WebspaceStore store_;
  text::InvertedIndex interviews_;
  core::MetaIndex meta_index_;
  std::vector<int64_t> indexed_videos_;
  similarity::SignatureIndex signatures_;
  int64_t index_epoch_ = 0;
  bool planner_enabled_ = true;
};

/// The total order both Search paths sort hits by (text score descending,
/// then similarity distance ascending, then video, scene start, scene end,
/// player oid, event name). Shared so the planner is bit-identical to the
/// fixed-order pipeline by construction once the hit multisets agree.
bool SceneHitLess(const SceneHit& a, const SceneHit& b);

}  // namespace cobra::engine
