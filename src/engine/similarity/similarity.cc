#include "engine/similarity/similarity.h"

#include <algorithm>
#include <cstring>

#include "util/rng.h"
#include "vision/signature_kernels.h"

namespace cobra::engine::similarity {

namespace {

namespace sk = vision::signature_kernels;

constexpr size_t kOwnedChunkCapacity = 4096;

Status ValidateConfig(const SignatureIndexConfig& config) {
  if (config.signature_bits < 64 || config.signature_bits > 256 ||
      config.signature_bits % 64 != 0) {
    return Status::InvalidArgument("signature_bits must be 64/128/192/256");
  }
  if (config.ann_bands < 1 ||
      config.signature_bits % config.ann_bands != 0) {
    return Status::InvalidArgument("ann_bands must divide signature_bits");
  }
  const int width = config.signature_bits / config.ann_bands;
  if (width > 64 || 64 % width != 0) {
    return Status::InvalidArgument(
        "band width must be at most 64 bits and divide 64");
  }
  if (config.rerank_k == 0) {
    return Status::InvalidArgument("rerank_k must be positive");
  }
  return Status::OK();
}

/// C(w, r) as a double (overflow-safe for the probe estimate).
double Binomial(int w, int r) {
  double v = 1.0;
  for (int i = 0; i < r; ++i) v = v * (w - i) / (i + 1);
  return v;
}

/// Invokes fn(code) for every `width`-bit code at Hamming distance exactly
/// `radius` from `key`. Combination recursion; radius is small (the caller
/// bounds total enumeration by the record count).
template <typename Fn>
void ForEachFlip(uint64_t key, int width, int radius, int first_bit, Fn&& fn) {
  if (radius == 0) {
    fn(key);
    return;
  }
  for (int bit = first_bit; bit <= width - radius; ++bit) {
    ForEachFlip(key ^ (uint64_t{1} << bit), width, radius - 1, bit + 1, fn);
  }
}

/// Copies `hash` with bits at and past `bits` cleared.
void MaskHash(const uint64_t* hash, int bits, uint64_t* out) {
  for (int w = 0; w < 4; ++w) {
    out[w] = (w * 64 < bits) ? hash[w] : 0;
  }
}

/// Open-addressing set of record rows; grows at 70% load. Candidate sets
/// are tiny relative to the corpus, so this beats an O(n) seen-bitmap
/// allocation per query.
class RowSet {
 public:
  explicit RowSet(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, -1);
  }

  /// True if `row` was newly inserted.
  bool Insert(int32_t row) {
    if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    size_t s = cobra::MixHash(static_cast<uint64_t>(row)) & mask;
    while (slots_[s] >= 0) {
      if (slots_[s] == row) return false;
      s = (s + 1) & mask;
    }
    slots_[s] = row;
    ++size_;
    return true;
  }

 private:
  void Grow() {
    std::vector<int32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, -1);
    const size_t mask = slots_.size() - 1;
    for (int32_t v : old) {
      if (v < 0) continue;
      size_t s = cobra::MixHash(static_cast<uint64_t>(v)) & mask;
      while (slots_[s] >= 0) s = (s + 1) & mask;
      slots_[s] = v;
    }
  }

  std::vector<int32_t> slots_;
  size_t size_ = 0;
};

}  // namespace

bool NeighborBefore(const Neighbor& a, const Neighbor& b) {
  if (a.hamming != b.hamming) return a.hamming < b.hamming;
  if (a.l2sq != b.l2sq) return a.l2sq < b.l2sq;
  if (a.record->video_id != b.record->video_id) {
    return a.record->video_id < b.record->video_id;
  }
  if (a.record->begin != b.record->begin) {
    return a.record->begin < b.record->begin;
  }
  return a.record->end < b.record->end;
}

SignatureIndex::SignatureIndex(SignatureIndexConfig config) {
  // Constructors cannot report: an invalid config keeps the defaults
  // (configurable paths go through SetConfig, which does report).
  if (!SetConfig(config).ok()) {
    const Status fallback = SetConfig(SignatureIndexConfig{});
    (void)fallback;
  }
}

Status SignatureIndex::SetConfig(const SignatureIndexConfig& config) {
  COBRA_RETURN_NOT_OK(ValidateConfig(config));
  config_ = config;
  RebuildTables();
  return Status::OK();
}

const vision::SignatureRecord& SignatureIndex::record(size_t i) const {
  return *rows_[i];
}

void SignatureIndex::AddRecords(const vision::SignatureRecord* records,
                                size_t count) {
  for (size_t i = 0; i < count; ++i) {
    // A fresh fixed-capacity chunk keeps prior record pointers stable
    // (vectors are reserved up front and never reallocated). A new chunk
    // is also needed when a base chunk interleaved: chunk order is row
    // order.
    if (chunks_.empty() || chunks_.back().is_base ||
        chunks_.back().count == kOwnedChunkCapacity) {
      owned_.emplace_back();
      owned_.back().reserve(kOwnedChunkCapacity);
      chunks_.push_back(
          Chunk{owned_.back().data(), 0, num_records_, /*is_base=*/false});
    }
    owned_.back().push_back(records[i]);
    ++chunks_.back().count;
    rows_.push_back(&owned_.back().back());
    InsertIntoBands(num_records_);
    ++num_records_;
  }
}

void SignatureIndex::AddBaseChunk(const vision::SignatureRecord* records,
                                  size_t count) {
  if (count == 0) return;
  chunks_.push_back(Chunk{records, count, num_records_, /*is_base=*/true});
  for (size_t i = 0; i < count; ++i) {
    rows_.push_back(records + i);
    InsertIntoBands(num_records_);
    ++num_records_;
  }
}

std::vector<std::pair<const vision::SignatureRecord*, size_t>>
SignatureIndex::OwnedFrom(size_t from_row) const {
  std::vector<std::pair<const vision::SignatureRecord*, size_t>> out;
  for (const Chunk& c : chunks_) {
    if (c.is_base || c.start + c.count <= from_row) continue;
    const size_t skip = from_row > c.start ? from_row - c.start : 0;
    out.emplace_back(c.data + skip, c.count - skip);
  }
  return out;
}

uint64_t SignatureIndex::BandKey(const uint64_t* hash, int band) const {
  const int width = config_.signature_bits / config_.ann_bands;
  const int offset = band * width;
  const uint64_t word = hash[offset / 64];
  const uint64_t shifted = word >> (offset % 64);
  return width == 64 ? shifted : (shifted & ((uint64_t{1} << width) - 1));
}

int32_t SignatureIndex::FindChain(const BandTable& table, int band,
                                  uint64_t key) const {
  if (table.slots.empty()) return -1;
  // Band keys at most 32 bits wide fit the slot tag whole, so a tag match
  // IS a key match; wider bands confirm against the hash cache.
  const bool tag_is_key = config_.signature_bits / config_.ann_bands <= 32;
  const uint32_t tag = static_cast<uint32_t>(key);
  size_t s = cobra::MixHash(key) & table.mask;
  while (true) {
    const Slot slot = table.slots[s];
    if (slot.head < 0) return -1;
    if (slot.tag == tag &&
        (tag_is_key ||
         BandKey(hash4_.data() + static_cast<size_t>(slot.head) * 4, band) ==
             key)) {
      return slot.head;
    }
    s = (s + 1) & table.mask;
  }
}

void SignatureIndex::InsertIntoBands(size_t row) {
  // Grow every band table together when load passes ~50%.
  const size_t needed = (row + 1) * 2;
  if (bands_.empty() || bands_[0].slots.size() < needed) {
    RebuildTables();  // rebuild resizes and reinserts rows [0, num_records_)
  }
  uint64_t masked[4];
  MaskHash(rows_[row]->sig.hash, config_.signature_bits, masked);
  hash4_.insert(hash4_.end(), masked, masked + 4);
  const uint64_t* hash = hash4_.data() + row * 4;
  const bool tag_is_key = config_.signature_bits / config_.ann_bands <= 32;
  for (int b = 0; b < config_.ann_bands; ++b) {
    BandTable& table = bands_[b];
    const uint64_t key = BandKey(hash, b);
    const uint32_t tag = static_cast<uint32_t>(key);
    size_t s = cobra::MixHash(key) & table.mask;
    while (true) {
      const Slot slot = table.slots[s];
      if (slot.head < 0) {
        table.slots[s] = Slot{static_cast<int32_t>(row), tag};
        table.next[row] = -1;
        break;
      }
      if (slot.tag == tag &&
          (tag_is_key ||
           BandKey(hash4_.data() + static_cast<size_t>(slot.head) * 4, b) ==
               key)) {
        table.next[row] = slot.head;
        table.slots[s] = Slot{static_cast<int32_t>(row), tag};
        break;
      }
      s = (s + 1) & table.mask;
    }
  }
}

void SignatureIndex::RebuildTables() {
  size_t cap = 64;
  while (cap < (num_records_ + 1) * 4) cap <<= 1;
  bands_.assign(static_cast<size_t>(config_.ann_bands), BandTable{});
  for (BandTable& table : bands_) {
    table.slots.assign(cap, Slot{});
    // Growth triggers before row cap/2, so next[] sized cap always covers
    // every row inserted between rebuilds.
    table.next.assign(cap, -1);
    table.mask = static_cast<uint32_t>(cap - 1);
  }
  hash4_.clear();
  hash4_.reserve((num_records_ + 1) * 4);
  for (size_t row = 0; row < num_records_; ++row) {
    uint64_t masked[4];
    MaskHash(rows_[row]->sig.hash, config_.signature_bits, masked);
    hash4_.insert(hash4_.end(), masked, masked + 4);
  }
  const bool tag_is_key = config_.signature_bits / config_.ann_bands <= 32;
  for (size_t row = 0; row < num_records_; ++row) {
    const uint64_t* hash = hash4_.data() + row * 4;
    for (int b = 0; b < config_.ann_bands; ++b) {
      BandTable& table = bands_[b];
      const uint64_t key = BandKey(hash, b);
      const uint32_t tag = static_cast<uint32_t>(key);
      size_t s = cobra::MixHash(key) & table.mask;
      while (true) {
        const Slot slot = table.slots[s];
        if (slot.head < 0) {
          table.slots[s] = Slot{static_cast<int32_t>(row), tag};
          table.next[row] = -1;
          break;
        }
        if (slot.tag == tag &&
            (tag_is_key ||
             BandKey(hash4_.data() + static_cast<size_t>(slot.head) * 4, b) ==
                 key)) {
          table.next[row] = slot.head;
          table.slots[s] = Slot{static_cast<int32_t>(row), tag};
          break;
        }
        s = (s + 1) & table.mask;
      }
    }
  }
}

uint32_t SignatureIndex::HashDistance(const sk::SignatureKernelOps& ops,
                                      const uint64_t* masked_query,
                                      size_t i) const {
  // hash4_ rows are pre-masked, so one SIMD call covers every prefix width.
  return ops.Hamming256(masked_query, hash4_.data() + i * 4);
}

void SignatureIndex::ConsiderRanked(const sk::SignatureKernelOps& ops,
                                    uint32_t ham, const uint8_t* sketch,
                                    size_t i, uint32_t max_hamming, size_t k,
                                    std::vector<Neighbor>* heap) const {
  if (ham > max_hamming) return;
  // heap front is the current worst (max-heap under NeighborBefore).
  if (heap->size() == k && ham > heap->front().hamming) return;
  const vision::SignatureRecord& rec = record(i);
  Neighbor cand{ham, ops.L2Sq32(sketch, rec.sig.sketch), &rec};
  if (heap->size() == k) {
    if (!NeighborBefore(cand, heap->front())) return;
    std::pop_heap(heap->begin(), heap->end(), NeighborBefore);
    heap->back() = cand;
  } else {
    heap->push_back(cand);
  }
  std::push_heap(heap->begin(), heap->end(), NeighborBefore);
}

void SignatureIndex::Consider(const sk::SignatureKernelOps& ops,
                              const uint64_t* masked_query,
                              const uint8_t* sketch, size_t i,
                              uint32_t max_hamming, size_t k,
                              std::vector<Neighbor>* heap) const {
  ConsiderRanked(ops, HashDistance(ops, masked_query, i), sketch, i,
                 max_hamming, k, heap);
}

std::vector<Neighbor> SignatureIndex::SearchSimilar(
    const vision::ShotSignature& query, size_t k,
    SimilaritySearchStats* stats) const {
  SimilaritySearchStats local;
  SimilaritySearchStats& st = stats != nullptr ? *stats : local;
  st = SimilaritySearchStats{};
  if (k == 0 || num_records_ == 0) return {};

  uint64_t masked_query[4];
  MaskHash(query.hash, config_.signature_bits, masked_query);
  const uint32_t threshold = config_.max_hamming;
  const int bands = config_.ann_bands;
  const int width = config_.signature_bits / bands;
  const int max_radius =
      std::min(static_cast<int>(threshold / static_cast<uint32_t>(bands)),
               width);

  // If the enumeration would probe at least one key per record, the scan
  // is cheaper and just as exact.
  double probe_estimate = 0.0;
  for (int r = 0; r <= max_radius; ++r) {
    probe_estimate += bands * Binomial(width, r);
  }
  if (probe_estimate >= static_cast<double>(num_records_)) {
    st.exhaustive_fallback = true;
    return SearchSimilarExhaustive(query, k);
  }

  RowSet seen(512);
  std::vector<Neighbor> heap;
  heap.reserve(k);
  const sk::SignatureKernelOps& ops = sk::Ops();
  // Per-radius staged scratch (band-major order — the same visit order as
  // the naive nested loop). One code chased at a time serializes a cache
  // miss per probe; staging a whole radius keeps many misses in flight:
  // hash every code and prefetch its slot, then probe, then walk chains
  // with each candidate's hash-cache line prefetched ahead of the
  // distance pass.
  std::vector<std::pair<int, uint64_t>> probes;
  std::vector<std::pair<int, int32_t>> heads;
  std::vector<int32_t> cands;
  std::vector<uint64_t> gathered;
  std::vector<uint32_t> dist;
  probes.reserve(512);
  heads.reserve(512);
  cands.reserve(1024);
  for (int r = 0; r <= max_radius; ++r) {
    st.max_radius = r;
    probes.clear();
    for (int b = 0; b < bands; ++b) {
      const uint64_t key = BandKey(masked_query, b);
      ForEachFlip(key, width, r, 0,
                  [&](uint64_t code) { probes.emplace_back(b, code); });
    }
    st.probes += probes.size();
    // Probe every staged code, issuing the slot prefetch kLookahead codes
    // ahead so the table misses stay overlapped instead of serialized.
    constexpr size_t kLookahead = 16;
    const size_t lead = std::min(kLookahead, probes.size());
    for (size_t p = 0; p < lead; ++p) {
      const BandTable& table = bands_[probes[p].first];
      __builtin_prefetch(
          &table.slots[cobra::MixHash(probes[p].second) & table.mask]);
    }
    heads.clear();
    for (size_t p = 0; p < probes.size(); ++p) {
      if (p + kLookahead < probes.size()) {
        const auto& [nb, ncode] = probes[p + kLookahead];
        const BandTable& ntable = bands_[nb];
        __builtin_prefetch(&ntable.slots[cobra::MixHash(ncode) & ntable.mask]);
      }
      const auto& [b, code] = probes[p];
      const int32_t head = FindChain(bands_[b], b, code);
      if (head < 0) continue;
      __builtin_prefetch(&bands_[b].next[static_cast<size_t>(head)]);
      __builtin_prefetch(hash4_.data() + static_cast<size_t>(head) * 4);
      heads.emplace_back(b, head);
    }
    cands.clear();
    {
      // Chains average ~2 rows at corpus scale, and walking them one at a
      // time costs a dependent next[] miss per non-head row. A W-way
      // round-robin cursor walks many chains at once so those misses
      // overlap; the candidate *set* is unaffected (dedup below).
      constexpr size_t kWays = 16;
      const BandTable* tab[kWays];
      int32_t cur[kWays];
      size_t active = 0, next_head = 0;
      while (active < kWays && next_head < heads.size()) {
        tab[active] = &bands_[heads[next_head].first];
        cur[active] = heads[next_head].second;
        ++active;
        ++next_head;
      }
      while (active > 0) {
        for (size_t w = 0; w < active;) {
          const int32_t i = cur[w];
          if (seen.Insert(i)) {
            __builtin_prefetch(hash4_.data() + static_cast<size_t>(i) * 4);
            cands.push_back(i);
          }
          const int32_t nx = tab[w]->next[static_cast<size_t>(i)];
          if (nx >= 0) {
            __builtin_prefetch(&tab[w]->next[static_cast<size_t>(nx)]);
            cur[w] = nx;
            ++w;
          } else if (next_head < heads.size()) {
            tab[w] = &bands_[heads[next_head].first];
            cur[w] = heads[next_head].second;
            ++next_head;
            ++w;
          } else {
            --active;
            cur[w] = cur[active];
            tab[w] = tab[active];
          }
        }
      }
    }
    st.candidates += cands.size();
    // Gather the candidates' (prefetched) hash rows into one contiguous
    // block and rank them with a single SIMD batch call — identical
    // distances to per-row Hamming256, the tier property tests sweep both.
    gathered.resize(cands.size() * 4);
    dist.resize(cands.size());
    for (size_t c = 0; c < cands.size(); ++c) {
      std::memcpy(gathered.data() + c * 4,
                  hash4_.data() + static_cast<size_t>(cands[c]) * 4, 32);
    }
    ops.Hamming256Batch(masked_query,
                        reinterpret_cast<const uint8_t*>(gathered.data()), 32,
                        cands.size(), dist.data());
    for (size_t c = 0; c < cands.size(); ++c) {
      ConsiderRanked(ops, dist[c], query.sketch,
                     static_cast<size_t>(cands[c]), threshold, k, &heap);
    }
    // Every unseen record disagrees by > r bits on every band, so its
    // total distance is at least bands·(r+1). Strict inequality: an equal
    // Hamming distance could still win on the sketch.
    if (heap.size() == k &&
        heap.front().hamming <
            static_cast<uint32_t>(bands) * static_cast<uint32_t>(r + 1)) {
      break;
    }
  }
  std::sort(heap.begin(), heap.end(), NeighborBefore);
  return heap;
}

std::vector<Neighbor> SignatureIndex::SearchSimilarExhaustive(
    const vision::ShotSignature& query, size_t k) const {
  if (k == 0 || num_records_ == 0) return {};
  uint64_t masked_query[4];
  MaskHash(query.hash, config_.signature_bits, masked_query);
  const uint32_t threshold = config_.max_hamming;

  std::vector<Neighbor> heap;
  heap.reserve(k);
  std::vector<uint32_t> distances;
  if (config_.signature_bits == 256) {
    // Fast path: SIMD batch Hamming straight over the record chunks (the
    // mmap'd layout), exact re-rank only for in-threshold rows.
    for (const Chunk& c : chunks_) {
      distances.resize(c.count);
      sk::Ops().Hamming256Batch(
          masked_query, reinterpret_cast<const uint8_t*>(c.data->sig.hash),
          sizeof(vision::SignatureRecord), c.count, distances.data());
      for (size_t j = 0; j < c.count; ++j) {
        if (distances[j] > threshold) continue;
        if (heap.size() == k && distances[j] > heap.front().hamming) continue;
        const vision::SignatureRecord& rec = c.data[j];
        Neighbor cand{distances[j],
                      sk::Ops().L2Sq32(query.sketch, rec.sig.sketch), &rec};
        if (heap.size() == k) {
          if (!NeighborBefore(cand, heap.front())) continue;
          std::pop_heap(heap.begin(), heap.end(), NeighborBefore);
          heap.back() = cand;
        } else {
          heap.push_back(cand);
        }
        std::push_heap(heap.begin(), heap.end(), NeighborBefore);
      }
    }
  } else {
    const sk::SignatureKernelOps& ops = sk::Ops();
    for (size_t i = 0; i < num_records_; ++i) {
      Consider(ops, masked_query, query.sketch, i, threshold, k, &heap);
    }
  }
  std::sort(heap.begin(), heap.end(), NeighborBefore);
  return heap;
}

std::vector<SignatureIndex::DuplicatePair> SignatureIndex::FindNearDuplicates(
    uint32_t max_hamming) const {
  std::vector<DuplicatePair> out;
  if (num_records_ < 2) return out;
  const int bands = config_.ann_bands;
  const int width = config_.signature_bits / bands;
  const int max_radius = std::min(
      static_cast<int>(max_hamming / static_cast<uint32_t>(bands)), width);
  double probe_estimate = 0.0;
  for (int r = 0; r <= max_radius; ++r) {
    probe_estimate += bands * Binomial(width, r);
  }
  const bool enumerate =
      probe_estimate < static_cast<double>(num_records_);

  // Epoch-marked seen array: O(1) reset between source records.
  std::vector<uint32_t> mark(num_records_, 0);
  uint32_t epoch = 0;
  const sk::SignatureKernelOps& ops = sk::Ops();
  for (size_t i = 0; i < num_records_; ++i) {
    ++epoch;
    // hash4_ rows are already masked to the signature_bits prefix.
    const uint64_t* masked = hash4_.data() + i * 4;
    const auto consider_pair = [&](size_t j) {
      if (j >= i || mark[j] == epoch) return;
      mark[j] = epoch;
      const uint32_t ham = HashDistance(ops, masked, j);
      if (ham > max_hamming) return;
      const vision::SignatureRecord& a = record(j);
      const vision::SignatureRecord& b = record(i);
      DuplicatePair pair;
      pair.hamming = ham;
      pair.l2sq = ops.L2Sq32(record(i).sig.sketch, a.sig.sketch);
      // Present each pair in record order regardless of insertion order.
      const bool a_first =
          a.video_id != b.video_id ? a.video_id < b.video_id
          : a.begin != b.begin     ? a.begin < b.begin
                                   : a.end <= b.end;
      pair.a = a_first ? &a : &b;
      pair.b = a_first ? &b : &a;
      out.push_back(pair);
    };
    if (enumerate) {
      for (int r = 0; r <= max_radius; ++r) {
        for (int b = 0; b < bands; ++b) {
          const uint64_t key = BandKey(masked, b);
          ForEachFlip(key, width, r, 0, [&](uint64_t code) {
            for (int32_t c = FindChain(bands_[b], b, code); c >= 0;
                 c = bands_[b].next[static_cast<size_t>(c)]) {
              consider_pair(static_cast<size_t>(c));
            }
          });
        }
      }
    } else {
      for (size_t j = 0; j < i; ++j) consider_pair(j);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DuplicatePair& x, const DuplicatePair& y) {
              if (x.a->video_id != y.a->video_id) {
                return x.a->video_id < y.a->video_id;
              }
              if (x.a->begin != y.a->begin) return x.a->begin < y.a->begin;
              if (x.b->video_id != y.b->video_id) {
                return x.b->video_id < y.b->video_id;
              }
              return x.b->begin < y.b->begin;
            });
  return out;
}

const vision::SignatureRecord* SignatureIndex::FindShot(int64_t video_id,
                                                        int64_t frame) const {
  for (const Chunk& c : chunks_) {
    for (size_t j = 0; j < c.count; ++j) {
      const vision::SignatureRecord& rec = c.data[j];
      if (rec.video_id == video_id && rec.begin <= frame && frame <= rec.end) {
        return &rec;
      }
    }
  }
  return nullptr;
}

uint32_t SignatureIndex::HammingLowerBound(
    const vision::ShotSignature& query) const {
  uint64_t masked[4];
  MaskHash(query.hash, config_.signature_bits, masked);
  uint32_t missing = 0;
  for (int b = 0; b < config_.ann_bands; ++b) {
    if (FindChain(bands_[b], b, BandKey(masked, b)) < 0) ++missing;
  }
  return missing;
}

}  // namespace cobra::engine::similarity
