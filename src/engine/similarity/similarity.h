#pragma once

/// \file similarity.h
/// `SignatureIndex`: a sublinear approximate-nearest-neighbor index over
/// perceptual shot signatures (vision/signature.h) whose answers are
/// *provably identical* to the retained exhaustive oracle.
///
/// Scheme: multi-index hashing (Norouzi et al.) over the 4×64-bit hash
/// words. The 256-bit hash is cut into `ann_bands` equal bands (default
/// 16 bands × 16 bits); each band gets an open-addressing table from band
/// key to the chain of records with that exact key. A query enumerates,
/// per band, every key within Hamming radius r of its own band key for
/// r = 0, 1, …, floor(max_hamming / bands); by the pigeonhole principle a
/// record within `max_hamming` total Hamming distance agrees with the
/// query to within radius floor(max_hamming/bands) on at least one band,
/// so the enumeration surfaces *every* qualifying record and an exact
/// re-rank (full Hamming + sketch L2, SIMD kernels) reproduces the oracle
/// ordering bit for bit. Two additional guards keep the fast path honest:
///   * early stop — after finishing radius r, any unseen record has total
///     distance ≥ bands·(r+1), so once the top-k is full and its worst
///     entry is *strictly* below that bound the remaining radii cannot
///     change the answer (ties must continue: the sketch breaks them);
///   * exhaustive fallback — if the enumeration would probe more keys
///     than there are records, the index just scans (still exact, and
///     never slower than the oracle by more than the candidate pass).
///
/// Result ordering is the total order (hamming, l2sq, video_id, begin,
/// end) — no insertion ordinals — so a partition of the records across
/// shards merges back to exactly the unsharded answer (the serving tier
/// relies on this).
///
/// Records are stored as immutable chunks: zero-copy spans into mmap'd
/// segment sections plus owned append chunks, so loading a durable
/// library never copies signature bytes.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"
#include "vision/signature.h"
#include "vision/signature_kernels.h"

namespace cobra::engine::similarity {

struct SignatureIndexConfig {
  /// Effective hash prefix in bits: 64, 128, 192 or 256. Bits past the
  /// prefix are ignored by every distance (index and oracle alike).
  int signature_bits = 256;
  /// Number of multi-index hash bands. Band width (signature_bits /
  /// ann_bands) must be 1–64 bits and divide 64 so bands never straddle
  /// hash words. Fewer, wider bands probe less but prune worse; 16×16-bit
  /// bands cover the default threshold at enumeration radius 1.
  int ann_bands = 16;
  /// Acceptance threshold: records farther than this (Hamming, over the
  /// signature_bits prefix) are not "similar" and never returned.
  uint32_t max_hamming = 31;
  /// Default result count for similarity queries that do not specify one
  /// (the `similar_to.k` query clause overrides per query).
  size_t rerank_k = 16;
};

/// One search result, ordered by (hamming, l2sq, video_id, begin, end).
struct Neighbor {
  uint32_t hamming = 0;
  uint32_t l2sq = 0;
  const vision::SignatureRecord* record = nullptr;
};

/// The total result order above; exposed so the serving frontend's
/// cross-shard candidate merge reproduces the single-index ranking exactly.
bool NeighborBefore(const Neighbor& a, const Neighbor& b);

/// Scalar distance key combining both components without ties between
/// distinct (hamming, l2sq) pairs: hamming·2²² + l2sq, exact in a double
/// (l2sq ≤ 32·255² < 2²²). SceneHit.similarity carries this value and the
/// serving tier's shard bounds are lower bounds on it.
inline double DistanceKey(uint32_t hamming, uint32_t l2sq) {
  return static_cast<double>(hamming) * 4194304.0 + static_cast<double>(l2sq);
}

/// Counters from one SearchSimilar call.
struct SimilaritySearchStats {
  size_t probes = 0;      ///< band-table key lookups
  size_t candidates = 0;  ///< records exact-reranked
  int max_radius = 0;     ///< deepest enumeration radius reached
  bool exhaustive_fallback = false;  ///< enumeration would beat the scan
};

class SignatureIndex {
 public:
  explicit SignatureIndex(SignatureIndexConfig config = {});

  /// Re-validates `config` and rebuilds the band tables over the records
  /// already added. InvalidArgument on malformed band geometry.
  Status SetConfig(const SignatureIndexConfig& config);
  const SignatureIndexConfig& config() const { return config_; }

  /// Appends owned copies of `records`.
  void AddRecords(const vision::SignatureRecord* records, size_t count);

  /// Appends a zero-copy view: the caller guarantees `records` outlives
  /// the index (mmap'd segment sections do — the reader is retained).
  void AddBaseChunk(const vision::SignatureRecord* records, size_t count);

  size_t num_records() const { return num_records_; }
  const vision::SignatureRecord& record(size_t i) const;

  /// The owned (non-base) record spans starting at global row `from_row`,
  /// in order — the durable flush window. `from_row` earlier than the
  /// first owned row just yields every owned span.
  std::vector<std::pair<const vision::SignatureRecord*, size_t>> OwnedFrom(
      size_t from_row) const;

  /// Exact top-`k` records within config.max_hamming of `query`, via the
  /// band tables (see file comment). Bit-identical to the oracle below.
  std::vector<Neighbor> SearchSimilar(const vision::ShotSignature& query,
                                      size_t k,
                                      SimilaritySearchStats* stats = nullptr)
      const;

  /// The retained brute-force oracle: SIMD batch scan of every record,
  /// same threshold, same ordering.
  std::vector<Neighbor> SearchSimilarExhaustive(
      const vision::ShotSignature& query, size_t k) const;

  /// One cross-index near-duplicate pair (a precedes b in the record
  /// order (video_id, begin, end)).
  struct DuplicatePair {
    const vision::SignatureRecord* a = nullptr;
    const vision::SignatureRecord* b = nullptr;
    uint32_t hamming = 0;
    uint32_t l2sq = 0;
  };

  /// Batches the index against itself: every unordered record pair within
  /// `max_hamming`, found through the band tables (each record queries its
  /// own bands), sorted by (a.video, a.begin, b.video, b.begin). Exact.
  std::vector<DuplicatePair> FindNearDuplicates(uint32_t max_hamming) const;

  /// The record of the shot of `video_id` containing `frame`, or nullptr.
  const vision::SignatureRecord* FindShot(int64_t video_id,
                                          int64_t frame) const;

  /// Lower bound on the Hamming distance from `query` to *any* record:
  /// each band whose table lacks the query's exact band key contributes at
  /// least one differing bit to every record. Cheap (ann_bands probes);
  /// the serving tier turns this into a per-shard bound on DistanceKey.
  uint32_t HammingLowerBound(const vision::ShotSignature& query) const;

 private:
  struct Chunk {
    const vision::SignatureRecord* data = nullptr;
    size_t count = 0;
    size_t start = 0;   ///< global row of data[0]
    bool is_base = false;  ///< zero-copy view (not owned)
  };

  /// One open-addressing band table: slots_[s] is the head of the chain of
  /// records whose band key collides into slot s (or -1); next_[i] links
  /// record i to the previous record with the same band key. Each slot
  /// carries the low 32 bits of its chain's band key so probe verification
  /// stays inside the slot's own cache line (bands at most 32 bits wide —
  /// the common geometries — never touch the records at all; wider bands
  /// confirm tag matches against the hash cache).
  struct Slot {
    int32_t head = -1;
    uint32_t tag = 0;
  };
  struct BandTable {
    std::vector<Slot> slots;
    std::vector<int32_t> next;
    uint32_t mask = 0;
  };

  uint64_t BandKey(const uint64_t* hash, int band) const;
  /// Masked (signature_bits-prefix) Hamming distance query↔record i.
  /// `ops` is the caller's hoisted kernel table (the dispatch read is
  /// atomic and this runs once per candidate).
  uint32_t HashDistance(const vision::signature_kernels::SignatureKernelOps& ops,
                        const uint64_t* masked_query, size_t i) const;
  void InsertIntoBands(size_t row);
  void RebuildTables();
  /// Chain head slot for `key` in `table`, or -1 if the key is absent.
  int32_t FindChain(const BandTable& table, int band, uint64_t key) const;
  /// Pushes record i (if within threshold) onto the top-k heap.
  void Consider(const vision::signature_kernels::SignatureKernelOps& ops,
                const uint64_t* masked_query, const uint8_t* sketch, size_t i,
                uint32_t max_hamming, size_t k,
                std::vector<Neighbor>* heap) const;
  /// Consider with the Hamming distance already computed (the staged probe
  /// loop batches distances over whole candidate sets).
  void ConsiderRanked(const vision::signature_kernels::SignatureKernelOps& ops,
                      uint32_t ham, const uint8_t* sketch, size_t i,
                      uint32_t max_hamming, size_t k,
                      std::vector<Neighbor>* heap) const;

  SignatureIndexConfig config_;
  std::vector<Chunk> chunks_;  ///< in insertion order (views and owned spans)
  std::vector<std::vector<vision::SignatureRecord>> owned_;
  size_t num_records_ = 0;
  std::vector<BandTable> bands_;
  /// Flat row → record pointer (chunk buffers are pointer-stable), so the
  /// candidate re-rank never binary-searches chunks_.
  std::vector<const vision::SignatureRecord*> rows_;
  /// Pre-masked hash words, 4 per row ([row·4 + word], signature_bits
  /// prefix applied at build time). The candidate Hamming re-rank and the
  /// wide-band key confirmations read this 32-byte-per-row array — L3
  /// resident even at 10⁶ records — instead of the scattered 96-byte
  /// records, which are only touched for in-threshold survivors.
  std::vector<uint64_t> hash4_;
};

}  // namespace cobra::engine::similarity
