#include "engine/ingest/ingest.h"

#include <thread>
#include <utility>

namespace cobra::engine::ingest {

IngestDelta IngestDelta::Interview(int64_t oid, std::string text) {
  IngestDelta out;
  out.kind = Kind::kInterview;
  out.interview_oid = oid;
  out.interview_text = std::move(text);
  return out;
}

IngestDelta IngestDelta::FinalizeText() {
  IngestDelta out;
  out.kind = Kind::kFinalizeText;
  return out;
}

IngestDelta IngestDelta::Video(
    core::VideoDescription desc,
    std::vector<vision::SignatureRecord> signatures) {
  IngestDelta out;
  out.kind = Kind::kVideo;
  out.video = std::move(desc);
  out.signatures = std::move(signatures);
  return out;
}

// ---------------------------------------------------------------------------
// LibrarySink

Status LibrarySink::Commit(const IngestDelta& delta) {
  switch (delta.kind) {
    case IngestDelta::Kind::kInterview:
      return library_->AddInterview(delta.interview_oid,
                                    delta.interview_text);
    case IngestDelta::Kind::kFinalizeText:
      return library_->FinalizeText();
    case IngestDelta::Kind::kVideo:
      COBRA_RETURN_NOT_OK(library_->AddVideoDescription(delta.video));
      if (!delta.signatures.empty()) {
        return library_->AddVideoSignatures(delta.video.video_id(),
                                            delta.signatures);
      }
      return Status::OK();
  }
  return Status::Internal("unreachable ingest delta kind");
}

// ---------------------------------------------------------------------------
// DurableLibrarySink

Status DurableLibrarySink::Commit(const IngestDelta& delta) {
  switch (delta.kind) {
    case IngestDelta::Kind::kInterview: {
      COBRA_ASSIGN_OR_RETURN(
          DurableLibrary::StageTicket ticket,
          library_->StageInterview(delta.interview_oid,
                                   delta.interview_text));
      last_ticket_ = std::move(ticket);
      return Status::OK();
    }
    case IngestDelta::Kind::kFinalizeText: {
      COBRA_ASSIGN_OR_RETURN(DurableLibrary::StageTicket ticket,
                             library_->StageFinalizeText());
      last_ticket_ = std::move(ticket);
      return Status::OK();
    }
    case IngestDelta::Kind::kVideo: {
      COBRA_ASSIGN_OR_RETURN(DurableLibrary::StageTicket ticket,
                             library_->StageVideoDescription(delta.video));
      if (!delta.signatures.empty()) {
        COBRA_ASSIGN_OR_RETURN(
            ticket, library_->StageVideoSignatures(delta.video.video_id(),
                                                   delta.signatures));
      }
      last_ticket_ = std::move(ticket);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable ingest delta kind");
}

Status DurableLibrarySink::Barrier() {
  if (!last_ticket_.has_value()) return Status::OK();
  // The newest staged record covers the sweep: sequence numbers are
  // monotone within a WAL, and records staged into a WAL rotated away by
  // a concurrent Flush are durable through the flushed segment.
  Status status = library_->WaitDurable(*last_ticket_);
  last_ticket_.reset();
  return status;
}

// ---------------------------------------------------------------------------
// ShardedIngestSink

Result<std::unique_ptr<ShardedIngestSink>> ShardedIngestSink::Create(
    const serving::CorpusParts& seed, Options options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<ShardedIngestSink> out(new ShardedIngestSink());
  out->router_ = serving::ShardRouter(seed.videos, options.num_shards);
  // Two identical replays per shard (partition.h: replaying the same
  // insert sequence is what makes the copies interchangeable).
  COBRA_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<DigitalLibrary>> serving_copies,
      serving::BuildShardLibraries(seed, options.num_shards,
                                   options.finalize_seed_text));
  COBRA_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<DigitalLibrary>> build_copies,
      serving::BuildShardLibraries(seed, options.num_shards,
                                   options.finalize_seed_text));
  out->shards_.resize(options.num_shards);
  std::vector<const DigitalLibrary*> fronts;
  fronts.reserve(options.num_shards);
  for (size_t s = 0; s < options.num_shards; ++s) {
    out->shards_[s].lib[0] = std::move(serving_copies[s]);
    out->shards_[s].lib[1] = std::move(build_copies[s]);
    out->shards_[s].front = 0;
    fronts.push_back(out->shards_[s].lib[0].get());
  }
  COBRA_ASSIGN_OR_RETURN(
      out->frontend_,
      serving::ServingFrontend::Create(std::move(fronts),
                                       std::move(options.serving)));
  return out;
}

Status ShardedIngestSink::Apply(DigitalLibrary* library,
                                const IngestDelta& delta) {
  switch (delta.kind) {
    case IngestDelta::Kind::kInterview:
      return library->AddInterview(delta.interview_oid, delta.interview_text);
    case IngestDelta::Kind::kFinalizeText:
      return library->FinalizeText();
    case IngestDelta::Kind::kVideo:
      COBRA_RETURN_NOT_OK(library->AddVideoDescription(delta.video));
      if (!delta.signatures.empty()) {
        return library->AddVideoSignatures(delta.video.video_id(),
                                           delta.signatures);
      }
      return Status::OK();
  }
  return Status::Internal("unreachable ingest delta kind");
}

Status ShardedIngestSink::Commit(const IngestDelta& delta) {
  // Videos (and their signatures) are partitioned; interviews and the
  // finalize barrier are replicated into every shard.
  const bool replicated = delta.kind != IngestDelta::Kind::kVideo;
  const size_t owner =
      replicated ? 0 : router_.ShardOf(delta.video.video_id());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!replicated && s != owner) continue;
    Shard& shard = shards_[s];
    const size_t build = 1 - shard.front;
    shard.log.push_back(delta);
    COBRA_RETURN_NOT_OK(Apply(shard.lib[build].get(), delta));
    shard.applied[build] = shard.log_base + shard.log.size();
  }
  return Status::OK();
}

Status ShardedIngestSink::Barrier() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const size_t build = 1 - shard.front;
    if (shard.applied[build] == shard.applied[shard.front]) continue;
    std::shared_ptr<const void> retired;
    COBRA_RETURN_NOT_OK(frontend_->ReloadShardRetiring(
        s, shard.lib[build].get(), &retired));
    shard.front = build;
    ++publishes_;
    // The retired copy may still be read by in-flight queries holding the
    // old generation's snapshots; mutate it only once its lease is ours
    // alone. Queries are bounded (deadline or shed), so this drains.
    while (retired.use_count() > 1) std::this_thread::yield();
    const size_t catchup = 1 - shard.front;
    const uint64_t total = shard.log_base + shard.log.size();
    for (uint64_t i = shard.applied[catchup]; i < total; ++i) {
      COBRA_RETURN_NOT_OK(
          Apply(shard.lib[catchup].get(), shard.log[i - shard.log_base]));
    }
    shard.applied[catchup] = total;
    // Both copies hold everything: the log window is empty.
    shard.log_base = total;
    shard.log.clear();
  }
  return Status::OK();
}

const DigitalLibrary& ShardedIngestSink::shard_library(size_t shard) const {
  return *shards_[shard].lib[shards_[shard].front];
}

// ---------------------------------------------------------------------------
// CorpusIngestPipeline

CorpusIngestPipeline::CorpusIngestPipeline(IngestSink* sink, Options options)
    : sink_(sink), options_(options) {
  const int threads =
      options_.pool != nullptr ? options_.pool->num_threads() : 0;
  window_ = options_.window > 0
                ? options_.window
                : 2 * static_cast<size_t>(threads) + 2;
  group_.emplace(options_.pool);
}

CorpusIngestPipeline::~CorpusIngestPipeline() { (void)Finish(); }

Status CorpusIngestPipeline::SubmitInterview(int64_t oid, std::string text) {
  return SubmitReady(IngestDelta::Interview(oid, std::move(text)));
}

Status CorpusIngestPipeline::SubmitFinalizeText() {
  return SubmitReady(IngestDelta::FinalizeText());
}

Status CorpusIngestPipeline::SubmitReady(IngestDelta delta) {
  bool spawn = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return !error_.ok() || next_submit_ - next_commit_ < window_;
    });
    if (!error_.ok()) return error_;
    ready_.emplace(next_submit_++, Result<IngestDelta>(std::move(delta)));
    if (options_.pool == nullptr || options_.pool->num_threads() == 0) {
      // No worker to hand the committer role to: the serial degradation,
      // commit on the submitting thread (errors surface on the next
      // Submit*/Finish, as everywhere).
      CommitReadyLocked(lock);
      return Status::OK();
    }
    // Hand the committer role to the pool so this thread keeps staging
    // while the sweep's durability barrier is in flight. One scheduled
    // committer at a time; an active one claims new frontier work itself.
    if (!committer_active_ && !committer_pending_) {
      committer_pending_ = true;
      spawn = true;
    }
  }
  if (spawn) {
    group_->Run([this] {
      std::unique_lock<std::mutex> lock(mu_);
      committer_pending_ = false;
      CommitReadyLocked(lock);
    });
  }
  return Status::OK();
}

Status CorpusIngestPipeline::SubmitVideo(
    std::function<Result<IngestDelta>()> analyze) {
  return Submit(std::move(analyze));
}

Status CorpusIngestPipeline::Submit(
    std::function<Result<IngestDelta>()> produce) {
  uint64_t index = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Backpressure: bound the reorder buffer and the analyses in flight.
    cv_.wait(lock, [this] {
      return !error_.ok() || next_submit_ - next_commit_ < window_;
    });
    if (!error_.ok()) return error_;
    index = next_submit_++;
  }
  group_->Run([this, index, produce = std::move(produce)] {
    Result<IngestDelta> result = produce();
    std::unique_lock<std::mutex> lock(mu_);
    ready_.emplace(index, std::move(result));
    CommitReadyLocked(lock);
  });
  return Status::OK();
}

void CorpusIngestPipeline::CommitReadyLocked(
    std::unique_lock<std::mutex>& lock) {
  if (committer_active_) return;  // the active committer will pick it up
  committer_active_ = true;
  while (error_.ok()) {
    // Claim every contiguous ready result at the frontier.
    std::vector<Result<IngestDelta>> batch;
    for (auto it = ready_.find(next_commit_); it != ready_.end();
         it = ready_.find(next_commit_)) {
      batch.push_back(std::move(it->second));
      ready_.erase(it);
      ++next_commit_;
    }
    if (batch.empty()) break;
    cv_.notify_all();  // window slots freed
    lock.unlock();
    // Stage the whole batch, then one durability barrier for all of it —
    // against a group-commit WAL the sweep shares one fdatasync.
    Status status = Status::OK();
    int64_t committed = 0;
    for (Result<IngestDelta>& result : batch) {
      if (!result.ok()) {
        status = result.status();
        break;
      }
      status = sink_->Commit(result.value());
      if (!status.ok()) break;
      ++committed;
    }
    if (status.ok()) status = sink_->Barrier();
    lock.lock();
    committed_ += committed;
    ++sweeps_;
    if (!status.ok()) error_ = status;
  }
  committer_active_ = false;
  cv_.notify_all();
}

Status CorpusIngestPipeline::Finish() {
  if (group_.has_value()) group_->Wait();
  std::unique_lock<std::mutex> lock(mu_);
  // All analyses completed and every completing task runs the committer
  // before returning, so by now the frontier caught up (or stuck on the
  // sticky error).
  cv_.wait(lock, [this] {
    return !committer_active_ &&
           (!error_.ok() || next_commit_ == next_submit_);
  });
  if (!error_.ok()) return error_;
  // Reusable: restart the task group for a next ingest wave.
  lock.unlock();
  group_.emplace(options_.pool);
  return Status::OK();
}

CorpusIngestPipeline::Stats CorpusIngestPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.submitted = static_cast<int64_t>(next_submit_);
  out.committed = committed_;
  out.sweeps = sweeps_;
  return out;
}

}  // namespace cobra::engine::ingest
