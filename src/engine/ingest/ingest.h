#pragma once

/// \file ingest.h
/// Pipelined parallel corpus ingest (DESIGN.md §4k).
///
/// The serial ingest loop — analyze one video through the FDE, append its
/// description, fdatasync, repeat — leaves both the cores and the disk
/// idle: analysis waits on the sync, the sync waits on the next analysis.
/// The CorpusIngestPipeline runs the expensive per-item work (FDE
/// analysis, signature extraction, description construction) for many
/// items concurrently on a util::ThreadPool and *commits* results in
/// submission order, so the produced library is bit-identical to the
/// serial loop for any thread count:
///
///   Submit*()  ->  [bounded window]  ->  analyze on pool  ->  reorder
///   buffer  ->  committer applies in submission order  ->  sink
///
/// Ordering. Every Submit* call takes the next slot of one global
/// submission sequence; a committer role (assumed by whichever worker
/// completes into the frontier, never a dedicated thread) drains the
/// reorder buffer in slot order. Workers finishing out of order park
/// their result and return to the pool.
///
/// Backpressure. At most `window` submitted-but-uncommitted items exist;
/// Submit* blocks past that, bounding the reorder buffer (and the FDE
/// frame caches in flight) no matter how far analysis runs ahead of the
/// durability path.
///
/// Durability batching. The committer applies every contiguous ready
/// result (stage-only, fast) and then issues ONE durability barrier for
/// the batch. Against a group-commit WAL the whole sweep lands in one
/// fdatasync — the batch accumulates while the previous group's leader
/// syncs, which is what keeps sync-durable ingest within a small factor
/// of buffered.
///
/// Errors are sticky: the first analysis or commit failure fails every
/// subsequent Submit*/Finish, and nothing past the failed slot commits
/// (the committed prefix is exactly a prefix of the submission order).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <vector>

#include "core/video_description.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "engine/serving/partition.h"
#include "engine/serving/serving.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vision/signature.h"

namespace cobra::engine::ingest {

/// One committed unit of corpus growth. Videos carry their description
/// and (possibly empty) signature batch together so a video becomes
/// queryable and similarity-searchable atomically.
struct IngestDelta {
  enum class Kind : uint8_t { kInterview, kFinalizeText, kVideo };
  Kind kind = Kind::kVideo;
  int64_t interview_oid = 0;
  std::string interview_text;
  core::VideoDescription video;
  std::vector<vision::SignatureRecord> signatures;

  static IngestDelta Interview(int64_t oid, std::string text);
  static IngestDelta FinalizeText();
  static IngestDelta Video(core::VideoDescription desc,
                           std::vector<vision::SignatureRecord> signatures);
};

/// Where committed ingest lands. The pipeline calls Commit from exactly
/// one thread at a time (the current committer), in submission order;
/// Barrier follows each commit sweep and must make everything committed
/// so far durable and/or visible. Implementations need no internal
/// locking against the pipeline — only against their own readers.
class IngestSink {
 public:
  virtual ~IngestSink() = default;
  virtual Status Commit(const IngestDelta& delta) = 0;
  virtual Status Barrier() = 0;
};

/// Sink over an in-memory DigitalLibrary (the oracle arm: applying the
/// same submission sequence here and through any other sink must yield
/// bit-identical answers).
class LibrarySink : public IngestSink {
 public:
  explicit LibrarySink(DigitalLibrary* library) : library_(library) {}
  Status Commit(const IngestDelta& delta) override;
  Status Barrier() override { return Status::OK(); }

 private:
  DigitalLibrary* library_;
};

/// Sink over a DurableLibrary: Commit stages (apply + WAL-frame, no
/// sync), Barrier waits for the newest staged record — one wait per
/// sweep, so the whole sweep shares WAL group commits.
class DurableLibrarySink : public IngestSink {
 public:
  explicit DurableLibrarySink(DurableLibrary* library) : library_(library) {}
  Status Commit(const IngestDelta& delta) override;
  Status Barrier() override;

 private:
  DurableLibrary* library_;
  std::optional<DurableLibrary::StageTicket> last_ticket_;
};

/// Sink that grows a live sharded serving deployment. Each video's delta
/// routes to its owning shard (serving::ShardRouter range partitioning);
/// interviews and FinalizeText fan out to every shard (the replicated
/// modality, partition.h). Each shard is double-buffered: commits apply
/// to the build copy, and Barrier publishes it through
/// ServingFrontend::ReloadShardRetiring — the index-epoch seam — then
/// waits for the retired copy's lease before reusing it as the next
/// build copy, so queries racing ingest always read a consistent,
/// unmutated snapshot.
class ShardedIngestSink : public IngestSink {
 public:
  struct Options {
    size_t num_shards = 1;
    serving::ServingConfig serving;
    /// Leave the seed shards' text index open so live kInterview /
    /// kFinalizeText deltas can still replicate in (the interview index
    /// freezes at FinalizeText; text queries fail until it arrives).
    /// Keep the default when the seed corpus already holds every
    /// interview and only videos are ingested live.
    bool finalize_seed_text = true;
  };

  /// Builds the router and both library copies of every shard from
  /// `seed` (identical replay per copy, partition.h), then the frontend
  /// over the serving copies.
  static Result<std::unique_ptr<ShardedIngestSink>> Create(
      const serving::CorpusParts& seed, Options options);

  Status Commit(const IngestDelta& delta) override;
  /// Publishes every shard that changed since its last publish.
  Status Barrier() override;

  serving::ServingFrontend& frontend() { return *frontend_; }
  const serving::ShardRouter& router() const { return router_; }
  size_t num_shards() const { return shards_.size(); }
  /// The currently-served library of `shard` (for the bit-identity gate;
  /// only meaningful once ingest is quiescent).
  const DigitalLibrary& shard_library(size_t shard) const;
  /// Publishes performed across all Barrier calls.
  int64_t publishes() const { return publishes_; }

 private:
  /// One double-buffered shard: lib[front] is served, lib[1 - front] is
  /// the build copy. `log` holds deltas not yet applied to both copies;
  /// `applied[i]` counts this shard's deltas applied to lib[i] since
  /// creation (log.front() is delta number `log_base`).
  struct Shard {
    std::unique_ptr<DigitalLibrary> lib[2];
    size_t front = 0;
    std::deque<IngestDelta> log;
    uint64_t log_base = 0;
    uint64_t applied[2] = {0, 0};
  };

  ShardedIngestSink() = default;

  Status Apply(DigitalLibrary* library, const IngestDelta& delta);

  serving::ShardRouter router_;
  std::vector<Shard> shards_;
  std::unique_ptr<serving::ServingFrontend> frontend_;
  int64_t publishes_ = 0;
};

/// The bounded, backpressured ingest pipeline (file comment above).
class CorpusIngestPipeline {
 public:
  struct Options {
    /// Analysis workers. Null (or an inline single-thread pool) degrades
    /// to the serial loop: Submit* analyzes and commits synchronously.
    util::ThreadPool* pool = nullptr;
    /// Max submitted-but-uncommitted items before Submit* blocks;
    /// 0 = 2 * pool threads + 2.
    size_t window = 0;
  };

  struct Stats {
    int64_t submitted = 0;
    int64_t committed = 0;
    /// Commit sweeps (== sink Barrier calls): committed / sweeps is the
    /// achieved durability-batch size.
    int64_t sweeps = 0;
  };

  CorpusIngestPipeline(IngestSink* sink, Options options);
  /// Finish() must have been called (and is called defensively here,
  /// discarding its status).
  ~CorpusIngestPipeline();

  /// Cheap items: no analysis, ready to commit at submission. They enter
  /// the reorder buffer directly on the submitting thread and the
  /// committer role is scheduled onto the pool, so the submitter keeps
  /// staging while a sweep's durability barrier is in flight — this is
  /// where durability batches larger than one record come from even with
  /// a single worker thread.
  Status SubmitInterview(int64_t oid, std::string text);
  Status SubmitFinalizeText();
  /// Expensive items: `analyze` runs on the pool and returns the video's
  /// delta (description + signatures). It must be self-contained — it
  /// runs concurrently with other analyses and must not touch the sink
  /// or any shared mutable state.
  Status SubmitVideo(std::function<Result<IngestDelta>()> analyze);

  /// Drains: blocks until everything submitted is committed (or the
  /// sticky error is returned). The pipeline is reusable afterwards.
  Status Finish();

  Stats stats() const;

 private:
  Status Submit(std::function<Result<IngestDelta>()> produce);
  /// Places an already-produced delta straight into the reorder buffer
  /// and makes sure a committer is active or scheduled (inline when the
  /// pool cannot run one — the serial degradation).
  Status SubmitReady(IngestDelta delta);
  /// With `lock` held: assume the committer role if it is free and the
  /// commit frontier is ready; drains every contiguous ready result per
  /// sweep, committing with the lock released.
  void CommitReadyLocked(std::unique_lock<std::mutex>& lock);

  IngestSink* sink_;
  Options options_;
  size_t window_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Result<IngestDelta>> ready_;  ///< reorder buffer
  uint64_t next_submit_ = 0;
  uint64_t next_commit_ = 0;
  bool committer_active_ = false;
  bool committer_pending_ = false;  ///< a scheduled committer task exists
  Status error_;
  int64_t committed_ = 0;
  int64_t sweeps_ = 0;
  std::optional<util::TaskGroup> group_;
};

}  // namespace cobra::engine::ingest
