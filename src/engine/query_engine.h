#pragma once

/// \file query_engine.h
/// Concurrent query front end over DigitalLibrary: a fixed thread pool
/// evaluates batches of combined queries, and a sharded LRU cache serves
/// repeated queries without re-evaluation.
///
/// Cache protocol (see DESIGN.md "Serving path"):
///   * the key is the *normalized* query — predicates sorted into a
///     canonical order plus every other query field, so syntactically
///     different but equivalent queries share one entry;
///   * each entry is tagged with the library's index epoch at evaluation
///     time; DigitalLibrary bumps the epoch on every mutation that can
///     change results (FinalizeText, AddVideoDescription), so a stale
///     entry fails the epoch check and is evicted on its next lookup.
///     There is no invalidation broadcast — staleness is detected lazily.
///
/// Thread model: Search/SearchKeywordOnly/SearchBatch may be called from
/// any number of client threads concurrently, provided the library is not
/// being mutated at the same time (queries are read-only over an immutable
/// snapshot; mutate-then-query requires external ordering, as with the
/// library itself).

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/digital_library.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cobra::engine {

struct QueryEngineConfig {
  /// Worker threads for SearchBatch; <= 1 evaluates inline on the caller.
  int num_threads = 1;
  /// Number of independent cache shards (lock striping). Rounded up to 1.
  size_t cache_shards = 8;
  /// Maximum cached results per shard (LRU eviction beyond this).
  size_t cache_capacity_per_shard = 128;
  /// Master switch; false makes every query evaluate against the library.
  bool enable_cache = true;
  /// Default per-batch deadline for SearchBatch in milliseconds; <= 0
  /// disables. The pool cannot abort a running evaluation, so the deadline
  /// is checked when each task starts: queries that have not begun by then
  /// are shed with Status::DeadlineExceeded instead of evaluating, bounding
  /// how long a batch can grow behind one slow query.
  double deadline_ms = 0.0;
};

/// Aggregate counters across all queries answered by one engine.
struct QueryEngineStats {
  int64_t queries = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;   ///< includes epoch-stale entries
  int64_t errors = 0;         ///< failed queries (never cached)
  int64_t postings_scanned = 0;  ///< text-index work, cache misses only
  int64_t blocks_skipped = 0;    ///< text-index skip-block jumps
  int64_t planner_plans = 0;  ///< combined queries answered by the planner
  int64_t planner_short_circuits = 0;  ///< plans ended by a provably-empty stage
  int64_t deadline_exceeded = 0;  ///< batch queries shed at their deadline

  double CacheHitRate() const {
    int64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }
};

class QueryEngine {
 public:
  /// `library` must outlive the engine and not be mutated while queries
  /// are in flight.
  QueryEngine(const DigitalLibrary* library, QueryEngineConfig config);

  /// One combined query through the cache. `text_seed` (optional) is a
  /// precomputed text stage forwarded to DigitalLibrary::Search — results
  /// are identical with or without it, so seeded and unseeded evaluations
  /// share cache entries under the same normalized key. `similar_seed` is
  /// the analogous frontend-resolved similar stage (see SimilarSeed); note
  /// that unlike the text seed it is *partition-dependent*: on a sharded
  /// library, seeded and unseeded evaluations of a similar query answer
  /// different questions (global vs local neighbors), which is fine for the
  /// serving tier because shard engines are only ever queried seeded.
  Result<std::vector<SceneHit>> Search(
      const CombinedQuery& query,
      const std::map<int64_t, double>* text_seed = nullptr,
      const SimilarSeed* similar_seed = nullptr);

  /// Plans and executes `query` (bypassing the cache), returning the
  /// rendered plan: chosen stage order and estimated vs actual
  /// cardinalities per step (the EXPLAIN surface, DESIGN.md §4g).
  Result<std::string> Explain(const CombinedQuery& query) const;

  /// The keyword-only baseline through the same cache (distinct key space).
  Result<std::vector<SceneHit>> SearchKeywordOnly(const std::string& text,
                                                  size_t top_k);

  /// Evaluates all queries concurrently on the pool; result i answers
  /// query i. Order is deterministic regardless of thread count.
  /// `deadline_ms` overrides the config deadline for this batch (< 0 =
  /// take the config value; 0 disables): queries not started by the
  /// deadline return Status::DeadlineExceeded.
  std::vector<Result<std::vector<SceneHit>>> SearchBatch(
      const std::vector<CombinedQuery>& queries, double deadline_ms = -1.0);

  /// Snapshot of the aggregate counters.
  QueryEngineStats stats() const;

  /// Canonical cache key of a combined query: predicates sorted by
  /// (column, op, literal), then every scalar field, length-delimited so
  /// distinct queries cannot collide. Exposed for tests.
  static std::string NormalizedKey(const CombinedQuery& query);

 private:
  struct CacheEntry {
    int64_t epoch = 0;
    std::vector<SceneHit> hits;
  };

  /// One LRU shard: list front = most recent; map points into the list.
  struct Shard {
    std::mutex mutex;
    std::list<std::pair<std::string, CacheEntry>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, CacheEntry>>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key);
  /// True + fills `hits` on a fresh hit; erases stale entries.
  bool CacheGet(const std::string& key, int64_t epoch,
                std::vector<SceneHit>* hits);
  void CachePut(const std::string& key, int64_t epoch,
                const std::vector<SceneHit>& hits);

  /// Cache-through evaluation shared by Search and SearchKeywordOnly.
  template <typename Eval>
  Result<std::vector<SceneHit>> CachedEval(const std::string& key,
                                           const Eval& eval);

  const DigitalLibrary* library_;
  QueryEngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  util::ThreadPool pool_;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> postings_scanned_{0};
  std::atomic<int64_t> blocks_skipped_{0};
  std::atomic<int64_t> planner_plans_{0};
  std::atomic<int64_t> planner_short_circuits_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
};

}  // namespace cobra::engine
