#include "engine/query_language.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "util/strings.h"

namespace cobra::engine {

namespace {

/// Splits on a top-level, case-insensitive " AND " (quotes respected).
std::vector<std::string> SplitConditions(const std::string& input) {
  std::vector<std::string> out;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] == '"' || input[i] == '\'') in_quotes = !in_quotes;
    bool is_and = false;
    if (!in_quotes && (i == 0 || std::isspace(static_cast<unsigned char>(input[i - 1])))) {
      std::string word = ToLowerAscii(input.substr(i, 4));
      if (word == "and " || (input.size() - i == 3 && ToLowerAscii(input.substr(i)) == "and")) {
        is_and = true;
      }
    }
    if (is_and) {
      out.push_back(current);
      current.clear();
      i += 3;  // skip "and" (the following space is consumed by strip)
    } else {
      current += input[i];
    }
  }
  out.push_back(current);
  return out;
}

Result<storage::CompareOp> ParseOp(const std::string& op) {
  if (op == "=" || op == "==") return storage::CompareOp::kEq;
  if (op == "!=") return storage::CompareOp::kNe;
  if (op == "<") return storage::CompareOp::kLt;
  if (op == "<=") return storage::CompareOp::kLe;
  if (op == ">") return storage::CompareOp::kGt;
  if (op == ">=") return storage::CompareOp::kGe;
  if (op == "~") return storage::CompareOp::kContains;
  return Status::ParseError(StringFormat("unknown operator '%s'", op.c_str()));
}

std::string Unquote(std::string s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  size_t start = (s[0] == '-') ? 1 : 0;
  if (start == s.size()) return false;
  for (size_t i = start; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Splits one condition into lhs / op / rhs.
Status SplitCondition(const std::string& condition, std::string* lhs,
                      std::string* op, std::string* rhs) {
  static const char* kOps[] = {"<=", ">=", "!=", "==", "=", "<", ">", "~"};
  for (const char* candidate : kOps) {
    size_t pos = condition.find(candidate);
    if (pos == std::string::npos) continue;
    *lhs = std::string(StripWhitespace(condition.substr(0, pos)));
    *op = candidate;
    *rhs = std::string(
        StripWhitespace(condition.substr(pos + std::strlen(candidate))));
    if (lhs->empty() || rhs->empty()) {
      return Status::ParseError(
          StringFormat("incomplete condition '%s'", condition.c_str()));
    }
    return Status::OK();
  }
  return Status::ParseError(
      StringFormat("no operator in condition '%s'", condition.c_str()));
}

}  // namespace

Result<CombinedQuery> ParseQuery(const std::string& input) {
  if (StripWhitespace(input).empty()) {
    return Status::ParseError("empty query");
  }
  CombinedQuery query;
  for (const std::string& raw : SplitConditions(input)) {
    std::string condition{StripWhitespace(raw)};
    if (condition.empty()) {
      return Status::ParseError("empty condition (dangling AND?)");
    }
    std::string lhs, op, rhs;
    COBRA_RETURN_NOT_OK(SplitCondition(condition, &lhs, &op, &rhs));
    std::string lhs_lower = ToLowerAscii(lhs);
    rhs = Unquote(rhs);

    if (lhs_lower == "text") {
      if (op != "~") {
        return Status::ParseError("text condition requires '~'");
      }
      query.text = rhs;
      continue;
    }
    if (lhs_lower == "event") {
      if (op != "=" && op != "==") {
        return Status::ParseError("event condition requires '='");
      }
      query.event = ToLowerAscii(rhs);
      continue;
    }
    if (lhs_lower == "won") {
      if (ToLowerAscii(rhs) != "any") {
        return Status::ParseError("use 'won = any' or 'won.year = <N>'");
      }
      query.require_champion = true;
      continue;
    }
    if (lhs_lower == "won.year") {
      if (!IsInteger(rhs)) {
        return Status::ParseError(
            StringFormat("won.year needs an integer, got '%s'", rhs.c_str()));
      }
      query.require_champion = true;
      query.won_year = std::atoll(rhs.c_str());
      continue;
    }
    if (lhs_lower == "similar_to") {
      if (op != "=" && op != "==") {
        return Status::ParseError("similar_to condition requires '='");
      }
      const size_t colon = rhs.find(':');
      std::string video = colon == std::string::npos ? rhs : rhs.substr(0, colon);
      std::string frame = colon == std::string::npos ? "" : rhs.substr(colon + 1);
      if (colon == std::string::npos || !IsInteger(video) ||
          !IsInteger(frame)) {
        return Status::ParseError(StringFormat(
            "similar_to needs '<video>:<frame>', got '%s'", rhs.c_str()));
      }
      query.similar_video = std::atoll(video.c_str());
      query.similar_frame = std::atoll(frame.c_str());
      if (query.similar_video < 0 || query.similar_frame < 0) {
        return Status::ParseError("similar_to video and frame must be >= 0");
      }
      continue;
    }
    if (lhs_lower == "similar_to.k") {
      if (!IsInteger(rhs) || std::atoll(rhs.c_str()) <= 0) {
        return Status::ParseError(StringFormat(
            "similar_to.k needs a positive integer, got '%s'", rhs.c_str()));
      }
      query.similar_k = static_cast<size_t>(std::atoll(rhs.c_str()));
      continue;
    }
    if (StartsWith(lhs_lower, "player.")) {
      COBRA_ASSIGN_OR_RETURN(storage::CompareOp compare_op, ParseOp(op));
      if (compare_op == storage::CompareOp::kContains) {
        return Status::ParseError("'~' applies to text conditions only");
      }
      storage::Predicate pred;
      pred.column = lhs_lower.substr(7);
      pred.op = compare_op;
      if (IsInteger(rhs)) {
        pred.literal = static_cast<int64_t>(std::atoll(rhs.c_str()));
      } else {
        pred.literal = ToLowerAscii(rhs);
      }
      query.player_predicates.push_back(std::move(pred));
      continue;
    }
    return Status::ParseError(
        StringFormat("unknown condition subject '%s'", lhs.c_str()));
  }
  if (query.similar_k > 0 && query.similar_video < 0) {
    return Status::ParseError("similar_to.k requires a similar_to condition");
  }
  return query;
}

std::string FormatQuery(const CombinedQuery& query) {
  std::vector<std::string> parts;
  for (const storage::Predicate& pred : query.player_predicates) {
    const char* op = "=";
    switch (pred.op) {
      case storage::CompareOp::kEq:
        op = "=";
        break;
      case storage::CompareOp::kNe:
        op = "!=";
        break;
      case storage::CompareOp::kLt:
        op = "<";
        break;
      case storage::CompareOp::kLe:
        op = "<=";
        break;
      case storage::CompareOp::kGt:
        op = ">";
        break;
      case storage::CompareOp::kGe:
        op = ">=";
        break;
      case storage::CompareOp::kContains:
        op = "~";
        break;
    }
    parts.push_back(StringFormat("player.%s %s %s", pred.column.c_str(), op,
                                 storage::ValueToString(pred.literal).c_str()));
  }
  if (query.won_year >= 0) {
    parts.push_back(StringFormat("won.year = %lld",
                                 static_cast<long long>(query.won_year)));
  } else if (query.require_champion) {
    parts.push_back("won = any");
  }
  if (!query.event.empty()) {
    parts.push_back(StringFormat("event = %s", query.event.c_str()));
  }
  if (query.similar_video >= 0) {
    parts.push_back(StringFormat("similar_to = %lld:%lld",
                                 static_cast<long long>(query.similar_video),
                                 static_cast<long long>(query.similar_frame)));
    if (query.similar_k > 0) {
      parts.push_back(StringFormat("similar_to.k = %zu", query.similar_k));
    }
  }
  if (!query.text.empty()) {
    parts.push_back(StringFormat("text ~ \"%s\"", query.text.c_str()));
  }
  return JoinStrings(parts, " AND ");
}

}  // namespace cobra::engine
