#pragma once

/// \file partition.h
/// Corpus partitioning for the serving tier (DESIGN.md §4i).
///
/// A shard is a complete DigitalLibrary over a *slice* of the video corpus:
///   * the webspace concept store and the interview text index are
///     REPLICATED into every shard — they are player-scoped, and tf-idf
///     scores depend on the whole interview collection, so replication is
///     what keeps per-shard results bit-identical to the unsharded oracle;
///   * the video descriptions (meta-index) are RANGE-PARTITIONED by video
///     id into contiguous slices, so each shard's minimum video id is a
///     lower bound on every scene hit it can produce — the bound the
///     scatter-gather merge terminates on.
///
/// Shards are built from the same raw parts the full library is built
/// from, not by splitting a built library: replaying the identical insert
/// sequence per shard is what guarantees identical dictionaries, postings
/// and statistics on the replicated modalities.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/video_description.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "webspace/store.h"

namespace cobra::engine::serving {

/// The raw inputs a library (sharded or not) is built from.
struct CorpusParts {
  webspace::WebspaceStore store;
  /// (interview oid, text), in AddInterview order.
  std::vector<std::pair<int64_t, std::string>> interviews;
  /// Indexed videos, in AddVideoDescription order.
  std::vector<core::VideoDescription> videos;
  /// Per-video shot signature records, in AddVideoSignatures order. The
  /// signature modality is PARTITIONED: each batch lands only in the shard
  /// owning its video's range (unlike the replicated store/interviews).
  std::vector<std::pair<int64_t, std::vector<vision::SignatureRecord>>>
      signatures;
};

/// The contiguous-range video→shard assignment, as a value the ingest path
/// can hold on to: distinct video ids sorted ascending and cut into
/// `num_shards` near-equal slices; a video belongs to the shard whose
/// (exclusive) upper id bound is the first one above it. Ids never seen at
/// build time still route deterministically — anything past the last cut
/// lands in the final shard, which is how live ingest of fresh (monotonic)
/// video ids extends a running deployment without resharding.
class ShardRouter {
 public:
  /// A single-shard router (everything maps to shard 0).
  ShardRouter() : upper_(1, INT64_MAX) {}
  /// Router over the ids present in `videos`, in shard order.
  ShardRouter(const std::vector<core::VideoDescription>& videos,
              size_t num_shards);
  /// Router over explicit distinct ids (need not be sorted).
  ShardRouter(std::vector<int64_t> video_ids, size_t num_shards);

  size_t num_shards() const { return upper_.size(); }
  size_t ShardOf(int64_t video_id) const;
  /// Exclusive upper id bound per shard (INT64_MAX tail).
  const std::vector<int64_t>& upper_bounds() const { return upper_; }

 private:
  std::vector<int64_t> upper_;
};

/// Builds the unsharded library — the oracle the serving tier is validated
/// against: all interviews, all videos, text finalized.
Result<std::unique_ptr<DigitalLibrary>> BuildLibrary(const CorpusParts& parts);

/// Builds `num_shards` in-memory shard libraries: every shard gets a copy
/// of the store and all interviews (finalized); the distinct video ids are
/// sorted and split into `num_shards` contiguous ranges, and each shard
/// indexes only the descriptions in its range (preserving the original
/// insert order within the shard). Shards may be empty of videos when
/// there are fewer videos than shards. With `finalize_text` false the
/// interview index is left open so live ingest can replicate further
/// interviews (and the eventual FinalizeText) into every shard — the
/// ShardedIngestSink seed path; text queries fail until finalized.
Result<std::vector<std::unique_ptr<DigitalLibrary>>> BuildShardLibraries(
    const CorpusParts& parts, size_t num_shards, bool finalize_text = true);

/// Durable variant: shard i persists under `<base_dir>/shard-NNNN` (its own
/// segment directory, created via DurableLibrary::Create and flushed), so a
/// shard's segments are the unit a replica loads.
Result<std::vector<std::unique_ptr<DurableLibrary>>> BuildDurableShards(
    const CorpusParts& parts, size_t num_shards, const std::string& base_dir);

}  // namespace cobra::engine::serving
