#pragma once

/// \file serving.h
/// The sharded scatter-gather serving tier (DESIGN.md §4i).
///
/// A ServingFrontend fans one combined query across N shard libraries
/// (see partition.h for what a shard replicates vs partitions) and merges
/// the per-shard sorted results into a global top-N under the shared
/// SceneHitLess total order — so the merged answer is bit-identical to the
/// unsharded DigitalLibrary::Search oracle truncated to N, for any shard
/// count.
///
/// Work reduction, not parallelism, is where the speedup comes from:
///   * queries with no content (event) condition are answered entirely by
///     the replicated modalities, so they route to ONE shard picked by
///     query-key hash — cache affinity multiplies effective cache capacity
///     by the shard count;
///   * queries with a text condition evaluate the text stage ONCE in the
///     frontend (the interview index is replicated, so every shard would
///     compute the same map) and fan the result out as a planner seed;
///   * queries with a similar_to condition resolve the probe signature and
///     the GLOBAL neighbor set once in the frontend (the signature modality
///     is partitioned, so a shard evaluating alone would answer a local,
///     different question) and fan it out as a seed; per-shard Hamming
///     lower bounds order the candidate merge and skip shards provably
///     outside the top-k, and the resolved per-shard neighbor distances
///     feed the same block-max merge bound event queries use;
///   * every shard has an upper bound B_i on the rank of its best possible
///     hit — max seed score among players present in the shard, then the
///     shard's minimum video id (range partitioning makes it a bound) —
///     and a shard whose B_i ranks strictly after the current merged Nth
///     hit is skipped without being evaluated, the block-max/maxscore idea
///     of text/daat.h lifted to the shard level;
///   * shards that provably cannot contribute (no indexed videos, or no
///     player both text-matching and present) are pruned upfront.
///
/// Overload behavior: each shard has R replica workers with bounded
/// queues; dispatch picks the replica with the smaller queue via
/// power-of-two-choices, and a full queue sheds the whole query with
/// Status::Unavailable instead of queueing unboundedly. A per-query
/// deadline returns the partial merge accumulated so far (degraded, with
/// the timed-out shard count in QueryStats) instead of stalling on a slow
/// shard.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/digital_library.h"
#include "engine/query_engine.h"
#include "util/status.h"

namespace cobra::engine::serving {

struct ServingConfig {
  /// Worker replicas per shard; each owns one bounded queue + thread.
  int replicas = 1;
  /// Maximum queued (not yet running) queries per replica; a query that
  /// finds every candidate replica of some shard full is shed.
  size_t queue_depth = 64;
  /// Default per-query deadline in milliseconds; <= 0 disables. Overridable
  /// per call.
  double default_deadline_ms = 0.0;
  /// Per-shard QueryEngine configuration (num_threads is forced to 1 — the
  /// replicas are the workers).
  QueryEngineConfig engine;
  /// Frontend text-seed cache entries (LRU).
  size_t text_seed_cache_capacity = 128;
};

/// Per-query execution record.
struct QueryStats {
  size_t shards_total = 0;        ///< shards in the frontend
  size_t shards_searched = 0;     ///< shards actually evaluated
  size_t shards_pruned_upfront = 0;   ///< provably-empty before dispatch
  size_t shards_pruned_by_bound = 0;  ///< skipped by the merge bound
  size_t shards_timed_out = 0;    ///< still pending when the deadline hit
  bool single_shard_routed = false;   ///< no-content query, one shard answered
  bool text_seeded = false;       ///< frontend evaluated the text stage once
  bool text_seed_cached = false;  ///< ... and it came from the seed cache
  bool similar_seeded = false;    ///< frontend resolved the global similar stage
  /// Shard ANN probes skipped during seed resolution because the shard's
  /// Hamming lower bound proved it outside the merged top-(k+1).
  size_t similar_probes_skipped = 0;
  bool degraded = false;          ///< partial merge returned at the deadline
};

/// Aggregate counters across all queries answered by one frontend.
struct ServingStats {
  int64_t queries = 0;
  int64_t shed = 0;       ///< rejected with Unavailable (full queues)
  int64_t degraded = 0;   ///< returned partial at the deadline
  int64_t shards_searched = 0;
  int64_t shards_pruned_upfront = 0;
  int64_t shards_pruned_by_bound = 0;
  int64_t single_shard_routed = 0;
  int64_t text_seed_cache_hits = 0;
  int64_t text_seed_cache_misses = 0;
  int64_t similar_seeded = 0;
  int64_t similar_probes_skipped = 0;
};

class ServingFrontend {
 public:
  /// `shards` are complete libraries per partition.h; every pointer must
  /// outlive the frontend and not be mutated while queries are in flight
  /// (the DurableLibrary compaction seam is explicitly allowed — it never
  /// mutates the live library). Requires >= 1 shard.
  static Result<std::unique_ptr<ServingFrontend>> Create(
      std::vector<const DigitalLibrary*> shards, ServingConfig config);

  /// Joins all replica workers after draining their queues.
  ~ServingFrontend();

  /// The global top-`top_n` of `query` under SceneHitLess (top_n == 0 =
  /// all hits). `deadline_ms` < 0 takes the config default; 0 disables.
  /// Errors: Unavailable when shed at admission; DeadlineExceeded is never
  /// returned — an expired deadline degrades to the partial merge with
  /// `qstats->degraded` set; any shard evaluation error is returned as-is.
  Result<std::vector<SceneHit>> Search(const CombinedQuery& query,
                                       size_t top_n,
                                       QueryStats* qstats = nullptr,
                                       double deadline_ms = -1.0);

  /// Swaps shard `shard` to `library` (e.g. a reopened durable shard) with
  /// a fresh per-shard engine + cache. Safe while queries are in flight:
  /// in-flight queries finish against the snapshot they acquired.
  Status ReloadShard(size_t shard, const DigitalLibrary* library);

  /// ReloadShard, plus the retired generation's lease: a token held
  /// (through their snapshots) by every in-flight query still reading the
  /// shard's *previous* library. Once the returned pointer is unique the
  /// old library has no readers and the caller may mutate or destroy it —
  /// the double-buffered ingest publish seam (engine/ingest).
  Status ReloadShardRetiring(size_t shard, const DigitalLibrary* library,
                             std::shared_ptr<const void>* retired_lease);

  size_t num_shards() const { return slots_.size(); }
  ServingStats stats() const;

  /// Test hooks: freeze/unfreeze every replica worker (queued jobs stay
  /// queued), and the total currently queued job count.
  void PauseWorkersForTest();
  void ResumeWorkers();
  size_t QueuedJobsForTest() const;

 private:
  /// Immutable per-shard state published atomically on reload and rebuilt
  /// lazily when the shard library's index epoch moves (the serving-layer
  /// epoch seam): derived pruning stats must never outlive the data they
  /// summarize.
  struct Snapshot {
    const DigitalLibrary* library = nullptr;
    std::shared_ptr<QueryEngine> engine;
    /// Players reachable from the shard's indexed videos via "plays_in" —
    /// the only players that can appear in a scene hit of this shard.
    std::unordered_set<int64_t> players_present;
    bool presence_valid = false;  ///< false = traversal failed, never prune on it
    /// The shard's indexed video oids — membership tests for the similar
    /// stage's neighbor-video pruning.
    std::unordered_set<int64_t> video_set;
    int64_t min_video = 0;
    bool has_videos = false;
    int64_t built_epoch = -1;
    /// Liveness token of the library generation this snapshot reads
    /// (shared by every snapshot of the generation; see
    /// ReloadShardRetiring).
    std::shared_ptr<const void> lease;
  };

  struct ShardSlot {
    mutable std::mutex mu;
    std::shared_ptr<const Snapshot> snap;
  };

  /// One replica: a worker thread draining a bounded job queue. `depth`
  /// counts queued + running jobs (the power-of-two-choices load signal).
  struct Replica {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    std::atomic<size_t> depth{0};
    std::thread thread;
  };

  struct ScatterState;

  ServingFrontend(std::vector<const DigitalLibrary*> shards,
                  ServingConfig config);

  std::shared_ptr<const Snapshot> BuildSnapshot(
      const DigitalLibrary* library, std::shared_ptr<QueryEngine> engine,
      std::shared_ptr<const void> lease);
  std::shared_ptr<const Snapshot> Acquire(size_t shard);

  /// Frontend-evaluated text stage, LRU-cached on (text, top_k, epoch).
  /// nullptr = stage failed; callers fall back to unseeded evaluation.
  std::shared_ptr<const std::map<int64_t, double>> TextSeed(
      const CombinedQuery& query, int64_t epoch, bool* cached);

  /// Frontend-resolved global similar stage (the partitioned-modality
  /// analog of TextSeed): resolves the probe signature in its home shard,
  /// then merges per-shard exact top-(k+1) candidate lists under the total
  /// neighbor order, probing shards in Hamming-lower-bound order so a
  /// shard provably outside the merged top-(k+1) is never searched
  /// (`probes_skipped` counts those). nullptr = probe unresolvable in any
  /// shard; callers fan out unseeded so every shard reproduces the
  /// oracle's NotFound.
  std::shared_ptr<const SimilarSeed> SimilarSeedFor(
      const CombinedQuery& query,
      const std::vector<std::shared_ptr<const Snapshot>>& snaps,
      size_t* probes_skipped);

  void WorkerLoop(Replica* replica);
  /// Enqueues onto the less loaded of two sampled replicas of `shard`;
  /// false = all candidates full (shed).
  bool Dispatch(size_t shard, std::function<void()> job);
  /// With `st->mu` held: prunes deferred targets whose bound ranks after
  /// the merged Nth, then dispatches the first survivor (the cascade step
  /// run after every shard completion).
  void DrainDeferredLocked(ScatterState* st);

  ServingConfig config_;
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  std::vector<std::unique_ptr<Replica>> replicas_;  ///< shard-major, R per shard
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> route_state_{0x9e3779b97f4a7c15ull};

  std::mutex seed_mu_;
  std::list<std::pair<std::string,
                      std::shared_ptr<const std::map<int64_t, double>>>>
      seed_lru_;
  std::unordered_map<
      std::string,
      std::list<std::pair<
          std::string,
          std::shared_ptr<const std::map<int64_t, double>>>>::iterator>
      seed_index_;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> shards_searched_{0};
  std::atomic<int64_t> shards_pruned_upfront_{0};
  std::atomic<int64_t> shards_pruned_by_bound_{0};
  std::atomic<int64_t> single_shard_routed_{0};
  std::atomic<int64_t> seed_cache_hits_{0};
  std::atomic<int64_t> seed_cache_misses_{0};
  std::atomic<int64_t> similar_seeded_{0};
  std::atomic<int64_t> similar_probes_skipped_{0};
};

}  // namespace cobra::engine::serving
