#include "engine/serving/serving.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>
#include <utility>

namespace cobra::engine::serving {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Merges a shard's SceneHitLess-sorted result into the running global
/// top-N (top_n == 0 = unbounded). Sorted-input merge keeps the whole
/// gather linear in the hits seen.
void MergeInto(std::vector<SceneHit>* best, const std::vector<SceneHit>& hits,
               size_t top_n) {
  if (hits.empty()) return;
  std::vector<SceneHit> merged;
  merged.reserve(best->size() + hits.size());
  std::merge(best->begin(), best->end(), hits.begin(), hits.end(),
             std::back_inserter(merged), SceneHitLess);
  if (top_n > 0 && merged.size() > top_n) merged.resize(top_n);
  *best = std::move(merged);
}

}  // namespace

/// Shared fate of one scattered query; jobs hold it by shared_ptr so a
/// degraded (deadline-expired) response can return while stragglers still
/// drain against this state.
struct ServingFrontend::ScatterState {
  std::mutex mu;
  std::condition_variable cv;
  CombinedQuery query;
  size_t top_n = 0;
  std::shared_ptr<const std::map<int64_t, double>> seed;
  std::shared_ptr<const SimilarSeed> similar_seed;
  size_t pending = 0;
  bool cancelled = false;
  bool has_error = false;
  Status error;
  std::vector<SceneHit> best;
  size_t searched = 0;
  size_t pruned_by_bound = 0;
  struct Deferred {
    size_t shard = 0;
    SceneHit bound;
    std::function<void()> job;
  };
  /// Bounded targets not yet dispatched, best bound first. Each completion
  /// either prunes them against the merged Nth or releases the next one —
  /// the early-terminating merge: a shard whose bound ranks after the Nth
  /// is never even scheduled, so its work is saved, not raced.
  std::deque<Deferred> deferred;
};

Result<std::unique_ptr<ServingFrontend>> ServingFrontend::Create(
    std::vector<const DigitalLibrary*> shards, ServingConfig config) {
  if (shards.empty()) {
    return Status::InvalidArgument("serving frontend needs >= 1 shard");
  }
  for (const DigitalLibrary* shard : shards) {
    if (shard == nullptr) {
      return Status::InvalidArgument("null shard library");
    }
  }
  return std::unique_ptr<ServingFrontend>(
      new ServingFrontend(std::move(shards), std::move(config)));
}

ServingFrontend::ServingFrontend(std::vector<const DigitalLibrary*> shards,
                                 ServingConfig config)
    : config_(std::move(config)) {
  // Replicas are the workers; a pool inside the per-shard engine would
  // only fight them for the cores.
  config_.engine.num_threads = 1;
  if (config_.replicas < 1) config_.replicas = 1;
  if (config_.queue_depth < 1) config_.queue_depth = 1;
  slots_.reserve(shards.size());
  for (const DigitalLibrary* shard : shards) {
    auto slot = std::make_unique<ShardSlot>();
    slot->snap = BuildSnapshot(shard, nullptr, std::make_shared<int>(0));
    slots_.push_back(std::move(slot));
  }
  replicas_.resize(slots_.size() * static_cast<size_t>(config_.replicas));
  for (auto& replica : replicas_) {
    replica = std::make_unique<Replica>();
  }
  for (auto& replica : replicas_) {
    replica->thread = std::thread(&ServingFrontend::WorkerLoop, this,
                                  replica.get());
  }
}

ServingFrontend::~ServingFrontend() {
  stop_.store(true, std::memory_order_release);
  for (auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->cv.notify_all();
  }
  for (auto& replica : replicas_) {
    if (replica->thread.joinable()) replica->thread.join();
  }
}

std::shared_ptr<const ServingFrontend::Snapshot> ServingFrontend::BuildSnapshot(
    const DigitalLibrary* library, std::shared_ptr<QueryEngine> engine,
    std::shared_ptr<const void> lease) {
  auto snap = std::make_shared<Snapshot>();
  snap->library = library;
  snap->lease = std::move(lease);
  snap->engine = engine ? std::move(engine)
                        : std::make_shared<QueryEngine>(library, config_.engine);
  snap->built_epoch = library->index_epoch();
  const std::vector<int64_t>& videos = library->indexed_videos();
  snap->has_videos = !videos.empty();
  if (snap->has_videos) {
    snap->min_video = *std::min_element(videos.begin(), videos.end());
  }
  snap->video_set.insert(videos.begin(), videos.end());
  Result<std::vector<int64_t>> present =
      library->store().TraverseReverse("plays_in", videos);
  if (present.ok()) {
    snap->presence_valid = true;
    snap->players_present.insert(present.value().begin(),
                                 present.value().end());
  }
  return snap;
}

std::shared_ptr<const SimilarSeed> ServingFrontend::SimilarSeedFor(
    const CombinedQuery& query,
    const std::vector<std::shared_ptr<const Snapshot>>& snaps,
    size_t* probes_skipped) {
  // The signature modality is partitioned: the probe shot is indexed in
  // exactly one shard. Resolve it there.
  const similarity::SignatureIndex* home = nullptr;
  vision::ShotSignature probe{};
  for (const auto& snap : snaps) {
    Result<vision::ShotSignature> resolved =
        ResolveProbeSignature(snap->library->signatures(), query);
    if (resolved.ok()) {
      probe = resolved.value();
      home = &snap->library->signatures();
      break;
    }
  }
  if (home == nullptr) return nullptr;
  const size_t k = EffectiveSimilarK(*home, query);

  // Candidate merge in Hamming-lower-bound order: per-shard exact
  // top-(k+1) lists union to the global top-(k+1) (each shard's list is
  // exact over its records), and a shard whose every record provably ranks
  // after the (k+1)-th kept candidate is never searched at all.
  std::vector<std::pair<uint32_t, const similarity::SignatureIndex*>> order;
  order.reserve(snaps.size());
  for (const auto& snap : snaps) {
    const similarity::SignatureIndex& index = snap->library->signatures();
    order.emplace_back(index.HammingLowerBound(probe), &index);
  }
  std::stable_sort(
      order.begin(), order.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<similarity::Neighbor> merged;
  for (const auto& [hlb, index] : order) {
    if (merged.size() > k &&
        similarity::DistanceKey(merged[k].hamming, merged[k].l2sq) <
            similarity::DistanceKey(hlb, 0)) {
      // Every record in the shard has Hamming >= hlb, so its key exceeds
      // the (k+1)-th kept candidate's strictly — it can neither displace
      // nor tie-break into the merged top-(k+1).
      ++*probes_skipped;
      continue;
    }
    // k + 1 so the probe's own record (home shard only) never displaces a
    // real neighbor before BuildSimilarNeighbors drops it.
    std::vector<similarity::Neighbor> cand = index->SearchSimilar(probe, k + 1);
    merged.insert(merged.end(), cand.begin(), cand.end());
    std::sort(merged.begin(), merged.end(), similarity::NeighborBefore);
    if (merged.size() > k + 1) merged.resize(k + 1);
  }
  auto seed = std::make_shared<SimilarSeed>();
  seed->signature = probe;
  seed->neighbors = BuildSimilarNeighbors(merged, query, k);
  return seed;
}

std::shared_ptr<const ServingFrontend::Snapshot> ServingFrontend::Acquire(
    size_t shard) {
  ShardSlot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.snap->built_epoch != slot.snap->library->index_epoch()) {
    // The shard mutated since the snapshot was built: the pruning stats
    // (presence set, video range) are stale and must be rebuilt before any
    // prune decision trusts them. The engine survives — its cache entries
    // are epoch-tagged and self-evict.
    // Same data generation (same library, same lease) — only the derived
    // pruning stats are rebuilt.
    slot.snap =
        BuildSnapshot(slot.snap->library, slot.snap->engine, slot.snap->lease);
  }
  return slot.snap;
}

std::shared_ptr<const std::map<int64_t, double>> ServingFrontend::TextSeed(
    const CombinedQuery& query, int64_t epoch, bool* cached) {
  *cached = false;
  std::string key = std::to_string(query.text.size());
  key += ':';
  key += query.text;
  key += '|';
  key += std::to_string(query.text_top_k);
  key += '|';
  key += std::to_string(epoch);
  {
    std::lock_guard<std::mutex> lock(seed_mu_);
    auto it = seed_index_.find(key);
    if (it != seed_index_.end()) {
      seed_lru_.splice(seed_lru_.begin(), seed_lru_, it->second);
      seed_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      *cached = true;
      return it->second->second;
    }
  }
  seed_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  // Shard 0's interview index stands for every shard's — the modality is
  // replicated (partition.h).
  std::shared_ptr<const Snapshot> snap = Acquire(0);
  Result<std::map<int64_t, double>> stage =
      snap->library->TextStage(query.text, query.text_top_k);
  if (!stage.ok()) return nullptr;  // callers fall back to unseeded shards
  auto seed = std::make_shared<const std::map<int64_t, double>>(
      std::move(stage).TakeValue());
  std::lock_guard<std::mutex> lock(seed_mu_);
  if (seed_index_.find(key) == seed_index_.end()) {
    seed_lru_.emplace_front(key, seed);
    seed_index_.emplace(std::move(key), seed_lru_.begin());
    while (seed_lru_.size() > std::max<size_t>(1, config_.text_seed_cache_capacity)) {
      seed_index_.erase(seed_lru_.back().first);
      seed_lru_.pop_back();
    }
  }
  return seed;
}

void ServingFrontend::WorkerLoop(Replica* replica) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(replica->mu);
      replica->cv.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               (!paused_.load(std::memory_order_acquire) &&
                !replica->queue.empty());
      });
      if (replica->queue.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;  // paused wake-up with nothing runnable
      }
      // On stop the queue still drains — a queued job always runs, so no
      // Search caller is left waiting on a dropped job.
      job = std::move(replica->queue.front());
      replica->queue.pop_front();
    }
    job();
    replica->depth.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool ServingFrontend::Dispatch(size_t shard, std::function<void()> job) {
  const size_t R = static_cast<size_t>(config_.replicas);
  Replica* first = nullptr;
  Replica* second = nullptr;
  if (R == 1) {
    first = replicas_[shard].get();
  } else {
    // Power of two choices over queued+running depth.
    const uint64_t z =
        SplitMix64(route_state_.fetch_add(1, std::memory_order_relaxed));
    const size_t a = static_cast<size_t>(z % R);
    const size_t b = (a + 1 + static_cast<size_t>((z >> 32) % (R - 1))) % R;
    first = replicas_[shard * R + a].get();
    second = replicas_[shard * R + b].get();
    if (second->depth.load(std::memory_order_relaxed) <
        first->depth.load(std::memory_order_relaxed)) {
      std::swap(first, second);
    }
  }
  for (Replica* replica : {first, second}) {
    if (replica == nullptr) continue;
    std::lock_guard<std::mutex> lock(replica->mu);
    if (replica->queue.size() >= config_.queue_depth) continue;
    replica->queue.push_back(std::move(job));
    replica->depth.fetch_add(1, std::memory_order_relaxed);
    replica->cv.notify_one();
    return true;
  }
  return false;
}

void ServingFrontend::DrainDeferredLocked(ScatterState* st) {
  while (!st->deferred.empty()) {
    if (st->cancelled || st->has_error) {
      st->pending -= st->deferred.size();
      st->deferred.clear();
      return;
    }
    if (st->top_n > 0 && st->best.size() >= st->top_n &&
        SceneHitLess(st->best.back(), st->deferred.front().bound)) {
      // Early termination: this bound — and, since the queue is bound-
      // ordered, every later one — can still be re-checked cheaply, so
      // only drop the head and loop.
      ++st->pruned_by_bound;
      --st->pending;
      st->deferred.pop_front();
      continue;
    }
    ScatterState::Deferred next = std::move(st->deferred.front());
    st->deferred.pop_front();
    // Replica mutexes are leaves; dispatching under st->mu is cycle-free.
    if (!Dispatch(next.shard, std::move(next.job))) {
      st->cancelled = true;
      st->has_error = true;
      st->error = Status::Unavailable("serving queues full, query shed");
      st->pending -= 1 + st->deferred.size();
      st->deferred.clear();
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
}

Result<std::vector<SceneHit>> ServingFrontend::Search(
    const CombinedQuery& query, size_t top_n, QueryStats* qstats,
    double deadline_ms) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  QueryStats local;
  QueryStats& qs = qstats != nullptr ? *qstats : local;
  qs = QueryStats{};
  qs.shards_total = slots_.size();

  if (deadline_ms < 0.0) deadline_ms = config_.default_deadline_ms;
  const bool has_deadline = deadline_ms > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              has_deadline ? deadline_ms : 0.0));

  const bool has_event = !query.event.empty();
  const bool has_text = !query.text.empty();
  const bool has_similar = query.similar_video >= 0;
  constexpr int64_t kLow = std::numeric_limits<int64_t>::min();

  auto st = std::make_shared<ScatterState>();
  st->query = query;
  st->top_n = top_n;

  if (has_text) {
    bool cached = false;
    st->seed = TextSeed(query, Acquire(0)->built_epoch, &cached);
    qs.text_seeded = st->seed != nullptr;
    qs.text_seed_cached = cached;
  }
  if (has_similar) {
    std::vector<std::shared_ptr<const Snapshot>> snaps;
    snaps.reserve(slots_.size());
    for (size_t i = 0; i < slots_.size(); ++i) snaps.push_back(Acquire(i));
    size_t skipped = 0;
    st->similar_seed = SimilarSeedFor(query, snaps, &skipped);
    qs.similar_seeded = st->similar_seed != nullptr;
    qs.similar_probes_skipped = skipped;
    if (qs.similar_seeded) {
      similar_seeded_.fetch_add(1, std::memory_order_relaxed);
    }
    similar_probes_skipped_.fetch_add(static_cast<int64_t>(skipped),
                                      std::memory_order_relaxed);
  }

  struct Target {
    size_t shard = 0;
    std::shared_ptr<const Snapshot> snap;
    SceneHit bound;
    bool has_bound = false;
  };
  std::vector<Target> targets;

  if (!has_event && !has_similar) {
    // No content condition: the answer only involves the replicated
    // modalities, so any single shard produces the full result. Hashing
    // the normalized key gives cache affinity across repeats.
    const size_t shard =
        std::hash<std::string>{}(QueryEngine::NormalizedKey(query)) %
        slots_.size();
    targets.push_back({shard, Acquire(shard), SceneHit{}, false});
    qs.single_shard_routed = true;
    single_shard_routed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    for (size_t i = 0; i < slots_.size(); ++i) {
      std::shared_ptr<const Snapshot> snap = Acquire(i);
      if (!snap->has_videos) {
        ++qs.shards_pruned_upfront;  // every hit would need a scene or shot
        continue;
      }
      Target t;
      t.shard = i;
      t.bound.video_oid = snap->min_video;
      t.bound.range = {kLow, kLow};
      t.bound.player_oid = kLow;
      t.has_bound = true;
      if (has_text) {
        if (st->seed != nullptr && snap->presence_valid) {
          // Upper bound on any shard hit's text score: best seed score
          // among players that appear in the shard's videos at all.
          double best_score = -1.0;
          if (st->seed->size() <= snap->players_present.size()) {
            for (const auto& [player, score] : *st->seed) {
              if (snap->players_present.count(player) != 0) {
                best_score = std::max(best_score, score);
              }
            }
          } else {
            for (int64_t player : snap->players_present) {
              auto it = st->seed->find(player);
              if (it != st->seed->end()) {
                best_score = std::max(best_score, it->second);
              }
            }
          }
          if (best_score < 0.0) {
            ++qs.shards_pruned_upfront;  // nobody both matches and appears
            continue;
          }
          t.bound.text_score = best_score;
        } else {
          t.has_bound = false;  // text bound unknowable; never prune
        }
      }
      if (has_similar && st->similar_seed != nullptr) {
        // A shard contributes hits only through neighbor shots of its own
        // videos, each carrying similarity >= the shard's closest neighbor
        // distance — the per-shard lower bound on the similarity rank.
        double best_distance = -1.0;
        for (const auto& [video, shots] : st->similar_seed->neighbors) {
          if (snap->video_set.count(video) == 0) continue;
          for (const SimilarShot& shot : shots) {
            if (best_distance < 0.0 || shot.distance < best_distance) {
              best_distance = shot.distance;
            }
          }
        }
        if (best_distance < 0.0) {
          ++qs.shards_pruned_upfront;  // no neighbor shot in this shard
          continue;
        }
        t.bound.similarity = best_distance;
      }
      // When the similar stage is unresolvable (null seed), no similar
      // bound or prune applies: every evaluated shard reproduces the
      // oracle's NotFound, and at least one always evaluates.
      t.snap = std::move(snap);
      targets.push_back(std::move(t));
    }
    if (targets.empty()) {
      // Never prune every shard: one shard must still evaluate so that
      // errors the oracle would surface (e.g. a malformed predicate the
      // planner validates lazily) surface here too.
      --qs.shards_pruned_upfront;
      targets.push_back({0, Acquire(0), SceneHit{}, false});
    }
    // Best bound first: tightens the merged Nth as early as possible, so
    // later (worse-bounded) shards prune at dequeue. Unbounded targets
    // lead — they run regardless.
    std::stable_sort(targets.begin(), targets.end(),
                     [](const Target& a, const Target& b) {
                       if (a.has_bound != b.has_bound) return !a.has_bound;
                       if (!a.has_bound) return false;
                       return SceneHitLess(a.bound, b.bound);
                     });
  }

  st->pending = targets.size();
  // Immediate wave: every unbounded target (they run regardless), or just
  // the best-bounded one when all targets have bounds. The rest cascade
  // through DrainDeferredLocked — dispatched one at a time, in bound
  // order, only while their bound still beats the merged Nth.
  size_t immediate = 0;
  while (immediate < targets.size() && !targets[immediate].has_bound) {
    ++immediate;
  }
  if (immediate == 0) immediate = 1;

  std::vector<std::pair<size_t, std::function<void()>>> wave;
  for (size_t k = 0; k < targets.size(); ++k) {
    Target& t = targets[k];
    std::shared_ptr<const Snapshot> snap = std::move(t.snap);
    const bool check_bound = t.has_bound && top_n > 0;
    SceneHit bound = t.bound;
    auto job = [this, st, snap, bound, check_bound] {
      bool skip = false;
      {
        std::lock_guard<std::mutex> lock(st->mu);
        if (st->cancelled || st->has_error) {
          skip = true;
        } else if (check_bound && st->best.size() >= st->top_n &&
                   SceneHitLess(st->best.back(), bound)) {
          // The shard's best possible hit ranks strictly after the merged
          // Nth: nothing it holds can enter the top-N.
          skip = true;
          ++st->pruned_by_bound;
        }
      }
      if (!skip) {
        Result<std::vector<SceneHit>> result = snap->engine->Search(
            st->query, st->seed ? st->seed.get() : nullptr,
            st->similar_seed ? st->similar_seed.get() : nullptr);
        std::lock_guard<std::mutex> lock(st->mu);
        ++st->searched;
        if (!result.ok()) {
          if (!st->has_error) {
            st->has_error = true;
            st->error = result.status();
          }
        } else if (!st->cancelled) {
          MergeInto(&st->best, result.value(), st->top_n);
        }
      }
      std::lock_guard<std::mutex> lock(st->mu);
      --st->pending;
      DrainDeferredLocked(st.get());
      st->cv.notify_all();
    };
    if (k < immediate) {
      wave.emplace_back(t.shard, std::move(job));
    } else {
      st->deferred.push_back({t.shard, t.bound, std::move(job)});
    }
  }
  for (auto& [shard, job] : wave) {
    if (!Dispatch(shard, std::move(job))) {
      {
        std::lock_guard<std::mutex> lock(st->mu);
        st->cancelled = true;  // already-queued jobs fall through fast
        st->deferred.clear();
      }
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("serving queues full, query shed");
    }
  }

  std::unique_lock<std::mutex> lock(st->mu);
  if (has_deadline) {
    if (!st->cv.wait_until(lock, deadline,
                           [&] { return st->pending == 0; })) {
      st->cancelled = true;
      qs.shards_timed_out = st->pending;
      qs.degraded = true;
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    st->cv.wait(lock, [&] { return st->pending == 0; });
  }
  qs.shards_searched = st->searched;
  qs.shards_pruned_by_bound = st->pruned_by_bound;
  shards_searched_.fetch_add(static_cast<int64_t>(st->searched),
                             std::memory_order_relaxed);
  shards_pruned_upfront_.fetch_add(
      static_cast<int64_t>(qs.shards_pruned_upfront),
      std::memory_order_relaxed);
  shards_pruned_by_bound_.fetch_add(
      static_cast<int64_t>(st->pruned_by_bound), std::memory_order_relaxed);
  if (st->has_error) return st->error;
  return std::move(st->best);
}

Status ServingFrontend::ReloadShard(size_t shard,
                                    const DigitalLibrary* library) {
  if (shard >= slots_.size()) {
    return Status::OutOfRange("no such shard");
  }
  if (library == nullptr) {
    return Status::InvalidArgument("null shard library");
  }
  return ReloadShardRetiring(shard, library, nullptr);
}

Status ServingFrontend::ReloadShardRetiring(
    size_t shard, const DigitalLibrary* library,
    std::shared_ptr<const void>* retired_lease) {
  if (shard >= slots_.size()) {
    return Status::OutOfRange("no such shard");
  }
  if (library == nullptr) {
    return Status::InvalidArgument("null shard library");
  }
  // Fresh engine + cache: a reload is a new data generation, not an epoch
  // bump of the old one.
  std::shared_ptr<const Snapshot> snap =
      BuildSnapshot(library, nullptr, std::make_shared<int>(0));
  std::lock_guard<std::mutex> lock(slots_[shard]->mu);
  if (retired_lease != nullptr) {
    // Every snapshot of the outgoing generation shares this lease, so the
    // returned copy is unique exactly when no in-flight query still reads
    // the old library.
    *retired_lease = slots_[shard]->snap->lease;
  }
  slots_[shard]->snap = std::move(snap);
  return Status::OK();
}

ServingStats ServingFrontend::stats() const {
  ServingStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.shards_searched = shards_searched_.load(std::memory_order_relaxed);
  out.shards_pruned_upfront =
      shards_pruned_upfront_.load(std::memory_order_relaxed);
  out.shards_pruned_by_bound =
      shards_pruned_by_bound_.load(std::memory_order_relaxed);
  out.single_shard_routed =
      single_shard_routed_.load(std::memory_order_relaxed);
  out.text_seed_cache_hits = seed_cache_hits_.load(std::memory_order_relaxed);
  out.text_seed_cache_misses =
      seed_cache_misses_.load(std::memory_order_relaxed);
  out.similar_seeded = similar_seeded_.load(std::memory_order_relaxed);
  out.similar_probes_skipped =
      similar_probes_skipped_.load(std::memory_order_relaxed);
  return out;
}

void ServingFrontend::PauseWorkersForTest() {
  paused_.store(true, std::memory_order_release);
}

void ServingFrontend::ResumeWorkers() {
  paused_.store(false, std::memory_order_release);
  for (auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->cv.notify_all();
  }
}

size_t ServingFrontend::QueuedJobsForTest() const {
  size_t total = 0;
  for (const auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    total += replica->queue.size();
  }
  return total;
}

}  // namespace cobra::engine::serving
