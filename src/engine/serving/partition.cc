#include "engine/serving/partition.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "util/strings.h"

namespace cobra::engine::serving {

ShardRouter::ShardRouter(const std::vector<core::VideoDescription>& videos,
                         size_t num_shards) {
  std::vector<int64_t> ids;
  ids.reserve(videos.size());
  for (const core::VideoDescription& v : videos) ids.push_back(v.video_id());
  *this = ShardRouter(std::move(ids), num_shards);
}

ShardRouter::ShardRouter(std::vector<int64_t> video_ids, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::set<int64_t> distinct(video_ids.begin(), video_ids.end());
  std::vector<int64_t> sorted(distinct.begin(), distinct.end());
  upper_.assign(num_shards, INT64_MAX);
  const size_t m = sorted.size();
  for (size_t s = 0; s + 1 < num_shards; ++s) {
    const size_t cut = ((s + 1) * m) / num_shards;
    // Upper bound of shard s = first id of the next slice (or +inf when the
    // remaining slices are empty).
    upper_[s] = cut < m ? sorted[cut] : INT64_MAX;
  }
}

size_t ShardRouter::ShardOf(int64_t video_id) const {
  return static_cast<size_t>(
      std::upper_bound(upper_.begin(), upper_.end(), video_id) -
      upper_.begin());
}

Result<std::unique_ptr<DigitalLibrary>> BuildLibrary(const CorpusParts& parts) {
  COBRA_ASSIGN_OR_RETURN(std::unique_ptr<DigitalLibrary> library,
                         DigitalLibrary::Create(parts.store));
  for (const auto& [oid, text] : parts.interviews) {
    COBRA_RETURN_NOT_OK(library->AddInterview(oid, text));
  }
  COBRA_RETURN_NOT_OK(library->FinalizeText());
  for (const core::VideoDescription& desc : parts.videos) {
    COBRA_RETURN_NOT_OK(library->AddVideoDescription(desc));
  }
  for (const auto& [video_id, records] : parts.signatures) {
    COBRA_RETURN_NOT_OK(library->AddVideoSignatures(video_id, records));
  }
  return library;
}

Result<std::vector<std::unique_ptr<DigitalLibrary>>> BuildShardLibraries(
    const CorpusParts& parts, size_t num_shards, bool finalize_text) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const ShardRouter router(parts.videos, num_shards);
  std::vector<std::unique_ptr<DigitalLibrary>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    COBRA_ASSIGN_OR_RETURN(std::unique_ptr<DigitalLibrary> shard,
                           DigitalLibrary::Create(parts.store));
    for (const auto& [oid, text] : parts.interviews) {
      COBRA_RETURN_NOT_OK(shard->AddInterview(oid, text));
    }
    if (finalize_text) COBRA_RETURN_NOT_OK(shard->FinalizeText());
    for (const core::VideoDescription& desc : parts.videos) {
      if (router.ShardOf(desc.video_id()) != s) continue;
      COBRA_RETURN_NOT_OK(shard->AddVideoDescription(desc));
    }
    for (const auto& [video_id, records] : parts.signatures) {
      if (router.ShardOf(video_id) != s) continue;
      COBRA_RETURN_NOT_OK(shard->AddVideoSignatures(video_id, records));
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

Result<std::vector<std::unique_ptr<DurableLibrary>>> BuildDurableShards(
    const CorpusParts& parts, size_t num_shards, const std::string& base_dir) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(base_dir, ec);
  if (ec) {
    return Status::Internal(
        StringFormat("cannot create '%s': %s", base_dir.c_str(),
                     ec.message().c_str()));
  }
  const ShardRouter router(parts.videos, num_shards);
  std::vector<std::unique_ptr<DurableLibrary>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string dir =
        base_dir + "/" + StringFormat("shard-%04zu", s);
    COBRA_ASSIGN_OR_RETURN(std::unique_ptr<DurableLibrary> shard,
                           DurableLibrary::Create(dir, parts.store));
    for (const auto& [oid, text] : parts.interviews) {
      COBRA_RETURN_NOT_OK(shard->AddInterview(oid, text));
    }
    COBRA_RETURN_NOT_OK(shard->FinalizeText());
    for (const core::VideoDescription& desc : parts.videos) {
      if (router.ShardOf(desc.video_id()) != s) continue;
      COBRA_RETURN_NOT_OK(shard->AddVideoDescription(desc));
    }
    for (const auto& [video_id, records] : parts.signatures) {
      if (router.ShardOf(video_id) != s) continue;
      COBRA_RETURN_NOT_OK(shard->AddVideoSignatures(video_id, records));
    }
    COBRA_RETURN_NOT_OK(shard->Flush());
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace cobra::engine::serving
