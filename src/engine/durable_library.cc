#include "engine/durable_library.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "util/crc32.h"
#include "util/strings.h"

namespace cobra::engine {
namespace {

namespace seg = cobra::storage::segment;

// "COBRAMAN", little endian.
constexpr uint64_t kManifestMagic = 0x4E414D4152424F43ull;
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

std::string SegmentFileName(uint64_t number) {
  return StringFormat("seg-%06llu.cseg",
                      static_cast<unsigned long long>(number));
}

std::string WalFileName(uint64_t number) {
  return StringFormat("wal-%06llu.wal", static_cast<unsigned long long>(number));
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

}  // namespace

Result<DurableLibrary::Manifest> DurableLibrary::ReadManifest(
    const std::string& dir) {
  const std::string path = JoinPath(dir, kManifestName);
  if (!seg::FileExists(path)) {
    return Status::NotFound(StringFormat("no manifest in '%s'", dir.c_str()));
  }
  COBRA_ASSIGN_OR_RETURN(seg::MmapFile map, seg::MmapFile::Open(path));
  if (map.size() < 4) return Status::ParseError("manifest too small");
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, map.data() + map.size() - 4, 4);
  if (util::Crc32(map.data(), map.size() - 4) != stored_crc) {
    return Status::ParseError("manifest checksum mismatch");
  }
  seg::ByteReader in(map.data(), map.size() - 4);
  uint64_t magic = 0;
  uint32_t version = 0, num_segments = 0;
  Manifest manifest;
  if (!in.GetU64(&magic) || magic != kManifestMagic) {
    return Status::ParseError("bad manifest magic");
  }
  if (!in.GetU32(&version) || version != kManifestVersion) {
    return Status::ParseError("unsupported manifest version");
  }
  if (!in.GetU64(&manifest.next_file_number) || !in.GetU32(&num_segments) ||
      num_segments > in.remaining()) {
    return Status::ParseError("corrupt manifest header");
  }
  manifest.segments.reserve(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    std::string name;
    if (!in.GetString(&name)) return Status::ParseError("corrupt manifest");
    manifest.segments.push_back(std::move(name));
  }
  if (!in.GetString(&manifest.wal) || in.remaining() != 0) {
    return Status::ParseError("corrupt manifest");
  }
  return manifest;
}

Status DurableLibrary::WriteManifestLocked() {
  seg::ByteWriter out;
  out.PutU64(kManifestMagic);
  out.PutU32(kManifestVersion);
  out.PutU64(manifest_.next_file_number);
  out.PutU32(static_cast<uint32_t>(manifest_.segments.size()));
  for (const std::string& name : manifest_.segments) out.PutString(name);
  out.PutString(manifest_.wal);
  out.PutU32(util::Crc32(out.buffer().data(), out.size()));
  return seg::WriteFileAtomic(JoinPath(dir_, kManifestName),
                              out.buffer().data(), out.size());
}

storage::segment::LibraryDelta DurableLibrary::BuildDeltaLocked(
    const text::InvertedIndex* text,
    const text::CompressedInvertedIndex* compressed) const {
  seg::LibraryDelta delta;
  delta.index_epoch = library_->index_epoch();
  delta.store = &library_->store();
  delta.class_from_rows = class_flushed_rows_;
  delta.assoc_from_rows = assoc_flushed_rows_;
  delta.meta = &library_->meta_index();
  delta.shots_from_row = shots_flushed_rows_;
  delta.objects_from_row = objects_flushed_rows_;
  delta.events_from_row = events_flushed_rows_;
  const std::vector<int64_t>& videos = library_->indexed_videos();
  delta.new_video_oids.assign(videos.begin() + videos_flushed_, videos.end());
  delta.text = text;
  delta.compressed_text = compressed;
  // A snapshot contains every interview, so pending would be redundant.
  if (text == nullptr) delta.pending_interviews = pending_;
  delta.signature_chunks =
      library_->signatures().OwnedFrom(signatures_flushed_rows_);
  return delta;
}

Status DurableLibrary::FlushLocked(bool /*flush_on_open*/) {
  const text::InvertedIndex& interviews = library_->interviews();
  const bool include_text = interviews.finalized() && !text_persisted_;
  std::optional<text::CompressedInvertedIndex> compressed;
  if (include_text) {
    COBRA_ASSIGN_OR_RETURN(
        compressed, text::CompressedInvertedIndex::FromIndex(interviews));
  }
  const seg::LibraryDelta delta = BuildDeltaLocked(
      include_text ? &interviews : nullptr,
      compressed.has_value() ? &*compressed : nullptr);

  const std::string seg_name = SegmentFileName(manifest_.next_file_number++);
  COBRA_RETURN_NOT_OK(
      seg::WriteSegment(delta, JoinPath(dir_, seg_name), options_.flush_pool));
  COBRA_ASSIGN_OR_RETURN(
      std::unique_ptr<seg::SegmentReader> reader,
      seg::SegmentReader::Open(JoinPath(dir_, seg_name), options_.verify));

  const std::string old_wal = manifest_.wal;
  const std::string wal_name = WalFileName(manifest_.next_file_number++);
  COBRA_ASSIGN_OR_RETURN(
      std::shared_ptr<seg::GroupCommitWal> wal,
      seg::GroupCommitWal::Open(JoinPath(dir_, wal_name), options_.wal_mode));

  manifest_.segments.push_back(seg_name);
  manifest_.wal = wal_name;
  COBRA_RETURN_NOT_OK(WriteManifestLocked());
  readers_.push_back(std::move(reader));
  // Rotate. Tickets staged into the old WAL keep it alive through their
  // shared_ptr; waiting on them after the rotation completes harmlessly
  // (the fsynced segment already made those records durable).
  wal_ = std::move(wal);
  if (!old_wal.empty()) {
    (void)seg::RemoveFile(JoinPath(dir_, old_wal));
  }

  // Advance the watermarks: everything current is now persisted.
  const webspace::WebspaceStore& store = library_->store();
  const webspace::ConceptSchema& schema = store.schema();
  class_flushed_rows_.clear();
  for (const auto& cls : schema.classes()) {
    COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                           store.ClassTable(cls.name));
    class_flushed_rows_.push_back(table->num_rows());
  }
  assoc_flushed_rows_.clear();
  for (const auto& assoc : schema.associations()) {
    COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                           store.AssociationTable(assoc.name));
    assoc_flushed_rows_.push_back(table->num_rows());
  }
  const core::MetaIndex& meta = library_->meta_index();
  shots_flushed_rows_ = meta.shots().num_rows();
  objects_flushed_rows_ = meta.objects().num_rows();
  events_flushed_rows_ = meta.events().num_rows();
  videos_flushed_ = library_->indexed_videos().size();
  signatures_flushed_rows_ = library_->signatures().num_records();
  if (include_text) text_persisted_ = true;
  pending_.clear();
  return Status::OK();
}

Result<std::unique_ptr<DurableLibrary>> DurableLibrary::Create(
    const std::string& dir, webspace::WebspaceStore store,
    const Options& options) {
  COBRA_RETURN_NOT_OK(seg::CreateDir(dir));
  if (seg::FileExists(JoinPath(dir, kManifestName))) {
    return Status::AlreadyExists(
        StringFormat("'%s' already holds a durable library", dir.c_str()));
  }
  COBRA_ASSIGN_OR_RETURN(std::unique_ptr<DigitalLibrary> library,
                         DigitalLibrary::Create(std::move(store)));
  std::unique_ptr<DurableLibrary> out(new DurableLibrary());
  out->dir_ = dir;
  out->options_ = options;
  out->library_ = std::move(library);
  out->class_flushed_rows_.assign(
      out->library_->store().schema().classes().size(), 0);
  out->assoc_flushed_rows_.assign(
      out->library_->store().schema().associations().size(), 0);
  std::lock_guard<std::mutex> lock(out->manifest_mutex_);
  COBRA_RETURN_NOT_OK(out->FlushLocked(false));
  return out;
}

Result<std::unique_ptr<DurableLibrary>> DurableLibrary::Open(
    const std::string& dir, const Options& options) {
  COBRA_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));

  std::vector<std::unique_ptr<seg::SegmentReader>> readers;
  std::vector<const seg::SegmentReader*> reader_ptrs;
  readers.reserve(manifest.segments.size());
  for (const std::string& name : manifest.segments) {
    COBRA_ASSIGN_OR_RETURN(
        std::unique_ptr<seg::SegmentReader> reader,
        seg::SegmentReader::Open(JoinPath(dir, name), options.verify));
    reader_ptrs.push_back(reader.get());
    readers.push_back(std::move(reader));
  }
  COBRA_ASSIGN_OR_RETURN(
      seg::RestoredParts parts,
      seg::RestoreFromSegments(reader_ptrs, options.copy_text));

  COBRA_ASSIGN_OR_RETURN(
      webspace::WebspaceStore store,
      webspace::WebspaceStore::Restore(parts.schema,
                                       std::move(parts.class_tables),
                                       std::move(parts.assoc_tables)));
  COBRA_ASSIGN_OR_RETURN(
      core::MetaIndex meta,
      core::MetaIndex::FromTables(
          std::move(parts.shots), std::move(parts.objects),
          std::move(parts.events),
          static_cast<int64_t>(parts.indexed_videos.size())));
  const bool have_text = parts.text.has_value();
  text::InvertedIndex text =
      have_text ? std::move(*parts.text) : text::InvertedIndex();
  COBRA_ASSIGN_OR_RETURN(
      std::unique_ptr<DigitalLibrary> library,
      DigitalLibrary::CreateFromParts(std::move(store), std::move(text),
                                      std::move(meta), parts.indexed_videos,
                                      parts.index_epoch,
                                      std::move(parts.signature_chunks)));
  if (!have_text) {
    // Persisted but not yet finalized interviews: re-add so a later
    // FinalizeText sees them. They are already durable — not pending.
    for (const auto& [oid, body] : parts.pending_interviews) {
      COBRA_RETURN_NOT_OK(library->AddInterview(oid, body));
    }
  }

  std::unique_ptr<DurableLibrary> out(new DurableLibrary());
  out->dir_ = dir;
  out->options_ = options;
  out->library_ = std::move(library);
  out->manifest_ = std::move(manifest);
  out->readers_ = std::move(readers);
  out->text_persisted_ = have_text;

  // Watermarks = persisted state, before any WAL replay mutates the
  // library past what the segments hold.
  {
    const webspace::WebspaceStore& restored = out->library_->store();
    for (const auto& cls : restored.schema().classes()) {
      COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                             restored.ClassTable(cls.name));
      out->class_flushed_rows_.push_back(table->num_rows());
    }
    for (const auto& assoc : restored.schema().associations()) {
      COBRA_ASSIGN_OR_RETURN(const storage::Table* table,
                             restored.AssociationTable(assoc.name));
      out->assoc_flushed_rows_.push_back(table->num_rows());
    }
    const core::MetaIndex& restored_meta = out->library_->meta_index();
    out->shots_flushed_rows_ = restored_meta.shots().num_rows();
    out->objects_flushed_rows_ = restored_meta.objects().num_rows();
    out->events_flushed_rows_ = restored_meta.events().num_rows();
    out->videos_flushed_ = out->library_->indexed_videos().size();
    out->signatures_flushed_rows_ = out->library_->signatures().num_records();
  }

  // Replay the WAL's intact prefix through the regular mutation paths.
  COBRA_ASSIGN_OR_RETURN(std::vector<seg::WalRecord> records,
                         seg::ReplayWal(JoinPath(dir, out->manifest_.wal)));
  for (const seg::WalRecord& record : records) {
    switch (record.type) {
      case seg::WalRecordType::kAddInterview:
        COBRA_RETURN_NOT_OK(out->library_->AddInterview(
            record.interview_oid, record.interview_text));
        out->pending_.emplace_back(record.interview_oid,
                                   record.interview_text);
        break;
      case seg::WalRecordType::kFinalizeText:
        COBRA_RETURN_NOT_OK(out->library_->FinalizeText());
        break;
      case seg::WalRecordType::kAddVideo:
        COBRA_RETURN_NOT_OK(out->library_->AddVideoDescription(record.video));
        break;
      case seg::WalRecordType::kAddSignatures:
        COBRA_RETURN_NOT_OK(out->library_->AddVideoSignatures(
            record.signature_video, record.signatures));
        break;
    }
  }

  // Drop files the manifest does not reference — orphans of a crashed
  // flush or compaction (half-written .tmp siblings, superseded segments).
  {
    std::unordered_set<std::string> keep(out->manifest_.segments.begin(),
                                         out->manifest_.segments.end());
    keep.insert(kManifestName);
    keep.insert(out->manifest_.wal);
    COBRA_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                           seg::ListDir(dir));
    for (const std::string& entry : entries) {
      if (keep.count(entry) == 0) {
        (void)seg::RemoveFile(JoinPath(dir, entry));
      }
    }
  }

  std::lock_guard<std::mutex> lock(out->manifest_mutex_);
  if (!records.empty()) {
    // Fold the replayed window into a segment immediately so recovery
    // cost never compounds across restarts.
    COBRA_RETURN_NOT_OK(out->FlushLocked(true));
  } else {
    // Nothing replayed: restart the (empty or torn-garbage-only) log.
    COBRA_ASSIGN_OR_RETURN(
        out->wal_, seg::GroupCommitWal::Open(JoinPath(dir, out->manifest_.wal),
                                             options.wal_mode));
  }
  return out;
}

Result<DurableLibrary::StageTicket> DurableLibrary::StageInterview(
    int64_t interview_oid, const std::string& text) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  COBRA_RETURN_NOT_OK(library_->AddInterview(interview_oid, text));
  pending_.emplace_back(interview_oid, text);
  COBRA_ASSIGN_OR_RETURN(uint64_t seq,
                         wal_->StageInterview(interview_oid, text));
  return StageTicket{wal_, seq};
}

Result<DurableLibrary::StageTicket> DurableLibrary::StageFinalizeText() {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  COBRA_RETURN_NOT_OK(library_->FinalizeText());
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, wal_->StageFinalizeText());
  return StageTicket{wal_, seq};
}

Result<DurableLibrary::StageTicket> DurableLibrary::StageVideoDescription(
    const core::VideoDescription& desc) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  COBRA_RETURN_NOT_OK(library_->AddVideoDescription(desc));
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, wal_->StageVideo(desc));
  return StageTicket{wal_, seq};
}

Result<DurableLibrary::StageTicket> DurableLibrary::StageVideoSignatures(
    int64_t video_id, const std::vector<vision::SignatureRecord>& records) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  COBRA_RETURN_NOT_OK(library_->AddVideoSignatures(video_id, records));
  COBRA_ASSIGN_OR_RETURN(uint64_t seq, wal_->StageSignatures(video_id, records));
  return StageTicket{wal_, seq};
}

Status DurableLibrary::WaitDurable(const StageTicket& ticket) {
  if (ticket.wal == nullptr) return Status::OK();
  return ticket.wal->WaitDurable(ticket.seq);
}

Status DurableLibrary::AddInterview(int64_t interview_oid,
                                    const std::string& text) {
  COBRA_ASSIGN_OR_RETURN(StageTicket ticket,
                         StageInterview(interview_oid, text));
  return WaitDurable(ticket);
}

Status DurableLibrary::FinalizeText() {
  COBRA_ASSIGN_OR_RETURN(StageTicket ticket, StageFinalizeText());
  return WaitDurable(ticket);
}

Status DurableLibrary::AddVideoDescription(const core::VideoDescription& desc) {
  COBRA_ASSIGN_OR_RETURN(StageTicket ticket, StageVideoDescription(desc));
  return WaitDurable(ticket);
}

Status DurableLibrary::AddVideoSignatures(
    int64_t video_id, const std::vector<vision::SignatureRecord>& records) {
  COBRA_ASSIGN_OR_RETURN(StageTicket ticket,
                         StageVideoSignatures(video_id, records));
  return WaitDurable(ticket);
}

Status DurableLibrary::Flush() {
  // Exclude writers for the whole fold: every record the delta covers is
  // in memory, and no record can land in the WAL between the segment
  // build and the rotation.
  std::scoped_lock lock(mutate_mutex_, manifest_mutex_);
  return FlushLocked(false);
}

Status DurableLibrary::Compact() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(manifest_mutex_);
    names = manifest_.segments;
  }
  if (names.size() <= 1) return Status::OK();

  // Merge from the immutable files, never the live library — queries and
  // even a concurrent Flush stay untouched until the publish below.
  std::vector<std::unique_ptr<seg::SegmentReader>> inputs;
  std::vector<const seg::SegmentReader*> input_ptrs;
  for (const std::string& name : names) {
    COBRA_ASSIGN_OR_RETURN(
        std::unique_ptr<seg::SegmentReader> reader,
        seg::SegmentReader::Open(JoinPath(dir_, name), options_.verify));
    input_ptrs.push_back(reader.get());
    inputs.push_back(std::move(reader));
  }
  COBRA_ASSIGN_OR_RETURN(seg::RestoredParts parts,
                         seg::RestoreFromSegments(input_ptrs, false));
  COBRA_ASSIGN_OR_RETURN(
      webspace::WebspaceStore store,
      webspace::WebspaceStore::Restore(parts.schema,
                                       std::move(parts.class_tables),
                                       std::move(parts.assoc_tables)));
  COBRA_ASSIGN_OR_RETURN(
      core::MetaIndex meta,
      core::MetaIndex::FromTables(
          std::move(parts.shots), std::move(parts.objects),
          std::move(parts.events),
          static_cast<int64_t>(parts.indexed_videos.size())));
  std::optional<text::CompressedInvertedIndex> compressed;
  if (parts.text.has_value()) {
    COBRA_ASSIGN_OR_RETURN(
        compressed, text::CompressedInvertedIndex::FromIndex(*parts.text));
  }
  seg::LibraryDelta delta;
  delta.index_epoch = parts.index_epoch;
  delta.store = &store;
  delta.class_from_rows.assign(store.schema().classes().size(), 0);
  delta.assoc_from_rows.assign(store.schema().associations().size(), 0);
  delta.meta = &meta;
  delta.new_video_oids = parts.indexed_videos;
  delta.text = parts.text.has_value() ? &*parts.text : nullptr;
  delta.compressed_text = compressed.has_value() ? &*compressed : nullptr;
  if (!parts.text.has_value()) {
    delta.pending_interviews = std::move(parts.pending_interviews);
  }
  // Chunks borrow from `inputs`, which stay alive through WriteSegment.
  delta.signature_chunks = parts.signature_chunks;

  std::string seg_name;
  {
    std::lock_guard<std::mutex> lock(manifest_mutex_);
    seg_name = SegmentFileName(manifest_.next_file_number++);
  }
  COBRA_RETURN_NOT_OK(
      seg::WriteSegment(delta, JoinPath(dir_, seg_name), options_.flush_pool));
  COBRA_ASSIGN_OR_RETURN(
      std::unique_ptr<seg::SegmentReader> merged,
      seg::SegmentReader::Open(JoinPath(dir_, seg_name), options_.verify));

  {
    std::lock_guard<std::mutex> lock(manifest_mutex_);
    // The merged prefix is immutable and only one compaction runs at a
    // time, so manifest_.segments still starts with `names`; anything a
    // concurrent Flush appended after it is preserved.
    std::vector<std::string> chain;
    chain.push_back(seg_name);
    chain.insert(chain.end(), manifest_.segments.begin() + names.size(),
                 manifest_.segments.end());
    manifest_.segments = std::move(chain);
    COBRA_RETURN_NOT_OK(WriteManifestLocked());
    // Retire the merged readers instead of destroying them: the live
    // text index's zero-copy spans may point into one of their mappings.
    for (size_t i = 0; i < names.size(); ++i) {
      retired_.push_back(std::move(readers_[i]));
    }
    readers_.erase(readers_.begin(),
                   readers_.begin() + static_cast<ptrdiff_t>(names.size()));
    readers_.insert(readers_.begin(), std::move(merged));
  }
  // Unlink the merged inputs; retired mappings remain valid (POSIX).
  for (const std::string& name : names) {
    (void)seg::RemoveFile(JoinPath(dir_, name));
  }
  return Status::OK();
}

Status DurableLibrary::CompactAsync(util::ThreadPool* pool) {
  if (compact_group_.has_value()) {
    return Status::FailedPrecondition(
        "a compaction is already running; WaitForCompaction first");
  }
  {
    std::lock_guard<std::mutex> lock(compact_status_mutex_);
    compact_status_ = Status::OK();
  }
  compact_group_.emplace(pool);
  compact_group_->Run([this] {
    Status status = Compact();
    std::lock_guard<std::mutex> lock(compact_status_mutex_);
    compact_status_ = std::move(status);
  });
  return Status::OK();
}

Status DurableLibrary::WaitForCompaction() {
  if (!compact_group_.has_value()) return Status::OK();
  compact_group_->Wait();
  compact_group_.reset();
  std::lock_guard<std::mutex> lock(compact_status_mutex_);
  return compact_status_;
}

int64_t DurableLibrary::wal_sync_calls() const {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  return wal_->sync_calls();
}

int64_t DurableLibrary::wal_records_committed() const {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  return wal_->records_committed();
}

size_t DurableLibrary::num_segments() const {
  std::lock_guard<std::mutex> lock(manifest_mutex_);
  return manifest_.segments.size();
}

Result<text::CompressedInvertedIndex> DurableLibrary::LoadCompressedText()
    const {
  std::lock_guard<std::mutex> lock(manifest_mutex_);
  for (auto it = readers_.rbegin(); it != readers_.rend(); ++it) {
    if ((*it)->has_section(seg::SectionId::kTextCompressed)) {
      return (*it)->LoadCompressedText(options_.copy_text);
    }
  }
  return Status::NotFound("no segment carries a compressed text snapshot");
}

}  // namespace cobra::engine
