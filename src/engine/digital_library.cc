#include "engine/digital_library.h"

#include <algorithm>
#include <set>

#include "engine/planner/planner.h"
#include "util/strings.h"

namespace cobra::engine {

bool SceneHitLess(const SceneHit& a, const SceneHit& b) {
  if (a.text_score != b.text_score) return a.text_score > b.text_score;
  // Most-similar first; hits of non-similar queries all carry -1 and fall
  // through unchanged.
  if (a.similarity != b.similarity) return a.similarity < b.similarity;
  if (a.video_oid != b.video_oid) return a.video_oid < b.video_oid;
  if (a.range.begin != b.range.begin) return a.range.begin < b.range.begin;
  if (a.range.end != b.range.end) return a.range.end < b.range.end;
  if (a.player_oid != b.player_oid) return a.player_oid < b.player_oid;
  return a.event < b.event;
}

DigitalLibrary::DigitalLibrary(webspace::WebspaceStore store)
    : store_(std::move(store)),
      meta_index_(core::MetaIndex::Create().TakeValue()) {}

Result<std::unique_ptr<DigitalLibrary>> DigitalLibrary::Create(
    webspace::WebspaceStore store) {
  for (const char* cls : {"Player", "Tournament", "Interview", "Video"}) {
    if (!store.schema().HasClass(cls)) {
      return Status::InvalidArgument(
          StringFormat("store lacks tournament class '%s'", cls));
    }
  }
  return std::unique_ptr<DigitalLibrary>(new DigitalLibrary(std::move(store)));
}

Result<std::unique_ptr<DigitalLibrary>> DigitalLibrary::CreateFromParts(
    webspace::WebspaceStore store, text::InvertedIndex interviews,
    core::MetaIndex meta_index, std::vector<int64_t> indexed_videos,
    int64_t index_epoch,
    std::vector<std::pair<const vision::SignatureRecord*, size_t>>
        signature_chunks) {
  COBRA_ASSIGN_OR_RETURN(std::unique_ptr<DigitalLibrary> library,
                         Create(std::move(store)));
  if (index_epoch < 0) {
    return Status::InvalidArgument("negative index epoch");
  }
  library->interviews_ = std::move(interviews);
  library->meta_index_ = std::move(meta_index);
  library->indexed_videos_ = std::move(indexed_videos);
  library->index_epoch_ = index_epoch;
  for (const auto& [records, count] : signature_chunks) {
    library->signatures_.AddBaseChunk(records, count);
  }
  return library;
}

Status DigitalLibrary::AddInterview(int64_t interview_oid,
                                    const std::string& text) {
  return interviews_.AddText(interview_oid, text);
}

Status DigitalLibrary::FinalizeText() {
  COBRA_RETURN_NOT_OK(interviews_.Finalize());
  ++index_epoch_;
  return Status::OK();
}

Status DigitalLibrary::AddVideoDescription(const core::VideoDescription& desc) {
  COBRA_RETURN_NOT_OK(meta_index_.AddVideo(desc));
  indexed_videos_.push_back(desc.video_id());
  ++index_epoch_;
  return Status::OK();
}

Status DigitalLibrary::AddVideoSignatures(
    int64_t video_id, const std::vector<vision::SignatureRecord>& records) {
  for (const vision::SignatureRecord& rec : records) {
    if (rec.video_id != video_id) {
      return Status::InvalidArgument(StringFormat(
          "signature record for video %lld added under video %lld",
          static_cast<long long>(rec.video_id),
          static_cast<long long>(video_id)));
    }
  }
  signatures_.AddRecords(records.data(), records.size());
  ++index_epoch_;
  return Status::OK();
}

Status DigitalLibrary::SetSignatureConfig(
    const similarity::SignatureIndexConfig& config) {
  COBRA_RETURN_NOT_OK(signatures_.SetConfig(config));
  ++index_epoch_;
  return Status::OK();
}

Result<vision::ShotSignature> ResolveProbeSignature(
    const similarity::SignatureIndex& index, const CombinedQuery& query) {
  const vision::SignatureRecord* rec =
      index.FindShot(query.similar_video, query.similar_frame);
  if (rec == nullptr) {
    return Status::NotFound(StringFormat(
        "no signature indexed for video %lld frame %lld",
        static_cast<long long>(query.similar_video),
        static_cast<long long>(query.similar_frame)));
  }
  return rec->sig;
}

size_t EffectiveSimilarK(const similarity::SignatureIndex& index,
                         const CombinedQuery& query) {
  return query.similar_k > 0 ? query.similar_k : index.config().rerank_k;
}

SimilarNeighbors BuildSimilarNeighbors(
    const std::vector<similarity::Neighbor>& candidates,
    const CombinedQuery& query, size_t k) {
  SimilarNeighbors by_video;
  size_t kept = 0;
  for (const similarity::Neighbor& nb : candidates) {
    if (kept == k) break;
    // The probe's own shot is trivially distance 0; it is not an answer.
    if (nb.record->video_id == query.similar_video &&
        nb.record->begin <= query.similar_frame &&
        query.similar_frame <= nb.record->end) {
      continue;
    }
    by_video[nb.record->video_id].push_back(
        SimilarShot{FrameInterval{nb.record->begin, nb.record->end},
                    similarity::DistanceKey(nb.hamming, nb.l2sq)});
    ++kept;
  }
  return by_video;
}

Result<SimilarNeighbors> SimilarStage(const similarity::SignatureIndex& index,
                                      const CombinedQuery& query,
                                      similarity::SimilaritySearchStats* stats) {
  COBRA_ASSIGN_OR_RETURN(vision::ShotSignature sig,
                         ResolveProbeSignature(index, query));
  const size_t k = EffectiveSimilarK(index, query);
  // k + 1 so the probe's own shot (distance 0, excluded below) never
  // displaces a real neighbor.
  return BuildSimilarNeighbors(index.SearchSimilar(sig, k + 1, stats), query,
                               k);
}

Result<std::vector<int64_t>> DigitalLibrary::ConceptPlayers(
    const CombinedQuery& query) const {
  webspace::ClassSelection selection{"Player", query.player_predicates};
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> players,
                         webspace::SelectObjects(store_, selection));
  if (!query.require_champion && query.won_year < 0) return players;

  webspace::ClassSelection tournaments{"Tournament", {}};
  if (query.won_year >= 0) {
    tournaments.predicates.push_back(
        {"year", storage::CompareOp::kEq, query.won_year});
  }
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> tournament_oids,
                         webspace::SelectObjects(store_, tournaments));
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> champions,
                         store_.TraverseReverse("won", tournament_oids));
  std::set<int64_t> champion_set(champions.begin(), champions.end());
  std::vector<int64_t> out;
  for (int64_t p : players) {
    if (champion_set.count(p)) out.push_back(p);
  }
  return out;
}

Result<std::map<int64_t, double>> DigitalLibrary::TextPlayers(
    const std::string& text, size_t top_k, text::SearchStats* stats) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<text::SearchHit> hits,
                         interviews_.SearchTopN(text, top_k, stats));
  std::map<int64_t, double> player_scores;
  for (const text::SearchHit& hit : hits) {
    COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> players,
                           store_.TraverseReverse("interviewed_in", {hit.doc_id}));
    for (int64_t p : players) {
      auto [it, inserted] = player_scores.emplace(p, hit.score);
      if (!inserted) it->second = std::max(it->second, hit.score);
    }
  }
  return player_scores;
}

Result<std::vector<SceneHit>> DigitalLibrary::Search(
    const CombinedQuery& query, text::SearchStats* stats,
    planner::PlanExplain* explain,
    const std::map<int64_t, double>* text_seed,
    const SimilarSeed* similar_seed) const {
  if (!planner_enabled_) {
    if (explain) *explain = planner::PlanExplain{};
    return SearchFixedOrder(query, stats, text_seed, similar_seed);
  }
  // Lazy-validation parity: the fixed order never checks a predicate past
  // an empty selection (storage::SelectAll stops refining), so whether a
  // malformed predicate errors depends on actual row sets. Those rare
  // queries go to the reference path verbatim.
  if (auto players = store_.ClassTable("Player"); players.ok()) {
    for (const storage::Predicate& pred : query.player_predicates) {
      if (!storage::ValidatePredicate(*players.value(), pred).ok()) {
        if (explain) *explain = planner::PlanExplain{};
        return SearchFixedOrder(query, stats, text_seed, similar_seed);
      }
    }
  }
  planner::LibraryView view{&store_, &interviews_, &meta_index_,
                            &indexed_videos_, &signatures_};
  planner::PlanExplain local;
  return planner::SearchPlanned(view, query, stats,
                                explain ? explain : &local, text_seed,
                                similar_seed);
}

Result<planner::PlanExplain> DigitalLibrary::ExplainSearch(
    const CombinedQuery& query) const {
  planner::LibraryView view{&store_, &interviews_, &meta_index_,
                            &indexed_videos_, &signatures_};
  planner::PlanExplain explain;
  COBRA_RETURN_NOT_OK(
      planner::SearchPlanned(view, query, nullptr, &explain).status());
  return explain;
}

Result<std::vector<SceneHit>> DigitalLibrary::SearchFixedOrder(
    const CombinedQuery& query, text::SearchStats* stats,
    const std::map<int64_t, double>* text_seed,
    const SimilarSeed* similar_seed) const {
  if (stats) *stats = text::SearchStats{};
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> players, ConceptPlayers(query));

  std::map<int64_t, double> text_scores;
  if (!query.text.empty()) {
    if (text_seed) {
      // Error parity with the unseeded path: a zero-budget probe surfaces
      // the same not-finalized / malformed-query errors SearchTopN would.
      COBRA_RETURN_NOT_OK(interviews_.SearchTopN(query.text, 0).status());
      text_scores = *text_seed;
    } else {
      COBRA_ASSIGN_OR_RETURN(
          text_scores, TextPlayers(query.text, query.text_top_k, stats));
    }
    std::vector<int64_t> filtered;
    for (int64_t p : players) {
      if (text_scores.count(p)) filtered.push_back(p);
    }
    players = std::move(filtered);
  }

  // The similar stage runs unconditionally after the text stage (stage
  // order: concept -> text -> similar -> event) so an unresolvable probe
  // surfaces its NotFound even when the player set is already empty —
  // error parity the planner and serving tier replicate. A frontend seed
  // means the probe was already resolved globally; the local (partition-
  // scoped) index is not consulted at all.
  const bool has_similar = query.similar_video >= 0;
  SimilarNeighbors similar;
  if (has_similar) {
    if (similar_seed) {
      similar = similar_seed->neighbors;
    } else {
      COBRA_ASSIGN_OR_RETURN(similar, SimilarStage(signatures_, query));
    }
  }

  std::vector<SceneHit> out;
  std::set<int64_t> indexed(indexed_videos_.begin(), indexed_videos_.end());
  for (int64_t player : players) {
    COBRA_ASSIGN_OR_RETURN(storage::Value name_value,
                           store_.GetAttribute("Player", player, "name"));
    std::string name = std::get<std::string>(name_value);
    double text_score =
        text_scores.count(player) ? text_scores.at(player) : 0.0;

    if (query.event.empty() && !has_similar) {
      SceneHit hit;
      hit.player_oid = player;
      hit.player_name = name;
      hit.text_score = text_score;
      out.push_back(std::move(hit));
      continue;
    }

    COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> videos,
                           store_.Traverse("plays_in", {player}));
    for (int64_t video : videos) {
      if (!indexed.count(video)) continue;
      const std::vector<SimilarShot>* neighbors = nullptr;
      if (has_similar) {
        auto it = similar.find(video);
        if (it == similar.end()) continue;
        neighbors = &it->second;
      }

      if (query.event.empty()) {
        // Similar-only content condition: every neighbor shot of a video
        // the player plays in is an answer scene.
        for (const SimilarShot& shot : *neighbors) {
          SceneHit hit;
          hit.player_oid = player;
          hit.player_name = name;
          hit.video_oid = video;
          hit.range = shot.range;
          hit.text_score = text_score;
          hit.similarity = shot.distance;
          out.push_back(std::move(hit));
        }
        continue;
      }

      COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> roles,
                             store_.Roles("plays_in", player, video));
      std::set<int64_t> role_set(roles.begin(), roles.end());
      COBRA_ASSIGN_OR_RETURN(std::vector<core::Scene> scenes,
                             meta_index_.FindScenes(query.event, video));
      for (const core::Scene& scene : scenes) {
        // A scene matches if it shows the player's court side, or if it is
        // court-level (player < 0: serves, rallies involve both players).
        if (scene.player >= 0 && !role_set.count(scene.player)) continue;
        // Event + similar: the scene must overlap a neighbor shot of the
        // same video; it scores the best (smallest) overlapping key.
        double similarity = -1.0;
        if (neighbors) {
          bool overlapped = false;
          for (const SimilarShot& shot : *neighbors) {
            if (!scene.range.Overlaps(shot.range)) continue;
            if (!overlapped || shot.distance < similarity) {
              similarity = shot.distance;
            }
            overlapped = true;
          }
          if (!overlapped) continue;
        }
        SceneHit hit;
        hit.player_oid = player;
        hit.player_name = name;
        hit.video_oid = video;
        hit.range = scene.range;
        hit.event = scene.event;
        hit.text_score = text_score;
        hit.similarity = similarity;
        out.push_back(std::move(hit));
      }
    }
  }
  // Total deterministic order: relevance first, then every remaining field
  // as a tie-break so equal-score hits never depend on traversal order.
  std::sort(out.begin(), out.end(), SceneHitLess);
  return out;
}

Result<std::vector<SceneHit>> DigitalLibrary::SearchKeywordOnly(
    const std::string& text, size_t top_k, text::SearchStats* stats) const {
  if (stats) *stats = text::SearchStats{};
  COBRA_ASSIGN_OR_RETURN(auto player_scores, TextPlayers(text, top_k, stats));
  std::vector<SceneHit> out;
  for (const auto& [player, score] : player_scores) {
    SceneHit hit;
    hit.player_oid = player;
    COBRA_ASSIGN_OR_RETURN(storage::Value name,
                           store_.GetAttribute("Player", player, "name"));
    hit.player_name = std::get<std::string>(name);
    hit.text_score = score;
    out.push_back(std::move(hit));
  }
  std::sort(out.begin(), out.end(), [](const SceneHit& a, const SceneHit& b) {
    if (a.text_score != b.text_score) return a.text_score > b.text_score;
    return a.player_oid < b.player_oid;
  });
  return out;
}

Result<std::vector<storage::GroupRow>> DigitalLibrary::EventStatistics() const {
  return storage::GroupBy(meta_index_.events(), "name",
                          storage::AggregateOp::kCount);
}

Result<std::vector<std::pair<std::string, int64_t>>>
DigitalLibrary::ScenesPerPlayer(const std::string& event) const {
  COBRA_ASSIGN_OR_RETURN(const storage::Table* players,
                         store_.ClassTable("Player"));
  std::vector<std::pair<std::string, int64_t>> out;
  std::set<int64_t> indexed(indexed_videos_.begin(), indexed_videos_.end());
  COBRA_ASSIGN_OR_RETURN(size_t name_col, players->ColumnIndex("name"));
  const auto& oids = players->IntColumn(0);
  const auto& names = players->StringColumn(name_col);
  for (int64_t row = 0; row < players->num_rows(); ++row) {
    const int64_t oid = oids[static_cast<size_t>(row)];
    std::string name = names[static_cast<size_t>(row)];
    int64_t scenes = 0;
    COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> videos,
                           store_.Traverse("plays_in", {oid}));
    for (int64_t video : videos) {
      if (!indexed.count(video)) continue;
      COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> roles,
                             store_.Roles("plays_in", oid, video));
      std::set<int64_t> role_set(roles.begin(), roles.end());
      COBRA_ASSIGN_OR_RETURN(std::vector<core::Scene> found,
                             meta_index_.FindScenes(event, video));
      for (const core::Scene& scene : found) {
        if (scene.player < 0 || role_set.count(scene.player)) ++scenes;
      }
    }
    if (scenes > 0) out.emplace_back(std::move(name), scenes);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace cobra::engine
