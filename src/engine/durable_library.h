#pragma once

/// \file durable_library.h
/// Durable persistence for the DigitalLibrary (DESIGN.md §4h).
///
/// A DurableLibrary wraps a DigitalLibrary with an on-disk directory:
///
///   MANIFEST        current segment chain + active WAL (atomic rename)
///   seg-NNNNNN.cseg immutable segments (storage/segment), applied in order
///   wal-NNNNNN.wal  write-ahead log of mutations since the last flush
///
/// Mutations apply in memory and append to the WAL; Flush() folds the
/// window into a new delta segment and starts a fresh WAL; Open() restores
/// the segment chain (text postings mapped zero-copy), replays the WAL's
/// intact prefix, and — when the WAL held anything — immediately flushes so
/// recovery cost stays bounded by one window. Compact() merges the segment
/// *files* into one full snapshot off-lock and publishes it atomically, so
/// queries against the live library never block; superseded mappings are
/// retired but kept alive because a zero-copy restored text index may
/// still point into them.
///
/// Concurrency: queries (through library()) may run concurrently with
/// CompactAsync(). Mutations and Flush are internally thread-safe (any
/// number of writer threads; DESIGN.md §4k): the in-memory apply and the
/// WAL staging happen atomically under one mutation mutex, and the
/// durability wait happens outside it, so concurrent writers' records
/// share WAL group commits (one fdatasync per group, each call still
/// durable on return). Queries concurrent with *mutations* follow the
/// DigitalLibrary contract (not safe) — the serving tier's ingest path
/// double-buffers and publishes through ReloadShard instead.

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/digital_library.h"
#include "storage/segment/segment.h"
#include "storage/segment/wal.h"
#include "util/thread_pool.h"

namespace cobra::engine {

class DurableLibrary {
 public:
  struct Options {
    /// How WAL appends reach stable storage. kGroupCommit (default) keeps
    /// the durable-on-return contract of kSyncEachRecord while batching
    /// concurrent writers into one fdatasync per group; kBuffered trades
    /// power-loss durability for throughput — the E12/E15 benchmarks
    /// measure all three.
    storage::segment::WalMode wal_mode =
        storage::segment::WalMode::kGroupCommit;
    /// When set, Flush builds the segment's independent sections
    /// (webspace delta, meta-index deltas, text snapshot, signatures) in
    /// parallel on this pool. Output bytes are identical either way.
    util::ThreadPool* flush_pool = nullptr;
    /// Restore the text index by copying postings onto the heap instead of
    /// viewing the mapped segment (the benchmark's control arm).
    bool copy_text = false;
    /// Section checksum verification on open.
    storage::segment::SegmentReader::Verify verify =
        storage::segment::SegmentReader::Verify::kFull;
  };

  /// Creates a fresh library over `store` in (empty or absent) `dir` and
  /// persists segment 0 — the full webspace snapshot.
  static Result<std::unique_ptr<DurableLibrary>> Create(
      const std::string& dir, webspace::WebspaceStore store,
      const Options& options);
  static Result<std::unique_ptr<DurableLibrary>> Create(
      const std::string& dir, webspace::WebspaceStore store);

  /// Restores a library from `dir`: segment chain, then WAL replay.
  /// Unreferenced files (orphans of a crashed flush/compaction) are
  /// removed.
  static Result<std::unique_ptr<DurableLibrary>> Open(
      const std::string& dir, const Options& options);
  static Result<std::unique_ptr<DurableLibrary>> Open(const std::string& dir);

  /// The live library. Queries only — route mutations through the
  /// durable wrappers below so they hit the WAL.
  const DigitalLibrary& library() const { return *library_; }

  /// Durable mutations (thread-safe; durable on return under the open
  /// WAL mode). Each is Stage…() + WaitDurable().
  Status AddInterview(int64_t interview_oid, const std::string& text);
  Status FinalizeText();
  Status AddVideoDescription(const core::VideoDescription& desc);
  Status AddVideoSignatures(int64_t video_id,
                            const std::vector<vision::SignatureRecord>& records);

  /// A staged (applied + WAL-framed, not yet durable) mutation. Tickets
  /// keep the WAL generation they were staged into alive, so waiting on a
  /// ticket across a concurrent Flush is safe: the rotation only happens
  /// after the flushed segment made the record durable by other means.
  struct StageTicket {
    std::shared_ptr<storage::segment::GroupCommitWal> wal;
    uint64_t seq = 0;
  };

  /// Two-phase mutation surface for pipelined ingest (engine/ingest,
  /// DESIGN.md §4k): Stage…() applies the mutation in memory and frames
  /// it into the WAL (fast, serialized internally); WaitDurable() blocks
  /// until the record is on stable storage. Overlapping many staged
  /// mutations before waiting is what lets the WAL batch them into one
  /// group commit.
  Result<StageTicket> StageInterview(int64_t interview_oid,
                                     const std::string& text);
  Result<StageTicket> StageFinalizeText();
  Result<StageTicket> StageVideoDescription(const core::VideoDescription& desc);
  Result<StageTicket> StageVideoSignatures(
      int64_t video_id, const std::vector<vision::SignatureRecord>& records);
  Status WaitDurable(const StageTicket& ticket);

  /// Folds everything since the last flush into a new segment and starts
  /// a fresh WAL. After Flush returns, the window is durable without the
  /// log.
  Status Flush();

  /// Merges the current segment files into one full snapshot. Reads only
  /// the immutable files (never the live library), so queries proceed
  /// concurrently; the new chain is published atomically under the
  /// manifest lock. Segments flushed while compaction ran are preserved.
  Status Compact();

  /// Runs Compact() on `pool`; at most one compaction at a time.
  Status CompactAsync(util::ThreadPool* pool);
  /// Waits for a CompactAsync and returns its status (OK when none ran).
  Status WaitForCompaction();

  size_t num_segments() const;
  /// WAL telemetry since the last rotation: fdatasync calls and records
  /// committed — the group-size signal the E15 bench reports
  /// (records/sync ≈ achieved commit-group size).
  int64_t wal_sync_calls() const;
  int64_t wal_records_committed() const;
  /// The compressed text snapshot of the newest segment carrying one, in
  /// the open mode's flavor (zero-copy views unless copy_text). Absent
  /// until a flush persisted the finalized index.
  Result<text::CompressedInvertedIndex> LoadCompressedText() const;

 private:
  DurableLibrary() = default;

  struct Manifest {
    uint64_t next_file_number = 1;
    std::vector<std::string> segments;
    std::string wal;
  };

  static Result<Manifest> ReadManifest(const std::string& dir);
  Status WriteManifestLocked();
  Status FlushLocked(bool flush_on_open);
  storage::segment::LibraryDelta BuildDeltaLocked(
      const text::InvertedIndex* text,
      const text::CompressedInvertedIndex* compressed) const;

  std::string dir_;
  Options options_;
  std::unique_ptr<DigitalLibrary> library_;

  /// Guards the manifest state (segment chain, readers, file numbering)
  /// against concurrent publication by CompactAsync.
  mutable std::mutex manifest_mutex_;
  Manifest manifest_;
  std::vector<std::unique_ptr<storage::segment::SegmentReader>> readers_;
  /// Superseded by compaction but possibly still backing the live text
  /// index's zero-copy spans; freed only on destruction.
  std::vector<std::unique_ptr<storage::segment::SegmentReader>> retired_;

  /// Serializes the in-memory apply + WAL staging of every mutation (and
  /// excludes them during Flush). Ordered before manifest_mutex_ when both
  /// are taken.
  mutable std::mutex mutate_mutex_;
  std::shared_ptr<storage::segment::GroupCommitWal> wal_;

  // Flush watermarks: rows already persisted by the segment chain.
  std::vector<int64_t> class_flushed_rows_;
  std::vector<int64_t> assoc_flushed_rows_;
  int64_t shots_flushed_rows_ = 0;
  int64_t objects_flushed_rows_ = 0;
  int64_t events_flushed_rows_ = 0;
  size_t videos_flushed_ = 0;
  size_t signatures_flushed_rows_ = 0;
  bool text_persisted_ = false;
  /// Interviews added (pre-finalize) since the last flush.
  std::vector<std::pair<int64_t, std::string>> pending_;

  std::optional<util::TaskGroup> compact_group_;
  std::mutex compact_status_mutex_;
  Status compact_status_;
};

inline Result<std::unique_ptr<DurableLibrary>> DurableLibrary::Create(
    const std::string& dir, webspace::WebspaceStore store) {
  return Create(dir, std::move(store), Options());
}

inline Result<std::unique_ptr<DurableLibrary>> DurableLibrary::Open(
    const std::string& dir) {
  return Open(dir, Options());
}

}  // namespace cobra::engine
