#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "storage/table.h"

namespace cobra::engine {

namespace {

/// Length-delimited append: two keys are equal iff their field sequences
/// are equal, regardless of what bytes the fields contain.
void AppendField(const std::string& field, std::string* key) {
  key->append(std::to_string(field.size()));
  key->push_back(':');
  key->append(field);
}

void AppendInt(int64_t value, std::string* key) {
  AppendField(std::to_string(value), key);
}

}  // namespace

std::string QueryEngine::NormalizedKey(const CombinedQuery& query) {
  std::vector<const storage::Predicate*> preds;
  preds.reserve(query.player_predicates.size());
  for (const storage::Predicate& p : query.player_predicates) {
    preds.push_back(&p);
  }
  std::sort(preds.begin(), preds.end(),
            [](const storage::Predicate* a, const storage::Predicate* b) {
              if (a->column != b->column) return a->column < b->column;
              if (a->op != b->op) {
                return static_cast<int>(a->op) < static_cast<int>(b->op);
              }
              if (a->literal.index() != b->literal.index()) {
                return a->literal.index() < b->literal.index();
              }
              return storage::ValueToString(a->literal) <
                     storage::ValueToString(b->literal);
            });

  std::string key;
  AppendField("combined", &key);
  AppendInt(static_cast<int64_t>(preds.size()), &key);
  for (const storage::Predicate* p : preds) {
    AppendField(p->column, &key);
    AppendInt(static_cast<int64_t>(p->op), &key);
    AppendInt(static_cast<int64_t>(p->literal.index()), &key);
    AppendField(storage::ValueToString(p->literal), &key);
  }
  AppendInt(query.require_champion ? 1 : 0, &key);
  AppendInt(query.won_year, &key);
  AppendField(query.text, &key);
  AppendInt(static_cast<int64_t>(query.text_top_k), &key);
  AppendField(query.event, &key);
  AppendInt(query.similar_video, &key);
  AppendInt(query.similar_frame, &key);
  AppendInt(static_cast<int64_t>(query.similar_k), &key);
  return key;
}

QueryEngine::QueryEngine(const DigitalLibrary* library, QueryEngineConfig config)
    : library_(library),
      config_(config),
      pool_(config.num_threads) {
  size_t shards = std::max<size_t>(1, config_.cache_shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryEngine::Shard& QueryEngine::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool QueryEngine::CacheGet(const std::string& key, int64_t epoch,
                           std::vector<SceneHit>* hits) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  if (it->second->second.epoch != epoch) {
    // Stale: the library changed since this entry was computed.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *hits = it->second->second.hits;
  return true;
}

void QueryEngine::CachePut(const std::string& key, int64_t epoch,
                           const std::vector<SceneHit>& hits) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = CacheEntry{epoch, hits};
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, CacheEntry{epoch, hits});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > config_.cache_capacity_per_shard) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
}

template <typename Eval>
Result<std::vector<SceneHit>> QueryEngine::CachedEval(const std::string& key,
                                                      const Eval& eval) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  int64_t epoch = library_->index_epoch();
  if (config_.enable_cache) {
    std::vector<SceneHit> cached;
    if (CacheGet(key, epoch, &cached)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  text::SearchStats search_stats;
  Result<std::vector<SceneHit>> result = eval(&search_stats);
  if (!result.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return result;  // errors are never cached
  }
  postings_scanned_.fetch_add(search_stats.postings_scanned,
                              std::memory_order_relaxed);
  blocks_skipped_.fetch_add(search_stats.blocks_skipped,
                            std::memory_order_relaxed);
  if (config_.enable_cache) CachePut(key, epoch, result.value());
  return result;
}

Result<std::vector<SceneHit>> QueryEngine::Search(
    const CombinedQuery& query, const std::map<int64_t, double>* text_seed,
    const SimilarSeed* similar_seed) {
  return CachedEval(NormalizedKey(query), [&](text::SearchStats* stats) {
    planner::PlanExplain explain;
    Result<std::vector<SceneHit>> result =
        library_->Search(query, stats, &explain, text_seed, similar_seed);
    if (result.ok() && explain.used_planner) {
      planner_plans_.fetch_add(1, std::memory_order_relaxed);
      if (explain.short_circuited) {
        planner_short_circuits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return result;
  });
}

Result<std::string> QueryEngine::Explain(const CombinedQuery& query) const {
  COBRA_ASSIGN_OR_RETURN(planner::PlanExplain explain,
                         library_->ExplainSearch(query));
  return explain.ToString();
}

Result<std::vector<SceneHit>> QueryEngine::SearchKeywordOnly(
    const std::string& text, size_t top_k) {
  std::string key;
  AppendField("keyword", &key);
  AppendField(text, &key);
  AppendInt(static_cast<int64_t>(top_k), &key);
  return CachedEval(key, [&](text::SearchStats* stats) {
    return library_->SearchKeywordOnly(text, top_k, stats);
  });
}

std::vector<Result<std::vector<SceneHit>>> QueryEngine::SearchBatch(
    const std::vector<CombinedQuery>& queries, double deadline_ms) {
  // Result<T> has no default constructor; pre-fill with a placeholder that
  // every task overwrites (slot i is written only by task i).
  std::vector<Result<std::vector<SceneHit>>> results(
      queries.size(),
      Result<std::vector<SceneHit>>(Status::Internal("query not evaluated")));
  if (deadline_ms < 0.0) deadline_ms = config_.deadline_ms;
  const bool has_deadline = deadline_ms > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(deadline_ms));
  util::TaskGroup group(&pool_);
  for (size_t i = 0; i < queries.size(); ++i) {
    group.Run([this, &queries, &results, i, has_deadline, deadline] {
      // The pool cannot abort a running evaluation; shedding not-yet-started
      // queries at the deadline is what bounds the batch's tail.
      if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        results[i] = Status::DeadlineExceeded("batch deadline expired");
        return;
      }
      results[i] = Search(queries[i]);
    });
  }
  group.Wait();
  return results;
}

QueryEngineStats QueryEngine::stats() const {
  QueryEngineStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.postings_scanned = postings_scanned_.load(std::memory_order_relaxed);
  out.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
  out.planner_plans = planner_plans_.load(std::memory_order_relaxed);
  out.planner_short_circuits =
      planner_short_circuits_.load(std::memory_order_relaxed);
  out.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cobra::engine
