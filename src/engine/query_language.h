#pragma once

/// \file query_language.h
/// The demo's query front-end: a small textual language for combined
/// concept + content + text queries, so the paper's §2 example can be typed
/// as one line:
///
///   player.hand = left AND player.gender = female AND won = any
///     AND event = net_play AND text ~ "approaching the net"
///
/// Conditions (joined by AND, case-insensitive keyword):
///   player.<attr> <op> <value>   attribute predicate; op in = != < <= > >=
///                                (numeric literals -> int predicates)
///   won = any                    the player won some tournament
///   won.year = <N>               the player won the tournament of year N
///   event = <name>               content condition on the video meta-index
///   text ~ "<words>" | <word>    interview full-text condition
///   similar_to = <video>:<frame> query-by-example: scenes perceptually
///                                similar to the shot of video <video>
///                                containing frame <frame> (DESIGN.md §4j)
///   similar_to.k = <N>           neighbor count for similar_to (default:
///                                the signature index's rerank_k)

#include <string>

#include "engine/digital_library.h"
#include "util/status.h"

namespace cobra::engine {

/// Parses the query language into a CombinedQuery.
Result<CombinedQuery> ParseQuery(const std::string& input);

/// Renders a CombinedQuery back to the query language (diagnostics).
std::string FormatQuery(const CombinedQuery& query);

}  // namespace cobra::engine
