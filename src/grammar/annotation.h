#pragma once

/// \file annotation.h
/// The meta-data tokens that flow through the Feature Detector Engine.
///
/// In Acoi terms these are the (non-)terminals a detector emits while the
/// FDE "parses" a multimedia object: each annotation binds a grammar symbol
/// to a temporal extent of the video and carries named attributes.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/geometry.h"
#include "util/status.h"

namespace cobra::grammar {

/// Attribute value: the scalar types the meta-index stores.
using MetaValue = std::variant<int64_t, double, std::string>;

/// Renders a MetaValue for reports and the meta-index loader.
std::string MetaValueToString(const MetaValue& value);

/// One token of video meta-data produced by a detector.
struct Annotation {
  std::string symbol;            ///< grammar symbol this annotation instantiates
  FrameInterval range;           ///< temporal extent in video frames
  std::map<std::string, MetaValue> attrs;

  Annotation() = default;
  Annotation(std::string sym, FrameInterval r)
      : symbol(std::move(sym)), range(r) {}

  /// Typed attribute accessors; return false / default when missing or of
  /// the wrong type.
  bool GetInt(const std::string& key, int64_t* out) const;
  bool GetDouble(const std::string& key, double* out) const;
  bool GetString(const std::string& key, std::string* out) const;

  int64_t IntOr(const std::string& key, int64_t fallback) const;
  double DoubleOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, std::string fallback) const;

  Annotation& Set(const std::string& key, MetaValue value) {
    attrs[key] = std::move(value);
    return *this;
  }
};

}  // namespace cobra::grammar
