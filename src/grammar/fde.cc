#include "grammar/fde.h"

#include <algorithm>

#include "media/block_codec.h"
#include "media/prefetch.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "vision/frame_feature_cache.h"

namespace cobra::grammar {

const std::vector<Annotation>& DetectionContext::Of(
    const std::string& symbol) const {
  static const std::vector<Annotation> kEmpty;
  auto it = blackboard_->find(symbol);
  return it == blackboard_->end() ? kEmpty : it->second;
}

int64_t FdeRunReport::TotalAnnotations() const {
  int64_t n = 0;
  for (const DetectorRunStats& d : detectors) n += d.annotations_out;
  return n;
}

std::string FdeRunReport::ToString() const {
  std::string out = "FDE run:\n";
  for (const DetectorRunStats& d : detectors) {
    out += StringFormat("  %-16s %6lld annotations %8.2f ms%s\n",
                        d.symbol.c_str(),
                        static_cast<long long>(d.annotations_out), d.millis,
                        d.from_cache ? " (cached)" : "");
  }
  for (const WaveRunStats& w : waves) {
    out += StringFormat("  wave %d [%s] %8.2f ms\n", w.wave,
                        JoinStrings(w.symbols, " ").c_str(), w.millis);
  }
  out += StringFormat("  total %.2f ms, %lld annotations\n", total_millis,
                      static_cast<long long>(TotalAnnotations()));
  if (cache_hits + cache_misses > 0) {
    out += StringFormat(
        "  frame cache: %lld hits / %lld misses (%.1f%% hit rate), "
        "%lld evictions, %zu bytes held\n",
        static_cast<long long>(cache_hits),
        static_cast<long long>(cache_misses),
        100.0 * static_cast<double>(cache_hits) /
            static_cast<double>(cache_hits + cache_misses),
        static_cast<long long>(cache_evictions), cache_bytes);
  }
  return out;
}

FeatureDetectorEngine::FeatureDetectorEngine(FeatureGrammar grammar,
                                             FdeConfig config)
    : grammar_(std::move(grammar)), config_(config) {
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
}

FeatureDetectorEngine::~FeatureDetectorEngine() = default;

Status FeatureDetectorEngine::RegisterCommon(const std::string& symbol) {
  if (!grammar_.HasSymbol(symbol)) {
    return Status::NotFound(
        StringFormat("symbol '%s' not in grammar", symbol.c_str()));
  }
  if (symbol == grammar_.start_symbol()) {
    return Status::InvalidArgument(
        StringFormat("start symbol '%s' cannot have a detector", symbol.c_str()));
  }
  if (detectors_.count(symbol) || whitebox_rules_.count(symbol)) {
    return Status::AlreadyExists(
        StringFormat("symbol '%s' already has a detector", symbol.c_str()));
  }
  return Status::OK();
}

Status FeatureDetectorEngine::RegisterDetector(const std::string& symbol,
                                               DetectorFn detector) {
  COBRA_RETURN_NOT_OK(RegisterCommon(symbol));
  detectors_[symbol] = std::move(detector);
  return Status::OK();
}

Status FeatureDetectorEngine::RegisterWhitebox(const std::string& symbol,
                                               WhiteboxRule rule) {
  COBRA_RETURN_NOT_OK(RegisterCommon(symbol));
  if (!grammar_.HasSymbol(rule.source)) {
    return Status::NotFound(
        StringFormat("white-box source '%s' not in grammar", rule.source.c_str()));
  }
  // The source must be a declared dependency, otherwise the execution order
  // gives no guarantee the source has run.
  const auto& deps = grammar_.DependenciesOf(symbol);
  if (std::find(deps.begin(), deps.end(), rule.source) == deps.end()) {
    return Status::InvalidArgument(StringFormat(
        "white-box source '%s' is not a grammar dependency of '%s'",
        rule.source.c_str(), symbol.c_str()));
  }
  whitebox_rules_[symbol] = std::move(rule);
  return Status::OK();
}

Status FeatureDetectorEngine::ReplaceDetector(const std::string& symbol,
                                              DetectorFn detector) {
  if (!grammar_.HasSymbol(symbol) || symbol == grammar_.start_symbol()) {
    return Status::NotFound(
        StringFormat("symbol '%s' not replaceable", symbol.c_str()));
  }
  whitebox_rules_.erase(symbol);
  detectors_[symbol] = std::move(detector);
  dirty_.push_back(symbol);
  return Status::OK();
}

Status FeatureDetectorEngine::CheckComplete() const {
  for (const std::string& symbol : grammar_.ExecutionOrder()) {
    if (!detectors_.count(symbol) && !whitebox_rules_.count(symbol)) {
      return Status::FailedPrecondition(
          StringFormat("no detector registered for symbol '%s'", symbol.c_str()));
    }
  }
  return Status::OK();
}

Result<std::vector<Annotation>> FeatureDetectorEngine::RunWhitebox(
    const WhiteboxRule& rule, const DetectionContext& ctx) const {
  std::vector<Annotation> out;
  for (const Annotation& src : ctx.Of(rule.source)) {
    double value;
    if (!src.GetDouble(rule.attribute, &value)) continue;
    bool pass = rule.op == WhiteboxRule::Op::kLess ? value < rule.threshold
                                                   : value > rule.threshold;
    if (pass && src.range.Length() >= rule.min_length) {
      Annotation a = src;
      a.symbol.clear();  // filled by the caller with the rule's own symbol
      out.push_back(std::move(a));
    }
  }
  return out;
}

Result<std::vector<Annotation>> FeatureDetectorEngine::RunSymbol(
    const std::string& symbol, const DetectionContext& ctx) {
  // find(), not operator[]: RunSymbol executes concurrently within a wave
  // and must not mutate the registries.
  auto detector = detectors_.find(symbol);
  if (detector != detectors_.end()) return detector->second(ctx);
  return RunWhitebox(whitebox_rules_.find(symbol)->second, ctx);
}

const media::VideoSource& FeatureDetectorEngine::PrepareExecution(
    const media::VideoSource& video) {
  // Decode pipeline: a coded source is wrapped in a prefetching decorator
  // (backed by a dedicated decode pool — see prefetch.h for why it must not
  // share the wave pool), so detectors and the frame cache read from the
  // GOP buffer. For the same video it persists across incremental runs.
  const media::VideoSource* effective = &video;
  const auto* coded = dynamic_cast<const media::CodedVideoSource*>(&video);
  if (coded != nullptr && config_.decode_threads >= 0) {
    if (prefetcher_ == nullptr || &prefetcher_->source() != coded) {
      const int threads = config_.decode_threads > 0 ? config_.decode_threads
                                                     : config_.num_threads;
      prefetcher_.reset();  // joins in-flight tasks before the pool goes
      decode_pool_ = std::make_unique<util::ThreadPool>(threads);
      media::PrefetchConfig prefetch_config;
      prefetch_config.prefetch_frames = config_.prefetch_frames;
      prefetcher_ = std::make_unique<media::PrefetchingVideoSource>(
          *coded, prefetch_config, decode_pool_.get());
    }
    effective = prefetcher_.get();
  } else {
    prefetcher_.reset();
    decode_pool_.reset();
  }

  if (config_.cache_bytes == 0) {
    cache_.reset();
    return *effective;
  }
  // The cache is keyed by frame index, so it must be rebound whenever the
  // video changes; for the same video it persists across incremental runs.
  if (cache_ == nullptr || &cache_->video() != effective) {
    vision::FrameFeatureCacheConfig cache_config;
    cache_config.cache_bytes = config_.cache_bytes;
    cache_ =
        std::make_unique<vision::FrameFeatureCache>(*effective, cache_config);
  }
  return *effective;
}

Result<FdeRunReport> FeatureDetectorEngine::RunWaves(
    const media::VideoSource& video, const std::set<std::string>& skip) {
  const media::VideoSource& source = PrepareExecution(video);
  DetectionContext ctx(source, &blackboard_, cache_.get(), pool_.get());

  FdeRunReport report;
  const vision::FrameFeatureCache::Stats cache_before =
      cache_ != nullptr ? cache_->stats() : vision::FrameFeatureCache::Stats{};
  auto run_start = std::chrono::steady_clock::now();
  const auto& waves = grammar_.ExecutionWaves();
  for (size_t wave_idx = 0; wave_idx < waves.size(); ++wave_idx) {
    WaveRunStats wave_stats;
    wave_stats.wave = static_cast<int>(wave_idx);

    // Partition the wave into cached (skipped) and runnable symbols.
    std::vector<std::string> runnable;
    for (const std::string& symbol : waves[wave_idx]) {
      if (skip.count(symbol)) {
        DetectorRunStats stats;
        stats.symbol = symbol;
        stats.from_cache = true;
        stats.wave = static_cast<int>(wave_idx);
        stats.annotations_out =
            static_cast<int64_t>(blackboard_[symbol].size());
        report.detectors.push_back(std::move(stats));
      } else {
        runnable.push_back(symbol);
      }
    }

    // Execute the wave. Results land in per-symbol slots; the blackboard is
    // untouched (read-only context) until the barrier below, which merges
    // slots in wave order — so the outcome is independent of scheduling.
    std::vector<Result<std::vector<Annotation>>> produced(
        runnable.size(), std::vector<Annotation>{});
    std::vector<double> millis(runnable.size(), 0.0);
    auto wave_start = std::chrono::steady_clock::now();
    {
      util::TaskGroup group(pool_.get());
      for (size_t i = 0; i < runnable.size(); ++i) {
        group.Run([this, &ctx, &runnable, &produced, &millis, i] {
          auto t0 = std::chrono::steady_clock::now();
          produced[i] = RunSymbol(runnable[i], ctx);
          auto t1 = std::chrono::steady_clock::now();
          millis[i] =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
        });
      }
      group.Wait();
    }
    auto wave_end = std::chrono::steady_clock::now();
    wave_stats.symbols = runnable;
    wave_stats.millis =
        std::chrono::duration<double, std::milli>(wave_end - wave_start)
            .count();

    // Barrier: surface the first failure (in wave order), then merge.
    for (size_t i = 0; i < runnable.size(); ++i) {
      if (!produced[i].ok()) {
        return Status::DetectorError(StringFormat(
            "detector '%s' failed: %s", runnable[i].c_str(),
            produced[i].status().ToString().c_str()));
      }
    }
    for (size_t i = 0; i < runnable.size(); ++i) {
      std::vector<Annotation> annotations = std::move(produced[i]).TakeValue();
      for (Annotation& a : annotations) a.symbol = runnable[i];
      DetectorRunStats stats;
      stats.symbol = runnable[i];
      stats.annotations_out = static_cast<int64_t>(annotations.size());
      stats.millis = millis[i];
      stats.wave = static_cast<int>(wave_idx);
      report.detectors.push_back(std::move(stats));
      blackboard_[runnable[i]] = std::move(annotations);
    }
    report.waves.push_back(std::move(wave_stats));
  }
  auto run_end = std::chrono::steady_clock::now();
  report.total_millis =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  if (cache_ != nullptr) {
    const vision::FrameFeatureCache::Stats after = cache_->stats();
    report.cache_hits = after.hits - cache_before.hits;
    report.cache_misses = after.misses - cache_before.misses;
    report.cache_evictions = after.evictions - cache_before.evictions;
    report.cache_bytes = after.bytes;
  }
  return report;
}

Result<FdeRunReport> FeatureDetectorEngine::Run(const media::VideoSource& video) {
  COBRA_RETURN_NOT_OK(CheckComplete());
  blackboard_.clear();
  dirty_.clear();
  has_run_ = false;

  COBRA_ASSIGN_OR_RETURN(FdeRunReport report, RunWaves(video, {}));
  has_run_ = true;
  return report;
}

Result<FdeRunReport> FeatureDetectorEngine::RunIncremental(
    const media::VideoSource& video) {
  if (!has_run_) {
    return Status::FailedPrecondition(
        "RunIncremental requires a completed Run first");
  }
  COBRA_RETURN_NOT_OK(CheckComplete());

  // Dirty set: explicitly replaced detectors plus everything downstream.
  std::set<std::string> dirty(dirty_.begin(), dirty_.end());
  for (const std::string& symbol : dirty_) {
    for (const std::string& down : grammar_.Downstream(symbol)) {
      dirty.insert(down);
    }
  }
  std::set<std::string> clean;
  for (const std::string& symbol : grammar_.ExecutionOrder()) {
    if (!dirty.count(symbol)) clean.insert(symbol);
  }

  COBRA_ASSIGN_OR_RETURN(FdeRunReport report, RunWaves(video, clean));
  dirty_.clear();
  return report;
}

const std::vector<Annotation>& FeatureDetectorEngine::AnnotationsOf(
    const std::string& symbol) const {
  static const std::vector<Annotation> kEmpty;
  auto it = blackboard_.find(symbol);
  return it == blackboard_.end() ? kEmpty : it->second;
}

}  // namespace cobra::grammar
