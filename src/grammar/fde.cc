#include "grammar/fde.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace cobra::grammar {

const std::vector<Annotation>& DetectionContext::Of(
    const std::string& symbol) const {
  static const std::vector<Annotation> kEmpty;
  auto it = blackboard_->find(symbol);
  return it == blackboard_->end() ? kEmpty : it->second;
}

int64_t FdeRunReport::TotalAnnotations() const {
  int64_t n = 0;
  for (const DetectorRunStats& d : detectors) n += d.annotations_out;
  return n;
}

std::string FdeRunReport::ToString() const {
  std::string out = "FDE run:\n";
  for (const DetectorRunStats& d : detectors) {
    out += StringFormat("  %-16s %6lld annotations %8.2f ms%s\n",
                        d.symbol.c_str(),
                        static_cast<long long>(d.annotations_out), d.millis,
                        d.from_cache ? " (cached)" : "");
  }
  out += StringFormat("  total %.2f ms, %lld annotations\n", total_millis,
                      static_cast<long long>(TotalAnnotations()));
  return out;
}

FeatureDetectorEngine::FeatureDetectorEngine(FeatureGrammar grammar)
    : grammar_(std::move(grammar)) {}

Status FeatureDetectorEngine::RegisterCommon(const std::string& symbol) {
  if (!grammar_.HasSymbol(symbol)) {
    return Status::NotFound(
        StringFormat("symbol '%s' not in grammar", symbol.c_str()));
  }
  if (symbol == grammar_.start_symbol()) {
    return Status::InvalidArgument(
        StringFormat("start symbol '%s' cannot have a detector", symbol.c_str()));
  }
  if (detectors_.count(symbol) || whitebox_rules_.count(symbol)) {
    return Status::AlreadyExists(
        StringFormat("symbol '%s' already has a detector", symbol.c_str()));
  }
  return Status::OK();
}

Status FeatureDetectorEngine::RegisterDetector(const std::string& symbol,
                                               DetectorFn detector) {
  COBRA_RETURN_NOT_OK(RegisterCommon(symbol));
  detectors_[symbol] = std::move(detector);
  return Status::OK();
}

Status FeatureDetectorEngine::RegisterWhitebox(const std::string& symbol,
                                               WhiteboxRule rule) {
  COBRA_RETURN_NOT_OK(RegisterCommon(symbol));
  if (!grammar_.HasSymbol(rule.source)) {
    return Status::NotFound(
        StringFormat("white-box source '%s' not in grammar", rule.source.c_str()));
  }
  // The source must be a declared dependency, otherwise the execution order
  // gives no guarantee the source has run.
  const auto& deps = grammar_.DependenciesOf(symbol);
  if (std::find(deps.begin(), deps.end(), rule.source) == deps.end()) {
    return Status::InvalidArgument(StringFormat(
        "white-box source '%s' is not a grammar dependency of '%s'",
        rule.source.c_str(), symbol.c_str()));
  }
  whitebox_rules_[symbol] = std::move(rule);
  return Status::OK();
}

Status FeatureDetectorEngine::ReplaceDetector(const std::string& symbol,
                                              DetectorFn detector) {
  if (!grammar_.HasSymbol(symbol) || symbol == grammar_.start_symbol()) {
    return Status::NotFound(
        StringFormat("symbol '%s' not replaceable", symbol.c_str()));
  }
  whitebox_rules_.erase(symbol);
  detectors_[symbol] = std::move(detector);
  dirty_.push_back(symbol);
  return Status::OK();
}

Status FeatureDetectorEngine::CheckComplete() const {
  for (const std::string& symbol : grammar_.ExecutionOrder()) {
    if (!detectors_.count(symbol) && !whitebox_rules_.count(symbol)) {
      return Status::FailedPrecondition(
          StringFormat("no detector registered for symbol '%s'", symbol.c_str()));
    }
  }
  return Status::OK();
}

Result<std::vector<Annotation>> FeatureDetectorEngine::RunWhitebox(
    const WhiteboxRule& rule, const DetectionContext& ctx) const {
  std::vector<Annotation> out;
  for (const Annotation& src : ctx.Of(rule.source)) {
    double value;
    if (!src.GetDouble(rule.attribute, &value)) continue;
    bool pass = rule.op == WhiteboxRule::Op::kLess ? value < rule.threshold
                                                   : value > rule.threshold;
    if (pass && src.range.Length() >= rule.min_length) {
      Annotation a = src;
      a.symbol.clear();  // filled by the caller with the rule's own symbol
      out.push_back(std::move(a));
    }
  }
  return out;
}

Result<FdeRunReport> FeatureDetectorEngine::Run(const media::VideoSource& video) {
  COBRA_RETURN_NOT_OK(CheckComplete());
  blackboard_.clear();
  dirty_.clear();
  has_run_ = false;

  FdeRunReport report;
  DetectionContext ctx(video, &blackboard_);
  auto run_start = std::chrono::steady_clock::now();
  for (const std::string& symbol : grammar_.ExecutionOrder()) {
    auto t0 = std::chrono::steady_clock::now();
    Result<std::vector<Annotation>> produced =
        detectors_.count(symbol)
            ? detectors_[symbol](ctx)
            : RunWhitebox(whitebox_rules_[symbol], ctx);
    if (!produced.ok()) {
      return Status::DetectorError(StringFormat(
          "detector '%s' failed: %s", symbol.c_str(),
          produced.status().ToString().c_str()));
    }
    std::vector<Annotation> annotations = std::move(produced).TakeValue();
    for (Annotation& a : annotations) a.symbol = symbol;
    auto t1 = std::chrono::steady_clock::now();

    DetectorRunStats stats;
    stats.symbol = symbol;
    stats.annotations_out = static_cast<int64_t>(annotations.size());
    stats.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
    report.detectors.push_back(stats);
    blackboard_[symbol] = std::move(annotations);
  }
  auto run_end = std::chrono::steady_clock::now();
  report.total_millis =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  has_run_ = true;
  return report;
}

Result<FdeRunReport> FeatureDetectorEngine::RunIncremental(
    const media::VideoSource& video) {
  if (!has_run_) {
    return Status::FailedPrecondition(
        "RunIncremental requires a completed Run first");
  }
  COBRA_RETURN_NOT_OK(CheckComplete());

  // Dirty set: explicitly replaced detectors plus everything downstream.
  std::set<std::string> dirty(dirty_.begin(), dirty_.end());
  for (const std::string& symbol : dirty_) {
    for (const std::string& down : grammar_.Downstream(symbol)) {
      dirty.insert(down);
    }
  }

  FdeRunReport report;
  DetectionContext ctx(video, &blackboard_);
  auto run_start = std::chrono::steady_clock::now();
  for (const std::string& symbol : grammar_.ExecutionOrder()) {
    DetectorRunStats stats;
    stats.symbol = symbol;
    if (!dirty.count(symbol)) {
      stats.from_cache = true;
      stats.annotations_out =
          static_cast<int64_t>(blackboard_[symbol].size());
      report.detectors.push_back(stats);
      continue;
    }
    auto t0 = std::chrono::steady_clock::now();
    Result<std::vector<Annotation>> produced =
        detectors_.count(symbol)
            ? detectors_[symbol](ctx)
            : RunWhitebox(whitebox_rules_[symbol], ctx);
    if (!produced.ok()) {
      return Status::DetectorError(StringFormat(
          "detector '%s' failed: %s", symbol.c_str(),
          produced.status().ToString().c_str()));
    }
    std::vector<Annotation> annotations = std::move(produced).TakeValue();
    for (Annotation& a : annotations) a.symbol = symbol;
    auto t1 = std::chrono::steady_clock::now();
    stats.annotations_out = static_cast<int64_t>(annotations.size());
    stats.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
    report.detectors.push_back(stats);
    blackboard_[symbol] = std::move(annotations);
  }
  auto run_end = std::chrono::steady_clock::now();
  report.total_millis =
      std::chrono::duration<double, std::milli>(run_end - run_start).count();
  dirty_.clear();
  return report;
}

const std::vector<Annotation>& FeatureDetectorEngine::AnnotationsOf(
    const std::string& symbol) const {
  static const std::vector<Annotation> kEmpty;
  auto it = blackboard_.find(symbol);
  return it == blackboard_.end() ? kEmpty : it->second;
}

}  // namespace cobra::grammar
