#pragma once

/// \file fde.h
/// The Feature Detector Engine: the parser "generated" from a feature
/// grammar (paper §3). The FDE walks the grammar's dependency DAG and
/// triggers the execution of the associated detectors, accumulating the
/// video meta-data that later populates the meta-index.
///
/// Detectors come in two flavors, as in the paper:
///   * black-box: an arbitrary callable registered by name (e.g. the
///     segment detector wrapping histogram differencing);
///   * white-box: a declarative spatio-temporal predicate over existing
///     annotations, interpreted by the engine itself (see WhiteboxRule).

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "grammar/annotation.h"
#include "grammar/feature_grammar.h"
#include "media/video.h"
#include "util/status.h"

namespace cobra::grammar {

/// What a detector sees while running: the video plus every annotation
/// produced by detectors earlier in the topological order.
class DetectionContext {
 public:
  DetectionContext(const media::VideoSource& video,
                   const std::map<std::string, std::vector<Annotation>>* blackboard)
      : video_(video), blackboard_(blackboard) {}

  const media::VideoSource& video() const { return video_; }

  /// Annotations of a dependency symbol (empty if none were produced).
  const std::vector<Annotation>& Of(const std::string& symbol) const;

 private:
  const media::VideoSource& video_;
  const std::map<std::string, std::vector<Annotation>>* blackboard_;
};

/// A black-box detector: consumes the context, emits annotations for its
/// own symbol.
using DetectorFn =
    std::function<Result<std::vector<Annotation>>(const DetectionContext&)>;

/// A white-box detector rule, interpreted by the FDE itself: selects
/// annotations of `source` whose numeric attribute satisfies a comparison,
/// and re-emits them under the rule's own symbol.
///
/// This models the paper's "rules, which use spatio-temporal relations ...
/// implemented as white- ... box detectors within the FDE": the attribute
/// is typically a spatial quantity (distance to net) and the run-length
/// constraint is the temporal part.
struct WhiteboxRule {
  std::string source;        ///< symbol whose annotations are filtered
  std::string attribute;     ///< numeric attribute to test
  enum class Op { kLess, kGreater } op = Op::kLess;
  double threshold = 0.0;
  /// Only emit matches whose interval is at least this long.
  int64_t min_length = 1;
};

/// Per-detector execution record.
struct DetectorRunStats {
  std::string symbol;
  int64_t annotations_out = 0;
  double millis = 0.0;
  bool from_cache = false;  ///< reused from the previous run (incremental)
};

/// Result of one FDE run over a video.
struct FdeRunReport {
  std::vector<DetectorRunStats> detectors;  ///< in execution order
  double total_millis = 0.0;

  int64_t TotalAnnotations() const;
  std::string ToString() const;
};

/// The engine. Construct with a grammar, register one detector per grammar
/// symbol (black-box or white-box), then Run.
class FeatureDetectorEngine {
 public:
  explicit FeatureDetectorEngine(FeatureGrammar grammar);

  const FeatureGrammar& grammar() const { return grammar_; }

  /// Registers a black-box detector for `symbol`. Fails if the symbol is
  /// unknown, is the start symbol, or already has a detector.
  Status RegisterDetector(const std::string& symbol, DetectorFn detector);

  /// Registers a white-box rule for `symbol` (same constraints).
  Status RegisterWhitebox(const std::string& symbol, WhiteboxRule rule);

  /// Replaces the detector for `symbol` and marks it dirty, so the next
  /// RunIncremental re-runs it and everything downstream.
  Status ReplaceDetector(const std::string& symbol, DetectorFn detector);

  /// True if every non-start symbol has a detector.
  Status CheckComplete() const;

  /// Runs all detectors in grammar execution order over `video`, populating
  /// the annotation blackboard from scratch.
  Result<FdeRunReport> Run(const media::VideoSource& video);

  /// Incremental run: reuses the previous run's annotations for symbols
  /// that are not dirty (dirty = ReplaceDetector'd since the last run, or
  /// downstream of one). Requires a previous Run on the same video.
  Result<FdeRunReport> RunIncremental(const media::VideoSource& video);

  /// Annotations of `symbol` from the last run.
  const std::vector<Annotation>& AnnotationsOf(const std::string& symbol) const;

  /// The whole blackboard from the last run.
  const std::map<std::string, std::vector<Annotation>>& blackboard() const {
    return blackboard_;
  }

 private:
  Status RegisterCommon(const std::string& symbol);
  Result<std::vector<Annotation>> RunWhitebox(const WhiteboxRule& rule,
                                              const DetectionContext& ctx) const;

  FeatureGrammar grammar_;
  std::map<std::string, DetectorFn> detectors_;
  std::map<std::string, WhiteboxRule> whitebox_rules_;
  std::map<std::string, std::vector<Annotation>> blackboard_;
  std::vector<std::string> dirty_;
  bool has_run_ = false;
};

}  // namespace cobra::grammar
