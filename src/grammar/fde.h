#pragma once

/// \file fde.h
/// The Feature Detector Engine: the parser "generated" from a feature
/// grammar (paper §3). The FDE walks the grammar's dependency DAG and
/// triggers the execution of the associated detectors, accumulating the
/// video meta-data that later populates the meta-index.
///
/// Detectors come in two flavors, as in the paper:
///   * black-box: an arbitrary callable registered by name (e.g. the
///     segment detector wrapping histogram differencing);
///   * white-box: a declarative spatio-temporal predicate over existing
///     annotations, interpreted by the engine itself (see WhiteboxRule).
///
/// Execution is wave-scheduled: the grammar's topological levels
/// (FeatureGrammar::ExecutionWaves) run one after another, and the
/// detectors inside one wave run concurrently on a thread pool. Blackboard
/// writes happen only at wave barriers, so the DetectionContext is
/// read-only while detectors execute and the annotation output is
/// bit-identical to a sequential run (see DESIGN.md "Parallel execution
/// model").

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "grammar/annotation.h"
#include "grammar/feature_grammar.h"
#include "media/video.h"
#include "util/status.h"

namespace cobra::util {
class ThreadPool;
}  // namespace cobra::util

namespace cobra::media {
class CodedVideoSource;
class PrefetchingVideoSource;
}  // namespace cobra::media

namespace cobra::vision {
class FrameFeatureCache;
}  // namespace cobra::vision

namespace cobra::grammar {

/// Engine-level execution knobs.
struct FdeConfig {
  /// Detectors within one grammar wave (and frame loops inside detectors
  /// that use the shared pool) run on this many threads. 1 reproduces the
  /// sequential engine exactly.
  int num_threads = 1;
  /// Byte budget of the shared per-frame feature cache (decoded frames,
  /// histograms, skin ratios, gray stats). 0 disables caching.
  size_t cache_bytes = size_t{64} << 20;
  /// Decode pipeline (only active when Run is handed a
  /// media::CodedVideoSource): the engine wraps the source in a
  /// PrefetchingVideoSource backed by a dedicated decode pool of this many
  /// threads, so detectors read decoded frames from the GOP buffer instead
  /// of stalling on the decoder. 0 follows num_threads; negative disables
  /// the pipeline (detectors hit the raw decoder). Output is bit-identical
  /// either way.
  int decode_threads = 0;
  /// Read-ahead window of the decode pipeline, in frames (<= 0: no
  /// read-ahead, the pipeline degenerates to a GOP decode cache).
  int64_t prefetch_frames = 96;
};

/// What a detector sees while running: the video plus every annotation
/// produced by detectors in earlier waves, and the shared execution
/// substrate (frame-feature cache + thread pool). During a wave the context
/// is read-only; the cache is internally synchronized.
class DetectionContext {
 public:
  DetectionContext(const media::VideoSource& video,
                   const std::map<std::string, std::vector<Annotation>>* blackboard,
                   vision::FrameFeatureCache* cache = nullptr,
                   util::ThreadPool* pool = nullptr)
      : video_(video), blackboard_(blackboard), cache_(cache), pool_(pool) {}

  const media::VideoSource& video() const { return video_; }

  /// Annotations of a dependency symbol (empty if none were produced).
  const std::vector<Annotation>& Of(const std::string& symbol) const;

  /// Shared per-frame feature cache for this run (null when the engine was
  /// built without one; detectors must fall back to direct computation).
  vision::FrameFeatureCache* cache() const { return cache_; }

  /// Shared thread pool (null or inline in single-threaded runs).
  util::ThreadPool* pool() const { return pool_; }

 private:
  const media::VideoSource& video_;
  const std::map<std::string, std::vector<Annotation>>* blackboard_;
  vision::FrameFeatureCache* cache_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
};

/// A black-box detector: consumes the context, emits annotations for its
/// own symbol.
using DetectorFn =
    std::function<Result<std::vector<Annotation>>(const DetectionContext&)>;

/// A white-box detector rule, interpreted by the FDE itself: selects
/// annotations of `source` whose numeric attribute satisfies a comparison,
/// and re-emits them under the rule's own symbol.
///
/// This models the paper's "rules, which use spatio-temporal relations ...
/// implemented as white- ... box detectors within the FDE": the attribute
/// is typically a spatial quantity (distance to net) and the run-length
/// constraint is the temporal part.
struct WhiteboxRule {
  std::string source;        ///< symbol whose annotations are filtered
  std::string attribute;     ///< numeric attribute to test
  enum class Op { kLess, kGreater } op = Op::kLess;
  double threshold = 0.0;
  /// Only emit matches whose interval is at least this long.
  int64_t min_length = 1;
};

/// Per-detector execution record.
struct DetectorRunStats {
  std::string symbol;
  int64_t annotations_out = 0;
  double millis = 0.0;
  bool from_cache = false;  ///< reused from the previous run (incremental)
  int wave = 0;             ///< topological level the detector ran in
};

/// Per-wave execution record: the concurrent batch and its barrier-to-
/// barrier wall time (under parallel execution this is less than the sum of
/// its detectors' own times).
struct WaveRunStats {
  int wave = 0;
  std::vector<std::string> symbols;  ///< detectors executed (not cached)
  double millis = 0.0;
};

/// Result of one FDE run over a video.
struct FdeRunReport {
  std::vector<DetectorRunStats> detectors;  ///< in wave order
  std::vector<WaveRunStats> waves;          ///< one entry per grammar wave
  double total_millis = 0.0;
  /// Frame-feature cache traffic during THIS run (deltas over the shared
  /// cache's counters; all zero when the engine runs uncached) — how often
  /// detectors rode on artifacts another detector already computed.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  size_t cache_bytes = 0;  ///< held by the cache at the end of the run

  int64_t TotalAnnotations() const;
  std::string ToString() const;
};

/// The engine. Construct with a grammar, register one detector per grammar
/// symbol (black-box or white-box), then Run.
class FeatureDetectorEngine {
 public:
  explicit FeatureDetectorEngine(FeatureGrammar grammar, FdeConfig config = {});
  ~FeatureDetectorEngine();

  const FeatureGrammar& grammar() const { return grammar_; }
  const FdeConfig& config() const { return config_; }

  /// Registers a black-box detector for `symbol`. Fails if the symbol is
  /// unknown, is the start symbol, or already has a detector.
  Status RegisterDetector(const std::string& symbol, DetectorFn detector);

  /// Registers a white-box rule for `symbol` (same constraints).
  Status RegisterWhitebox(const std::string& symbol, WhiteboxRule rule);

  /// Replaces the detector for `symbol` and marks it dirty, so the next
  /// RunIncremental re-runs it and everything downstream.
  Status ReplaceDetector(const std::string& symbol, DetectorFn detector);

  /// True if every non-start symbol has a detector.
  Status CheckComplete() const;

  /// Runs all detectors wave by wave over `video`, populating the
  /// annotation blackboard from scratch.
  Result<FdeRunReport> Run(const media::VideoSource& video);

  /// Incremental run: reuses the previous run's annotations for symbols
  /// that are not dirty (dirty = ReplaceDetector'd since the last run, or
  /// downstream of one). Requires a previous Run on the same video.
  Result<FdeRunReport> RunIncremental(const media::VideoSource& video);

  /// Annotations of `symbol` from the last run.
  const std::vector<Annotation>& AnnotationsOf(const std::string& symbol) const;

  /// The whole blackboard from the last run.
  const std::map<std::string, std::vector<Annotation>>& blackboard() const {
    return blackboard_;
  }

  /// The shared frame-feature cache of the last/current run (null before
  /// the first Run or when cache_bytes == 0).
  vision::FrameFeatureCache* frame_cache() const { return cache_.get(); }

 private:
  Status RegisterCommon(const std::string& symbol);
  Result<std::vector<Annotation>> RunWhitebox(const WhiteboxRule& rule,
                                              const DetectionContext& ctx) const;
  /// Executes one detector (black- or white-box) for the wave scheduler.
  Result<std::vector<Annotation>> RunSymbol(const std::string& symbol,
                                            const DetectionContext& ctx);
  /// Binds cache + pools to `video` (creating or resetting as needed) and
  /// returns the source detectors should read: the decode pipeline's
  /// prefetcher when `video` is coded and the pipeline is enabled, `video`
  /// itself otherwise.
  const media::VideoSource& PrepareExecution(const media::VideoSource& video);
  /// Wave-scheduled execution shared by Run and RunIncremental: runs every
  /// symbol not in `skip` and merges results at wave barriers; symbols in
  /// `skip` are reported as cached.
  Result<FdeRunReport> RunWaves(const media::VideoSource& video,
                                const std::set<std::string>& skip);

  FeatureGrammar grammar_;
  FdeConfig config_;
  std::map<std::string, DetectorFn> detectors_;
  std::map<std::string, WhiteboxRule> whitebox_rules_;
  std::map<std::string, std::vector<Annotation>> blackboard_;
  std::vector<std::string> dirty_;
  bool has_run_ = false;

  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<vision::FrameFeatureCache> cache_;
  /// Decode pipeline state; the prefetcher must be declared after (and so
  /// destroyed before) the decode pool its in-flight tasks run on.
  std::unique_ptr<util::ThreadPool> decode_pool_;
  std::unique_ptr<media::PrefetchingVideoSource> prefetcher_;
};

}  // namespace cobra::grammar
