#pragma once

/// \file feature_grammar.h
/// The Acoi feature grammar (ref [3]): grammar rules describing the
/// relationships between meta-data symbols and the detectors that produce
/// them. The grammar is the single place where the execution order of and
/// dependencies between extraction algorithms are declared (paper Figure 1);
/// the FDE is generated from it.
///
/// Text syntax (one declaration per line, `#` comments):
///
///     start video ;
///     segment  : video ;            # segment depends on the raw video
///     tennis   : segment ;
///     player   : tennis ;
///     net_play : player segment ;   # multiple dependencies allowed
///
/// The start symbol is the input object and has no detector; every other
/// symbol is produced by a detector of the same name.

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace cobra::grammar {

/// One grammar rule: `symbol : dependencies... ;`
struct GrammarRule {
  std::string symbol;
  std::vector<std::string> dependencies;
};

/// A parsed, validated feature grammar.
class FeatureGrammar {
 public:
  /// Parses the text syntax. Fails with ParseError on syntax problems and
  /// with InvalidArgument on semantic ones (duplicate rules, unknown
  /// dependencies, cycles, missing/with-rule start symbol).
  static Result<FeatureGrammar> Parse(const std::string& text);

  /// Programmatic construction (used by tests and generated grammars).
  static Result<FeatureGrammar> FromRules(std::string start_symbol,
                                          std::vector<GrammarRule> rules);

  const std::string& start_symbol() const { return start_symbol_; }
  const std::vector<GrammarRule>& rules() const { return rules_; }

  /// All symbols: the start symbol plus one per rule, in declaration order.
  std::vector<std::string> Symbols() const;

  /// True if the grammar declares `symbol` (as start or rule head).
  bool HasSymbol(const std::string& symbol) const;

  /// Dependencies of `symbol` (empty for the start symbol).
  const std::vector<std::string>& DependenciesOf(const std::string& symbol) const;

  /// Detector execution order: a topological order of the dependency DAG
  /// (dependencies first). Deterministic: declaration order among ready
  /// symbols. Does not include the start symbol.
  const std::vector<std::string>& ExecutionOrder() const {
    return execution_order_;
  }

  /// The topological levels ("waves") of the dependency DAG: wave 0 holds
  /// the symbols that depend only on the start symbol; a symbol's wave is
  /// 1 + the max wave of its dependencies. Symbols within one wave have no
  /// dependencies among each other, so their detectors may run concurrently
  /// (the FDE's wave scheduler). Concatenating the waves yields a valid
  /// execution order; within a wave, symbols keep declaration order.
  const std::vector<std::vector<std::string>>& ExecutionWaves() const {
    return execution_waves_;
  }

  /// Symbols that (transitively) depend on `symbol`, excluding it.
  /// Used for incremental re-indexing: these are the detectors to re-run
  /// when `symbol`'s detector or output changes.
  std::vector<std::string> Downstream(const std::string& symbol) const;

  /// The dependency graph in Graphviz dot format (paper Figure 1).
  std::string ToDot() const;

 private:
  Status Validate();

  std::string start_symbol_;
  std::vector<GrammarRule> rules_;
  std::map<std::string, size_t> rule_index_;
  std::vector<std::string> execution_order_;
  std::vector<std::vector<std::string>> execution_waves_;
};

}  // namespace cobra::grammar
