#include "grammar/feature_grammar.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <set>

#include "util/strings.h"

namespace cobra::grammar {

namespace {

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return !std::isdigit(static_cast<unsigned char>(s[0]));
}

}  // namespace

Result<FeatureGrammar> FeatureGrammar::Parse(const std::string& text) {
  std::string start;
  std::vector<GrammarRule> rules;
  int line_no = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_no;
    std::string line{StripWhitespace(raw_line)};
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = std::string(StripWhitespace(line.substr(0, hash)));
    if (line.empty()) continue;
    if (line.back() != ';') {
      return Status::ParseError(
          StringFormat("line %d: declaration must end with ';'", line_no));
    }
    line.pop_back();
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) {
      return Status::ParseError(StringFormat("line %d: empty declaration", line_no));
    }
    if (tokens[0] == "start") {
      if (tokens.size() != 2) {
        return Status::ParseError(
            StringFormat("line %d: expected 'start <symbol> ;'", line_no));
      }
      if (!start.empty()) {
        return Status::ParseError(
            StringFormat("line %d: duplicate start declaration", line_no));
      }
      if (!IsIdentifier(tokens[1])) {
        return Status::ParseError(
            StringFormat("line %d: '%s' is not an identifier", line_no,
                         tokens[1].c_str()));
      }
      start = tokens[1];
      continue;
    }
    // `symbol : dep dep ... ;`
    if (tokens.size() < 3 || tokens[1] != ":") {
      return Status::ParseError(StringFormat(
          "line %d: expected '<symbol> : <dep>... ;'", line_no));
    }
    GrammarRule rule;
    rule.symbol = tokens[0];
    if (!IsIdentifier(rule.symbol)) {
      return Status::ParseError(StringFormat("line %d: '%s' is not an identifier",
                                             line_no, rule.symbol.c_str()));
    }
    for (size_t i = 2; i < tokens.size(); ++i) {
      if (!IsIdentifier(tokens[i])) {
        return Status::ParseError(StringFormat(
            "line %d: '%s' is not an identifier", line_no, tokens[i].c_str()));
      }
      rule.dependencies.push_back(tokens[i]);
    }
    rules.push_back(std::move(rule));
  }
  if (start.empty()) {
    return Status::ParseError("grammar has no 'start' declaration");
  }
  return FromRules(std::move(start), std::move(rules));
}

Result<FeatureGrammar> FeatureGrammar::FromRules(std::string start_symbol,
                                                 std::vector<GrammarRule> rules) {
  FeatureGrammar g;
  g.start_symbol_ = std::move(start_symbol);
  g.rules_ = std::move(rules);
  COBRA_RETURN_NOT_OK(g.Validate());
  return g;
}

Status FeatureGrammar::Validate() {
  rule_index_.clear();
  for (size_t i = 0; i < rules_.size(); ++i) {
    const GrammarRule& rule = rules_[i];
    if (rule.symbol == start_symbol_) {
      return Status::InvalidArgument(
          StringFormat("start symbol '%s' must not have a rule",
                       start_symbol_.c_str()));
    }
    if (!rule_index_.emplace(rule.symbol, i).second) {
      return Status::InvalidArgument(
          StringFormat("duplicate rule for symbol '%s'", rule.symbol.c_str()));
    }
    if (rule.dependencies.empty()) {
      return Status::InvalidArgument(
          StringFormat("symbol '%s' has no dependencies", rule.symbol.c_str()));
    }
  }
  for (const GrammarRule& rule : rules_) {
    std::set<std::string> seen;
    for (const std::string& dep : rule.dependencies) {
      if (dep != start_symbol_ && !rule_index_.count(dep)) {
        return Status::InvalidArgument(
            StringFormat("symbol '%s' depends on undeclared '%s'",
                         rule.symbol.c_str(), dep.c_str()));
      }
      if (!seen.insert(dep).second) {
        return Status::InvalidArgument(
            StringFormat("symbol '%s' lists dependency '%s' twice",
                         rule.symbol.c_str(), dep.c_str()));
      }
    }
  }

  // Kahn's algorithm, keeping declaration order among ready symbols.
  execution_order_.clear();
  std::map<std::string, int> in_degree;
  for (const GrammarRule& rule : rules_) {
    int degree = 0;
    for (const std::string& dep : rule.dependencies) {
      if (dep != start_symbol_) ++degree;
    }
    in_degree[rule.symbol] = degree;
  }
  std::vector<bool> emitted(rules_.size(), false);
  for (size_t emitted_count = 0; emitted_count < rules_.size();) {
    bool progressed = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (emitted[i] || in_degree[rules_[i].symbol] != 0) continue;
      emitted[i] = true;
      ++emitted_count;
      progressed = true;
      execution_order_.push_back(rules_[i].symbol);
      for (const GrammarRule& other : rules_) {
        for (const std::string& dep : other.dependencies) {
          if (dep == rules_[i].symbol) in_degree[other.symbol]--;
        }
      }
    }
    if (!progressed) {
      return Status::InvalidArgument("grammar contains a dependency cycle");
    }
  }

  // Topological levels: wave(s) = 1 + max(wave(deps)), start symbol = -1.
  // execution_order_ is already topological, so one forward sweep settles
  // every level; declaration order within a wave follows from iterating
  // rules_ in order below.
  std::map<std::string, int> wave_of;
  int max_wave = -1;
  for (const std::string& symbol : execution_order_) {
    int wave = 0;
    for (const std::string& dep : DependenciesOf(symbol)) {
      if (dep == start_symbol_) continue;
      wave = std::max(wave, wave_of[dep] + 1);
    }
    wave_of[symbol] = wave;
    max_wave = std::max(max_wave, wave);
  }
  execution_waves_.assign(static_cast<size_t>(max_wave + 1), {});
  for (const GrammarRule& rule : rules_) {
    execution_waves_[static_cast<size_t>(wave_of[rule.symbol])].push_back(
        rule.symbol);
  }
  return Status::OK();
}

std::vector<std::string> FeatureGrammar::Symbols() const {
  std::vector<std::string> out = {start_symbol_};
  for (const GrammarRule& rule : rules_) out.push_back(rule.symbol);
  return out;
}

bool FeatureGrammar::HasSymbol(const std::string& symbol) const {
  return symbol == start_symbol_ || rule_index_.count(symbol) > 0;
}

const std::vector<std::string>& FeatureGrammar::DependenciesOf(
    const std::string& symbol) const {
  static const std::vector<std::string> kEmpty;
  auto it = rule_index_.find(symbol);
  return it == rule_index_.end() ? kEmpty : rules_[it->second].dependencies;
}

std::vector<std::string> FeatureGrammar::Downstream(
    const std::string& symbol) const {
  std::set<std::string> dirty = {symbol};
  std::vector<std::string> out;
  // Execution order is topological, so one forward sweep suffices.
  for (const std::string& sym : execution_order_) {
    if (dirty.count(sym)) continue;
    for (const std::string& dep : DependenciesOf(sym)) {
      if (dirty.count(dep)) {
        dirty.insert(sym);
        out.push_back(sym);
        break;
      }
    }
  }
  return out;
}

std::string FeatureGrammar::ToDot() const {
  std::string out = "digraph feature_grammar {\n  rankdir=TB;\n";
  out += StringFormat("  \"%s\" [shape=box];\n", start_symbol_.c_str());
  for (const GrammarRule& rule : rules_) {
    out += StringFormat("  \"%s\" [shape=ellipse];\n", rule.symbol.c_str());
  }
  for (const GrammarRule& rule : rules_) {
    for (const std::string& dep : rule.dependencies) {
      out += StringFormat("  \"%s\" -> \"%s\";\n", dep.c_str(),
                          rule.symbol.c_str());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cobra::grammar
