#include "grammar/annotation.h"

#include "util/strings.h"

namespace cobra::grammar {

std::string MetaValueToString(const MetaValue& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return StringFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return StringFormat("%.6g", *d);
  }
  return std::get<std::string>(value);
}

bool Annotation::GetInt(const std::string& key, int64_t* out) const {
  auto it = attrs.find(key);
  if (it == attrs.end()) return false;
  if (const auto* v = std::get_if<int64_t>(&it->second)) {
    *out = *v;
    return true;
  }
  return false;
}

bool Annotation::GetDouble(const std::string& key, double* out) const {
  auto it = attrs.find(key);
  if (it == attrs.end()) return false;
  if (const auto* v = std::get_if<double>(&it->second)) {
    *out = *v;
    return true;
  }
  // Ints promote to double.
  if (const auto* v = std::get_if<int64_t>(&it->second)) {
    *out = static_cast<double>(*v);
    return true;
  }
  return false;
}

bool Annotation::GetString(const std::string& key, std::string* out) const {
  auto it = attrs.find(key);
  if (it == attrs.end()) return false;
  if (const auto* v = std::get_if<std::string>(&it->second)) {
    *out = *v;
    return true;
  }
  return false;
}

int64_t Annotation::IntOr(const std::string& key, int64_t fallback) const {
  int64_t out;
  return GetInt(key, &out) ? out : fallback;
}

double Annotation::DoubleOr(const std::string& key, double fallback) const {
  double out;
  return GetDouble(key, &out) ? out : fallback;
}

std::string Annotation::StringOr(const std::string& key,
                                 std::string fallback) const {
  std::string out;
  return GetString(key, &out) ? out : fallback;
}

}  // namespace cobra::grammar
