#include "audio/features.h"

#include <algorithm>
#include <cmath>

#include "audio/fft.h"
#include "util/stats.h"
#include "util/strings.h"

namespace cobra::audio {

AudioAnalyzer::AudioAnalyzer(AudioAnalyzerConfig config) : config_(config) {}

namespace {

double Harmonicity(const std::vector<float>& frame, int sample_rate,
                   double min_hz, double max_hz) {
  // Normalized autocorrelation peak in the pitch lag range.
  const int n = static_cast<int>(frame.size());
  int min_lag = std::max(1, static_cast<int>(sample_rate / max_hz));
  int max_lag = std::min(n - 1, static_cast<int>(sample_rate / min_hz));
  if (max_lag <= min_lag) return 0.0;
  double energy = 1e-12;
  for (float s : frame) energy += static_cast<double>(s) * s;
  double best = 0.0;
  for (int lag = min_lag; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (int i = 0; i + lag < n; ++i) {
      acc += static_cast<double>(frame[static_cast<size_t>(i)]) *
             frame[static_cast<size_t>(i + lag)];
    }
    best = std::max(best, acc / energy);
  }
  return std::clamp(best, 0.0, 1.0);
}

}  // namespace

Result<std::vector<AudioFrameFeatures>> AudioAnalyzer::Analyze(
    const AudioSignal& signal) const {
  if (config_.frame_samples < 64 || config_.hop_samples < 1) {
    return Status::InvalidArgument("bad analyzer frame/hop");
  }
  std::vector<AudioFrameFeatures> out;
  const int64_t n = signal.num_samples();
  for (int64_t start = 0; start + config_.frame_samples <= n;
       start += config_.hop_samples) {
    std::vector<float> frame(
        signal.samples().begin() + static_cast<size_t>(start),
        signal.samples().begin() +
            static_cast<size_t>(start + config_.frame_samples));
    AudioFrameFeatures features;
    features.rms = signal.Rms(start, config_.frame_samples);
    int crossings = 0;
    for (size_t i = 1; i < frame.size(); ++i) {
      if ((frame[i - 1] >= 0) != (frame[i] >= 0)) ++crossings;
    }
    features.zero_crossing_rate =
        static_cast<double>(crossings) / static_cast<double>(frame.size());
    COBRA_ASSIGN_OR_RETURN(std::vector<double> spectrum,
                           MagnitudeSpectrum(frame));
    features.spectral_centroid_hz =
        SpectralCentroidHz(spectrum, signal.sample_rate());
    features.spectral_flatness = SpectralFlatness(spectrum);
    features.harmonicity = Harmonicity(frame, signal.sample_rate(),
                                       config_.min_pitch_hz, config_.max_pitch_hz);
    out.push_back(features);
  }
  return out;
}

std::string AudioAnalyzer::ClassifyRun(
    const std::vector<AudioFrameFeatures>& features, size_t begin_frame,
    size_t end_frame) const {
  RunningStats rms, flatness, harmonicity;
  for (size_t f = begin_frame; f < end_frame; ++f) {
    rms.Add(features[f].rms);
    flatness.Add(features[f].spectral_flatness);
    harmonicity.Add(features[f].harmonicity);
  }
  // Noise (applause): flat spectrum, no pitch.
  if (flatness.mean() > 0.5 || harmonicity.mean() < 0.2) {
    return kClassApplause;
  }
  // Tonal content: syllabic energy modulation separates speech (per-run
  // coefficient of variation ~0.35-0.45, driven by the syllable envelopes)
  // from sustained music (~0.2).
  double modulation = rms.mean() > 0 ? rms.stddev() / rms.mean() : 0.0;
  return modulation > 0.28 ? kClassSpeech : kClassMusic;
}

Result<std::vector<AudioSegment>> AudioAnalyzer::Segment(
    const AudioSignal& signal) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<AudioFrameFeatures> features,
                         Analyze(signal));
  std::vector<AudioSegment> out;
  if (features.empty()) return out;

  auto frame_begin = [&](size_t f) {
    return static_cast<int64_t>(f) * config_.hop_samples;
  };
  auto emit = [&](size_t begin_frame, size_t end_frame, bool silent) {
    AudioSegment segment;
    segment.range.begin = frame_begin(begin_frame);
    segment.range.end =
        end_frame == features.size()
            ? signal.num_samples() - 1
            : frame_begin(end_frame) - 1;
    segment.label = silent ? kClassSilence
                           : ClassifyRun(features, begin_frame, end_frame);
    out.push_back(std::move(segment));
  };

  size_t run_start = 0;
  bool run_silent = features[0].rms < config_.silence_rms;
  for (size_t f = 1; f <= features.size(); ++f) {
    bool silent =
        f < features.size() ? features[f].rms < config_.silence_rms : !run_silent;
    if (silent != run_silent || f == features.size()) {
      emit(run_start, f, run_silent);
      run_start = f;
      run_silent = silent;
    }
  }
  return out;
}

Result<double> LabeledFraction(const std::vector<AudioSegment>& segments,
                               const std::string& label,
                               int64_t total_samples) {
  if (total_samples <= 0) {
    return Status::InvalidArgument("total_samples must be positive");
  }
  int64_t covered = 0;
  for (const AudioSegment& segment : segments) {
    if (segment.label == label) covered += segment.range.Length();
  }
  return static_cast<double>(covered) / static_cast<double>(total_samples);
}

}  // namespace cobra::audio
