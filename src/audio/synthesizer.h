#pragma once

/// \file synthesizer.h
/// Synthetic audio generator: speech-like, music-like and applause-like
/// signals with ground-truth segment labels. Substitutes for the site's
/// real interview recordings (DESIGN.md §2) — the classifier consumes only
/// the statistical cues the synthesizer reproduces (harmonicity, pause
/// structure, spectral flatness).

#include <cstdint>
#include <string>
#include <vector>

#include "audio/signal.h"
#include "util/rng.h"
#include "util/status.h"

namespace cobra::audio {

struct AudioSynthConfig {
  int sample_rate = 16000;
  uint64_t seed = 7;
  double amplitude = 0.3;
};

/// Generates class-pure clips and interview-style composites.
class AudioSynthesizer {
 public:
  explicit AudioSynthesizer(AudioSynthConfig config = {});

  /// Voiced syllable bursts (jittered pitch harmonics, ~4 Hz syllable
  /// rhythm) separated by short pauses.
  AudioSignal Speech(double seconds);

  /// Sustained chord tones with slow envelopes, no pauses.
  AudioSignal Music(double seconds);

  /// Broadband noise bursts (crowd/applause).
  AudioSignal Applause(double seconds);

  /// Near-silence (tiny noise floor).
  AudioSignal Silence(double seconds);

  /// An interview-style composite: alternating speech and silence, with an
  /// optional applause tail; returns the signal and its true segments.
  struct LabeledAudio {
    AudioSignal signal;
    std::vector<AudioSegment> segments;
  };
  LabeledAudio Interview(double seconds, bool applause_tail = false);

  const AudioSynthConfig& config() const { return config_; }

 private:
  AudioSignal Tone(double seconds, double base_hz, int harmonics,
                   double vibrato_hz, double jitter);

  AudioSynthConfig config_;
  Rng rng_;
};

}  // namespace cobra::audio
