#include "audio/synthesizer.h"

#include <cmath>

namespace cobra::audio {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

AudioSynthesizer::AudioSynthesizer(AudioSynthConfig config)
    : config_(config), rng_(config.seed) {}

AudioSignal AudioSynthesizer::Tone(double seconds, double base_hz,
                                   int harmonics, double vibrato_hz,
                                   double jitter) {
  const int sr = config_.sample_rate;
  const int64_t n = static_cast<int64_t>(seconds * sr);
  std::vector<float> samples(static_cast<size_t>(n), 0.0f);
  double phase = rng_.NextDouble(0.0, 2.0 * kPi);
  for (int64_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i) / sr;
    double vibrato =
        vibrato_hz > 0 ? 1.0 + 0.02 * std::sin(2.0 * kPi * vibrato_hz * t) : 1.0;
    double hz = base_hz * vibrato * (1.0 + jitter * rng_.NextGaussian() * 0.002);
    phase += 2.0 * kPi * hz / sr;
    double v = 0.0;
    for (int h = 1; h <= harmonics; ++h) {
      v += std::sin(phase * h) / h;
    }
    samples[static_cast<size_t>(i)] =
        static_cast<float>(config_.amplitude * v / 1.5);
  }
  return AudioSignal(std::move(samples), sr);
}

AudioSignal AudioSynthesizer::Speech(double seconds) {
  const int sr = config_.sample_rate;
  const int64_t n = static_cast<int64_t>(seconds * sr);
  std::vector<float> samples(static_cast<size_t>(n), 0.0f);
  int64_t pos = 0;
  while (pos < n) {
    // A syllable: voiced harmonics at a jittered pitch, 120-260 ms.
    double pitch = rng_.NextDouble(110.0, 240.0);
    int64_t syllable = static_cast<int64_t>(rng_.NextDouble(0.12, 0.26) * sr);
    AudioSignal voiced = Tone(static_cast<double>(syllable) / sr, pitch, 6,
                              5.0, 1.0);
    for (int64_t i = 0; i < voiced.num_samples() && pos + i < n; ++i) {
      // Attack/decay envelope per syllable.
      double f = static_cast<double>(i) / voiced.num_samples();
      double envelope = std::sin(kPi * f);
      samples[static_cast<size_t>(pos + i)] =
          static_cast<float>(voiced.At(i) * envelope);
    }
    pos += voiced.num_samples();
    // Inter-syllable gap; occasionally a longer inter-phrase pause.
    double gap_s = rng_.NextBernoulli(0.2) ? rng_.NextDouble(0.25, 0.5)
                                           : rng_.NextDouble(0.02, 0.08);
    pos += static_cast<int64_t>(gap_s * sr);
  }
  return AudioSignal(std::move(samples), sr);
}

AudioSignal AudioSynthesizer::Music(double seconds) {
  const int sr = config_.sample_rate;
  const int64_t n = static_cast<int64_t>(seconds * sr);
  std::vector<float> samples(static_cast<size_t>(n), 0.0f);
  // Triad of steady tones with slow amplitude envelopes.
  static const double kChord[] = {220.0, 277.2, 329.6};
  for (double hz : kChord) {
    AudioSignal tone = Tone(seconds, hz, 4, 0.0, 0.0);
    double env_hz = rng_.NextDouble(0.2, 0.5);
    for (int64_t i = 0; i < n && i < tone.num_samples(); ++i) {
      double t = static_cast<double>(i) / sr;
      double envelope = 0.75 + 0.25 * std::sin(2.0 * kPi * env_hz * t);
      samples[static_cast<size_t>(i)] +=
          static_cast<float>(tone.At(i) * envelope / 3.0);
    }
  }
  return AudioSignal(std::move(samples), sr);
}

AudioSignal AudioSynthesizer::Applause(double seconds) {
  const int sr = config_.sample_rate;
  const int64_t n = static_cast<int64_t>(seconds * sr);
  std::vector<float> samples(static_cast<size_t>(n));
  double envelope = 0.8;
  for (int64_t i = 0; i < n; ++i) {
    if (i % (sr / 20) == 0) {
      envelope = 0.5 + 0.5 * rng_.NextDouble();  // clap density fluctuation
    }
    samples[static_cast<size_t>(i)] = static_cast<float>(
        config_.amplitude * envelope * rng_.NextGaussian() * 0.5);
  }
  return AudioSignal(std::move(samples), sr);
}

AudioSignal AudioSynthesizer::Silence(double seconds) {
  const int sr = config_.sample_rate;
  const int64_t n = static_cast<int64_t>(seconds * sr);
  std::vector<float> samples(static_cast<size_t>(n));
  for (auto& s : samples) {
    s = static_cast<float>(rng_.NextGaussian() * 1e-4);  // noise floor
  }
  return AudioSignal(std::move(samples), sr);
}

AudioSynthesizer::LabeledAudio AudioSynthesizer::Interview(
    double seconds, bool applause_tail) {
  LabeledAudio out;
  out.signal = AudioSignal({}, config_.sample_rate);
  double remaining = seconds - (applause_tail ? 2.0 : 0.0);
  bool speaking = true;
  while (remaining > 0.3) {
    double span = speaking ? rng_.NextDouble(2.0, 4.0) : rng_.NextDouble(0.5, 1.0);
    span = std::min(span, remaining);
    int64_t begin = out.signal.num_samples();
    AudioSignal part = speaking ? Speech(span) : Silence(span);
    (void)out.signal.Append(part);
    out.segments.push_back(AudioSegment{
        FrameInterval{begin, out.signal.num_samples() - 1},
        speaking ? kClassSpeech : kClassSilence});
    remaining -= span;
    speaking = !speaking;
  }
  if (applause_tail) {
    int64_t begin = out.signal.num_samples();
    (void)out.signal.Append(Applause(2.0));
    out.segments.push_back(AudioSegment{
        FrameInterval{begin, out.signal.num_samples() - 1}, kClassApplause});
  }
  return out;
}

}  // namespace cobra::audio
