#include "audio/signal.h"

#include <algorithm>
#include <cmath>

namespace cobra::audio {

double AudioSignal::Rms(int64_t begin, int64_t len) const {
  int64_t from = std::max<int64_t>(0, begin);
  int64_t to = std::min<int64_t>(num_samples(), begin + len);
  if (to <= from) return 0.0;
  double acc = 0.0;
  for (int64_t i = from; i < to; ++i) {
    acc += static_cast<double>(samples_[static_cast<size_t>(i)]) *
           samples_[static_cast<size_t>(i)];
  }
  return std::sqrt(acc / static_cast<double>(to - from));
}

Status AudioSignal::Append(const AudioSignal& other) {
  if (other.sample_rate_ != sample_rate_ && num_samples() > 0) {
    return Status::InvalidArgument("sample rates differ");
  }
  if (num_samples() == 0) sample_rate_ = other.sample_rate_;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  return Status::OK();
}

}  // namespace cobra::audio
