#pragma once

/// \file signal.h
/// Mono PCM audio buffers — the raw layer for the audio fragments the
/// tournament site carries ("audio files of interviews", paper §2).

#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.h"
#include "util/status.h"

namespace cobra::audio {

/// A mono float PCM signal in [-1, 1].
class AudioSignal {
 public:
  AudioSignal() = default;
  AudioSignal(std::vector<float> samples, int sample_rate)
      : samples_(std::move(samples)), sample_rate_(sample_rate) {}

  int sample_rate() const { return sample_rate_; }
  int64_t num_samples() const { return static_cast<int64_t>(samples_.size()); }
  double DurationSeconds() const {
    return sample_rate_ > 0
               ? static_cast<double>(num_samples()) / sample_rate_
               : 0.0;
  }

  float At(int64_t i) const { return samples_[static_cast<size_t>(i)]; }
  const std::vector<float>& samples() const { return samples_; }
  std::vector<float>* mutable_samples() { return &samples_; }

  /// Root-mean-square level over [begin, begin+len) (clipped to bounds).
  double Rms(int64_t begin, int64_t len) const;

  /// Appends another signal (sample rates must match).
  Status Append(const AudioSignal& other);

 private:
  std::vector<float> samples_;
  int sample_rate_ = 16000;
};

/// Canonical class labels for audio content.
inline constexpr const char* kClassSpeech = "speech";
inline constexpr const char* kClassMusic = "music";
inline constexpr const char* kClassApplause = "applause";
inline constexpr const char* kClassSilence = "silence";

/// A labeled segment of an audio timeline (sample indices, inclusive).
struct AudioSegment {
  FrameInterval range;       ///< in samples
  std::string label;         ///< "speech", "music", "applause", "silence"
};

}  // namespace cobra::audio
