#include "audio/fft.h"

#include <cmath>

namespace cobra::audio {

namespace {
constexpr double kPi = 3.14159265358979323846;

bool IsPowerOfTwo(size_t n) { return n > 0 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Status Fft(std::vector<std::complex<double>>* data, bool inverse) {
  const size_t n = data->size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("FFT size must be a power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap((*data)[i], (*data)[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = (*data)[i + k];
        std::complex<double> v = (*data)[i + k + len / 2] * w;
        (*data)[i + k] = u + v;
        (*data)[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : *data) x /= static_cast<double>(n);
  }
  return Status::OK();
}

Result<std::vector<double>> MagnitudeSpectrum(const std::vector<float>& frame) {
  if (frame.empty()) {
    return Status::InvalidArgument("empty analysis frame");
  }
  const size_t n = NextPowerOfTwo(frame.size());
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (size_t i = 0; i < frame.size(); ++i) {
    double window =
        0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) /
                             static_cast<double>(frame.size() - 1));
    data[i] = std::complex<double>(frame[i] * window, 0.0);
  }
  COBRA_RETURN_NOT_OK(Fft(&data));
  std::vector<double> magnitudes(n / 2 + 1);
  for (size_t i = 0; i <= n / 2; ++i) magnitudes[i] = std::abs(data[i]);
  return magnitudes;
}

double SpectralCentroidHz(const std::vector<double>& magnitudes,
                          int sample_rate) {
  if (magnitudes.size() < 2) return 0.0;
  const double bin_hz = static_cast<double>(sample_rate) /
                        (2.0 * static_cast<double>(magnitudes.size() - 1));
  double weighted = 0.0, total = 0.0;
  for (size_t i = 0; i < magnitudes.size(); ++i) {
    weighted += static_cast<double>(i) * bin_hz * magnitudes[i];
    total += magnitudes[i];
  }
  return total > 0 ? weighted / total : 0.0;
}

double SpectralFlatness(const std::vector<double>& magnitudes) {
  if (magnitudes.empty()) return 0.0;
  double log_sum = 0.0, sum = 0.0;
  const double epsilon = 1e-12;
  for (double m : magnitudes) {
    double p = m * m + epsilon;
    log_sum += std::log(p);
    sum += p;
  }
  double geometric = std::exp(log_sum / static_cast<double>(magnitudes.size()));
  double arithmetic = sum / static_cast<double>(magnitudes.size());
  return arithmetic > 0 ? geometric / arithmetic : 0.0;
}

}  // namespace cobra::audio
