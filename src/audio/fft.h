#pragma once

/// \file fft.h
/// Radix-2 FFT and spectral helpers for the audio feature extractor.

#include <complex>
#include <vector>

#include "util/status.h"

namespace cobra::audio {

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a
/// power of two.
Status Fft(std::vector<std::complex<double>>* data, bool inverse = false);

/// Magnitude spectrum of a real frame (Hann-windowed, zero-padded to the
/// next power of two). Returns n/2+1 magnitudes.
Result<std::vector<double>> MagnitudeSpectrum(const std::vector<float>& frame);

/// Spectral centroid in Hz for a magnitude spectrum with the given
/// underlying FFT size and sample rate.
double SpectralCentroidHz(const std::vector<double>& magnitudes,
                          int sample_rate);

/// Spectral flatness (geometric mean / arithmetic mean) in [0, 1]; white
/// noise -> 1, a pure tone -> ~0.
double SpectralFlatness(const std::vector<double>& magnitudes);

}  // namespace cobra::audio
