#pragma once

/// \file features.h
/// Frame-based audio features and the rule-based segmenter/classifier for
/// the site's audio fragments: silence detection, then
/// speech / music / applause discrimination from energy dynamics,
/// harmonicity and spectral flatness.

#include <string>
#include <vector>

#include "audio/signal.h"
#include "util/status.h"

namespace cobra::audio {

struct AudioFrameFeatures {
  double rms = 0.0;                ///< short-time energy
  double zero_crossing_rate = 0.0; ///< crossings per sample, [0, 1]
  double spectral_centroid_hz = 0.0;
  double spectral_flatness = 0.0;  ///< ~1 noise, ~0 tonal
  double harmonicity = 0.0;        ///< normalized autocorrelation peak, [0, 1]
};

struct AudioAnalyzerConfig {
  int frame_samples = 512;
  int hop_samples = 256;
  /// Frames with RMS below this are silent.
  double silence_rms = 0.01;
  /// Pitch search range for the harmonicity feature.
  double min_pitch_hz = 80.0;
  double max_pitch_hz = 400.0;
};

/// Per-frame feature extraction.
class AudioAnalyzer {
 public:
  explicit AudioAnalyzer(AudioAnalyzerConfig config = {});

  /// Features of every analysis frame (hop-spaced).
  Result<std::vector<AudioFrameFeatures>> Analyze(const AudioSignal& signal) const;

  /// Splits the timeline into maximal silent / non-silent runs, then labels
  /// each non-silent run speech / music / applause by aggregate features:
  ///   applause: high spectral flatness (noise);
  ///   music: tonal (high harmonicity) with low energy variation;
  ///   speech: tonal with strong syllabic energy modulation.
  Result<std::vector<AudioSegment>> Segment(const AudioSignal& signal) const;

  const AudioAnalyzerConfig& config() const { return config_; }

 private:
  std::string ClassifyRun(const std::vector<AudioFrameFeatures>& features,
                          size_t begin_frame, size_t end_frame) const;

  AudioAnalyzerConfig config_;
};

/// Fraction of `signal`'s duration labeled `label` by the analyzer.
Result<double> LabeledFraction(const std::vector<AudioSegment>& segments,
                               const std::string& label, int64_t total_samples);

}  // namespace cobra::audio
